//! Cross-crate integration tests for the Env2Vec workspace.
//!
//! The tests live in `tests/`; this library target exists only so the
//! crate is a valid workspace member.
