//! Cross-method sanity: on shared synthetic data, every learning method
//! must beat a trivial mean predictor, and methods with access to more
//! signal must not lose to methods with less.

use env2vec::config::Env2VecConfig;
use env2vec::dataframe::Dataframe;
use env2vec::train::{train_env2vec, train_rfnn};
use env2vec::vocab::EmVocabulary;
use env2vec_baselines::forest::{ForestConfig, RandomForest};
use env2vec_baselines::ridge::{append_history, Ridge};
use env2vec_baselines::svr::{Kernel, Svr, SvrConfig};
use env2vec_datagen::kdn::{KdnDataset, Vnf};
use env2vec_linalg::Matrix;

fn mae(pred: &[f64], actual: &[f64]) -> f64 {
    pred.iter()
        .zip(actual)
        .map(|(p, a)| (p - a).abs())
        .sum::<f64>()
        / actual.len() as f64
}

/// Mean-predictor MAE — the floor every method must beat.
fn mean_predictor_mae(train_y: &[f64], test_y: &[f64]) -> f64 {
    let mean = train_y.iter().sum::<f64>() / train_y.len() as f64;
    test_y.iter().map(|y| (y - mean).abs()).sum::<f64>() / test_y.len() as f64
}

#[test]
fn all_methods_beat_the_mean_predictor_on_kdn() {
    let ds = KdnDataset::generate_sized(Vnf::Firewall, 400, 280, 60, 60, 3);
    let (train_x, train_y) = ds.train();
    let (test_x, test_y) = ds.test();
    let floor = mean_predictor_mae(train_y, test_y);

    let ridge = Ridge::fit(&train_x, train_y, 1.0).unwrap();
    assert!(mae(&ridge.predict(&test_x).unwrap(), test_y) < floor);

    let forest = RandomForest::fit(&train_x, train_y, &ForestConfig::default()).unwrap();
    assert!(mae(&forest.predict(&test_x).unwrap(), test_y) < floor);

    let svr = Svr::fit(
        &train_x,
        train_y,
        &SvrConfig::new(10.0, 0.1, Kernel::Rbf { gamma: 1.0 / 86.0 }),
    )
    .unwrap();
    assert!(mae(&svr.predict(&test_x).unwrap(), test_y) < floor);
}

#[test]
fn history_helps_on_the_autocorrelated_switch() {
    // Ridge_ts vs Ridge on the switch dataset: the paper's Table 4 shows
    // history features win where the CPU carries over between intervals.
    let ds = KdnDataset::generate_sized(Vnf::Switch, 500, 350, 75, 75, 5);
    let (train_x, train_y) = ds.train();
    let (test_x, test_y) = ds.test();

    let plain = Ridge::fit(&train_x, train_y, 1.0).unwrap();
    let plain_mae = mae(&plain.predict(&test_x).unwrap(), test_y);

    let (ax, ay, offset) = append_history(&ds.features, &ds.cpu, 2).unwrap();
    let tr: Vec<usize> = (0..ds.n_train - offset).collect();
    let te: Vec<usize> = (ds.n_train + ds.n_val - offset..ax.rows()).collect();
    let ts = Ridge::fit(&ax.select_rows(&tr).unwrap(), &ay[..tr.len()], 1.0).unwrap();
    let ts_mae = mae(
        &ts.predict(&ax.select_rows(&te).unwrap()).unwrap(),
        &ay[ay.len() - te.len()..],
    );
    assert!(
        ts_mae < plain_mae,
        "Ridge_ts {ts_mae} must beat Ridge {plain_mae} on Switch"
    );
}

#[test]
fn env2vec_and_rfnn_share_front_end_but_embeddings_separate_environments() {
    // Two environments, same CFs, targets offset by 40 points: RFNN_all
    // must predict near the midpoint (irreducible error ~20), Env2Vec must
    // separate them.
    let n = 150;
    let window = 2;
    let cf = Matrix::from_fn(n, 3, |i, j| (((i * 7 + j * 3) % 13) as f64) / 13.0);
    let make = |offset: f64| -> Vec<f64> {
        (0..n)
            .map(|i| offset + 10.0 * cf.get(i, 0) + 5.0 * cf.get(i, 1))
            .collect()
    };
    let mut vocab = EmVocabulary::telecom();
    let df_a = Dataframe::from_series(
        &cf,
        &make(20.0),
        &["tb1", "s1", "tc", "b1"],
        window,
        &mut vocab,
    )
    .unwrap();
    let df_b = Dataframe::from_series(
        &cf,
        &make(60.0),
        &["tb2", "s2", "tc", "b2"],
        window,
        &mut vocab,
    )
    .unwrap();
    let all = Dataframe::concat(&[df_a.clone(), df_b.clone()]).unwrap();
    let (train, val) = all.split_validation(0.2).unwrap();

    let cfg = Env2VecConfig {
        max_epochs: 40,
        ..Env2VecConfig::fast()
    };
    let (env2vec, _) = train_env2vec(cfg, vocab, &train, &val).unwrap();
    let (rfnn, _) = train_rfnn(cfg, &train, &val).unwrap();

    let e = (mae(&env2vec.predict(&df_a).unwrap(), &df_a.target)
        + mae(&env2vec.predict(&df_b).unwrap(), &df_b.target))
        / 2.0;
    let r = (mae(&rfnn.predict(&df_a).unwrap(), &df_a.target)
        + mae(&rfnn.predict(&df_b).unwrap(), &df_b.target))
        / 2.0;
    // RFNN_all still has the RU history — y_{t-1} correlates with the
    // environment offset — so it is not fully blind here; embeddings must
    // simply give a clear additional edge.
    assert!(
        e < r * 0.9,
        "embeddings must separate offset environments: Env2Vec {e}, RFNN_all {r}"
    );
}
