//! Property-based tests spanning crate boundaries.

use env2vec::anomaly::AnomalyDetector;
use env2vec::dataframe::Dataframe;
use env2vec::vocab::EmVocabulary;
use env2vec_linalg::stats::Gaussian;
use env2vec_linalg::Matrix;
use proptest::prelude::*;

/// Strategy: a plausible prediction/observation pair of equal length.
fn series_pair() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (8usize..80).prop_flat_map(|n| {
        (
            proptest::collection::vec(10.0f64..90.0, n),
            proptest::collection::vec(-20.0f64..20.0, n),
        )
            .prop_map(|(pred, delta)| {
                let obs: Vec<f64> = pred.iter().zip(&delta).map(|(p, d)| p + d).collect();
                (pred, obs)
            })
    })
}

proptest! {
    /// γ monotonicity: stricter thresholds never flag more timesteps.
    #[test]
    fn detector_flagged_steps_monotone_in_gamma((pred, obs) in series_pair()) {
        let dist = Gaussian { mean: 0.0, std_dev: 3.0 };
        let mut last = usize::MAX;
        for gamma in [0.5, 1.0, 2.0, 3.0, 5.0] {
            let det = AnomalyDetector::new(gamma);
            let flagged: usize = det
                .detect(&dist, &pred, &obs)
                .unwrap()
                .iter()
                .map(|iv| iv.end - iv.start)
                .sum();
            prop_assert!(flagged <= last);
            last = flagged;
        }
    }

    /// The absolute filter is a hard floor: no alarm's peak deviation can
    /// be at or below it.
    #[test]
    fn alarms_always_exceed_absolute_filter((pred, obs) in series_pair()) {
        let dist = Gaussian { mean: 0.0, std_dev: 1.0 };
        let det = AnomalyDetector::new(1.0);
        for iv in det.detect(&dist, &pred, &obs).unwrap() {
            let dev = (iv.observed_at_peak - iv.predicted_at_peak).abs();
            prop_assert!(dev > det.absolute_filter);
        }
    }

    /// Alarm intervals are disjoint, ordered, and in range.
    #[test]
    fn alarm_intervals_are_well_formed((pred, obs) in series_pair()) {
        let dist = Gaussian { mean: 0.0, std_dev: 2.0 };
        let det = AnomalyDetector::new(1.5);
        let ivs = det.detect(&dist, &pred, &obs).unwrap();
        for w in ivs.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
        for iv in &ivs {
            prop_assert!(iv.start < iv.end);
            prop_assert!(iv.end <= pred.len());
            prop_assert!(iv.peak >= iv.start && iv.peak < iv.end);
        }
    }

    /// Dataframe assembly: every row's history window must equal the raw
    /// series slice preceding its target.
    #[test]
    fn dataframe_history_matches_series(
        n in 6usize..60,
        window in 1usize..4,
        seed in 0u64..1000,
    ) {
        prop_assume!(n > window);
        let cf = Matrix::from_fn(n, 3, |i, j| ((i * 5 + j + seed as usize) % 17) as f64);
        let ru: Vec<f64> = (0..n).map(|i| ((i * 13 + seed as usize) % 29) as f64).collect();
        let mut vocab = EmVocabulary::telecom();
        let df = Dataframe::from_series(&cf, &ru, &["a", "b", "c", "d"], window, &mut vocab)
            .unwrap();
        prop_assert_eq!(df.len(), n - window);
        for i in 0..df.len() {
            let p = i + window;
            prop_assert_eq!(df.target[i], ru[p]);
            for (j, &h) in df.history.row(i).iter().enumerate() {
                prop_assert_eq!(h, ru[p - window + j]);
            }
            prop_assert_eq!(df.cf.row(i), cf.row(p));
        }
    }

    /// Vocabulary encode is total: any tuple encodes without panicking,
    /// and re-encoding known values is stable.
    #[test]
    fn vocab_encoding_is_stable(values in proptest::collection::vec("[a-z]{1,8}", 4)) {
        let tuple: Vec<&str> = values.iter().map(String::as_str).collect();
        let mut vocab = EmVocabulary::telecom();
        let first = vocab.encode_or_add(&tuple);
        let second = vocab.encode_or_add(&tuple);
        prop_assert_eq!(&first, &second);
        let frozen = vocab.encode(&tuple);
        prop_assert_eq!(&first, &frozen);
        // All indices are non-zero (known) after insertion.
        prop_assert!(first.iter().all(|&i| i > 0));
    }

    /// Dataframe select/concat round-trip preserves rows.
    #[test]
    fn dataframe_concat_select_round_trip(n in 4usize..30, window in 1usize..3) {
        prop_assume!(n > window + 1);
        let cf = Matrix::from_fn(n, 2, |i, j| (i * 2 + j) as f64);
        let ru: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut vocab = EmVocabulary::telecom();
        let df = Dataframe::from_series(&cf, &ru, &["t", "s", "c", "b"], window, &mut vocab)
            .unwrap();
        let joined = Dataframe::concat(&[df.clone(), df.clone()]).unwrap();
        prop_assert_eq!(joined.len(), 2 * df.len());
        let back = joined
            .select(&(0..df.len()).collect::<Vec<_>>())
            .unwrap();
        prop_assert_eq!(back.target, df.target);
        prop_assert_eq!(back.cf, df.cf);
    }
}
