//! Cross-crate integration of the sharded TSDB: pooled batch ingest
//! (`par`), self-scrape (`obs`), and the engine's configuration space
//! must all agree bit-for-bit — the determinism contract extends from
//! the worker pool down into storage.

use env2vec_par::{append_batch, with_thread_limit, BatchSample};
use env2vec_telemetry::tsdb::TsdbConfig;
use env2vec_telemetry::{LabelSet, TimeSeriesDb};

fn fleet(series: usize) -> Vec<LabelSet> {
    (0..series)
        .map(|s| {
            LabelSet::new()
                .with("env", format!("EM_{s:03}"))
                .with("testbed", format!("Testbed_{}", s % 11))
        })
        .collect()
}

/// Scrape-shaped workload: `ticks` rounds across the whole fleet, with
/// a sprinkle of out-of-order rewrites near the end.
fn ingest(db: &TimeSeriesDb, labels: &[LabelSet], ticks: i64, threads: usize) {
    with_thread_limit(threads, || {
        let mut batch = Vec::with_capacity(labels.len());
        for t in 0..ticks {
            batch.clear();
            for (s, ls) in labels.iter().enumerate() {
                batch.push(BatchSample::new(
                    "cpu_usage",
                    ls,
                    t * 15,
                    ((s * 13 + t as usize * 31) % 97) as f64,
                ));
            }
            append_batch(db, &batch);
        }
        // Stragglers below the seal line for the first few series.
        let late: Vec<BatchSample> = labels
            .iter()
            .take(5)
            .enumerate()
            .map(|(s, ls)| BatchSample::new("cpu_usage", ls, 7 * 15 + 1, s as f64 + 0.5))
            .collect();
        append_batch(db, &late);
    });
}

fn dump(db: &TimeSeriesDb) -> Vec<(LabelSet, Vec<(i64, u64)>)> {
    db.query_range("cpu_usage", &[], i64::MIN, i64::MAX)
        .into_iter()
        .map(|s| {
            (
                s.labels,
                s.samples
                    .iter()
                    .map(|p| (p.timestamp, p.value.to_bits()))
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn pooled_ingest_is_thread_count_invariant() {
    let labels = fleet(60);
    let reference = TimeSeriesDb::new();
    ingest(&reference, &labels, 300, 1);
    let golden = dump(&reference);
    assert_eq!(golden.len(), 60);
    for threads in [2, 4, 8] {
        let db = TimeSeriesDb::new();
        ingest(&db, &labels, 300, threads);
        assert_eq!(dump(&db), golden, "threads={threads} diverged");
    }
}

#[test]
fn every_engine_config_returns_identical_results() {
    let labels = fleet(60);
    let configs = [
        TsdbConfig::default(),
        TsdbConfig {
            num_shards: 1,
            compress: false,
            ..TsdbConfig::default()
        },
        TsdbConfig {
            num_shards: 5,
            seal_after: 64,
            compress: true,
        },
    ];
    let mut dumps = Vec::new();
    for config in configs {
        let db = TimeSeriesDb::with_config(config);
        ingest(&db, &labels, 300, 4);
        dumps.push(dump(&db));
    }
    assert_eq!(dumps[0], dumps[1], "compressed vs flat diverged");
    assert_eq!(dumps[0], dumps[2], "shard/seal policy changed results");
}

#[test]
fn self_scrape_flows_through_the_sharded_engine() {
    let registry = env2vec_obs::MetricsRegistry::new();
    let db = TimeSeriesDb::new();
    // Enough scrape rounds that counter series seal and compress.
    let c = registry.counter("xtest_ticks_total");
    for tick in 0..600i64 {
        c.inc();
        env2vec_obs::scrape_into(&registry, &db, tick);
    }
    let stats = db.stats();
    assert!(
        stats.sealed_chunks >= 1,
        "scrape stream should seal chunks, got {} sealed",
        stats.sealed_chunks
    );
    // The scraped counter reads back exactly: 1, 2, 3, ... per tick,
    // most of it decoded out of sealed chunks.
    let series = db.query_range("xtest_ticks_total", &[], i64::MIN, i64::MAX);
    assert_eq!(series.len(), 1, "scraped series must be queryable");
    assert_eq!(series[0].samples.len(), 600);
    for (i, p) in series[0].samples.iter().enumerate() {
        assert_eq!(p.timestamp, i as i64);
        assert_eq!(p.value.to_bits(), ((i + 1) as f64).to_bits());
    }
}
