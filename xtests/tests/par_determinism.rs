//! Tier-1 determinism: the parallel execution layer must be
//! numerically invisible.
//!
//! `env2vec-par`'s contract is that chunk boundaries and reduction order
//! depend only on problem sizes, never on worker count. This test pins
//! the end-to-end consequence: training one small Env2Vec model — whose
//! hidden-layer matmuls are big enough to cross the `linalg` parallel
//! thresholds — produces bit-identical weights and predictions with 1
//! worker and with 4.

use env2vec::config::Env2VecConfig;
use env2vec::dataframe::Dataframe;
use env2vec::train::train_env2vec;
use env2vec::vocab::EmVocabulary;
use env2vec_datagen::telecom::{TelecomConfig, TelecomDataset};

fn small_dataset() -> TelecomDataset {
    let mut cfg = TelecomConfig::small();
    cfg.num_chains = 4;
    TelecomDataset::generate(cfg)
}

/// Trains a model and returns its serialised weights plus validation
/// predictions. Everything is seeded, so two calls differ only through
/// the execution layer under test.
fn train_and_predict(dataset: &TelecomDataset) -> (String, Vec<f64>) {
    let window = 2;
    let mut vocab = EmVocabulary::telecom();
    let mut trains = Vec::new();
    let mut vals = Vec::new();
    for chain in &dataset.chains {
        for ex in chain.history() {
            let df =
                Dataframe::from_series(&ex.cf, &ex.cpu, &ex.labels.values(), window, &mut vocab)
                    .unwrap();
            let (t, v) = df.split_validation(0.15).unwrap();
            trains.push(t);
            vals.push(v);
        }
    }
    let train = Dataframe::concat(&trains).unwrap();
    let val = Dataframe::concat(&vals).unwrap();
    let mut cfg = Env2VecConfig::fast();
    // Wide enough that the batch × features × hidden products cross
    // MATMUL_PAR_FLOPS and actually take the row-block-parallel path.
    cfg.fnn_hidden = 128;
    cfg.max_epochs = 6;
    let model = train_env2vec(cfg, vocab, &train, &val).unwrap().0;
    let preds = model.predict(&val).unwrap();
    (model.params().to_json(), preds)
}

#[test]
fn env2vec_training_is_bit_identical_across_thread_counts() {
    let dataset = small_dataset();
    let (weights_1, preds_1) = env2vec_par::with_thread_limit(1, || train_and_predict(&dataset));
    let (weights_4, preds_4) = env2vec_par::with_thread_limit(4, || train_and_predict(&dataset));
    assert_eq!(
        weights_1, weights_4,
        "trained weights diverged between 1 and 4 threads"
    );
    assert!(!preds_1.is_empty(), "validation frame must not be empty");
    assert_eq!(preds_1.len(), preds_4.len());
    for (i, (a, b)) in preds_1.iter().zip(&preds_4).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "prediction {i} diverged: {a} vs {b}"
        );
    }
}

#[test]
fn kernels_cross_parallel_thresholds_deterministically() {
    use env2vec_linalg::Matrix;
    // Direct guard on the linalg gates with awkward shapes (row count
    // not divisible by the block size).
    let a = Matrix::from_fn(100, 70, |i, j| ((i * 31 + j * 7) % 113) as f64 / 13.0 - 4.0);
    let b = Matrix::from_fn(70, 90, |i, j| ((i * 3 + j * 41) % 127) as f64 / 11.0 - 5.0);
    let seq = env2vec_par::with_thread_limit(1, || a.matmul(&b).unwrap());
    let par = env2vec_par::with_thread_limit(4, || a.matmul(&b).unwrap());
    assert_eq!(seq, par);

    // The transpose-free entry points must cross the same gates with the
    // same bits: A·Bᵀ and Aᵀ·B over shapes big enough ( >= PAR_MIN_ELEMS
    // outputs) that 4 workers really fan out, including values with
    // bitwise zeros so the sparsity skip runs under both schedules.
    let bt = b.transpose();
    let seq_nt = env2vec_par::with_thread_limit(1, || a.matmul_nt(&bt).unwrap());
    let par_nt = env2vec_par::with_thread_limit(4, || a.matmul_nt(&bt).unwrap());
    assert_eq!(seq_nt, par_nt);
    assert_eq!(seq, seq_nt, "nt layout diverged from plain matmul");

    let at = a.transpose();
    let seq_tn = env2vec_par::with_thread_limit(1, || at.matmul_tn(&b).unwrap());
    let par_tn = env2vec_par::with_thread_limit(4, || at.matmul_tn(&b).unwrap());
    assert_eq!(seq_tn, par_tn);
    assert_eq!(seq, seq_tn, "tn layout diverged from plain matmul");

    let big_a = Matrix::from_fn(300, 80, |i, j| {
        if (i * 80 + j) % 11 == 0 {
            0.0
        } else {
            ((i * 13 + j * 29) % 101) as f64 / 9.0 - 5.0
        }
    });
    let big_b = Matrix::from_fn(80, 500, |i, j| ((i * 7 + j * 3) % 97) as f64 / 7.0 - 6.0);
    let big_bt = big_b.transpose();
    let big_at = big_a.transpose();
    let nn_1 = env2vec_par::with_thread_limit(1, || big_a.matmul(&big_b).unwrap());
    let nn_4 = env2vec_par::with_thread_limit(4, || big_a.matmul(&big_b).unwrap());
    assert_eq!(nn_1, nn_4);
    let nt_4 = env2vec_par::with_thread_limit(4, || big_a.matmul_nt(&big_bt).unwrap());
    let tn_4 = env2vec_par::with_thread_limit(4, || big_at.matmul_tn(&big_b).unwrap());
    assert_eq!(nn_1, nt_4, "parallel nt diverged from sequential matmul");
    assert_eq!(nn_1, tn_4, "parallel tn diverged from sequential matmul");

    let tall = Matrix::from_fn(9000, 5, |i, j| ((i * 17 + j) % 1013) as f64 * 1e-4);
    let means_1 = env2vec_par::with_thread_limit(1, || tall.col_means());
    let means_4 = env2vec_par::with_thread_limit(4, || tall.col_means());
    for (x, y) in means_1.iter().zip(&means_4) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}
