//! End-to-end integration: datagen → telemetry → core → alarm scoring.
//!
//! Exercises the complete Figure 2 loop across crate boundaries, asserting
//! the properties the paper's deployment relies on.

use env2vec::anomaly::AnomalyDetector;
use env2vec::config::Env2VecConfig;
use env2vec::dataframe::Dataframe;
use env2vec::pipeline::{
    collect_execution, em_record_id, fetch_latest_model, publish_model, read_dataframe,
    screen_new_build,
};
use env2vec::train::train_env2vec;
use env2vec::vocab::EmVocabulary;
use env2vec_datagen::telecom::{TelecomConfig, TelecomDataset};
use env2vec_telemetry::alarms::AlarmStore;
use env2vec_telemetry::discovery::ServiceDiscovery;
use env2vec_telemetry::labels::LabelMatcher;
use env2vec_telemetry::registry::ModelRegistry;
use env2vec_telemetry::tsdb::TimeSeriesDb;

fn small_dataset() -> TelecomDataset {
    let mut cfg = TelecomConfig::small();
    cfg.num_chains = 6;
    cfg.fault_fraction = 1.0;
    TelecomDataset::generate(cfg)
}

fn train_on(dataset: &TelecomDataset) -> env2vec::Env2VecModel {
    let window = 2;
    let mut vocab = EmVocabulary::telecom();
    let mut trains = Vec::new();
    let mut vals = Vec::new();
    for chain in &dataset.chains {
        for ex in chain.history() {
            let df =
                Dataframe::from_series(&ex.cf, &ex.cpu, &ex.labels.values(), window, &mut vocab)
                    .unwrap();
            let (t, v) = df.split_validation(0.15).unwrap();
            trains.push(t);
            vals.push(v);
        }
    }
    let train = Dataframe::concat(&trains).unwrap();
    let val = Dataframe::concat(&vals).unwrap();
    let mut cfg = Env2VecConfig::fast();
    cfg.max_epochs = 20;
    train_env2vec(cfg, vocab, &train, &val).unwrap().0
}

#[test]
fn full_workflow_detects_injected_problems() {
    let dataset = small_dataset();
    let tsdb = TimeSeriesDb::new();
    let mut discovery = ServiceDiscovery::new();
    let alarms = AlarmStore::new();
    let registry = ModelRegistry::new();

    // Step 1: collect everything.
    for ex in dataset.executions() {
        collect_execution(&tsdb, &mut discovery, ex);
    }
    // One TSDB series per (metric, execution): 14 CFs + CPU + memory.
    let execs = dataset.chains.len() * dataset.config.builds_per_chain;
    assert_eq!(tsdb.num_series(), execs * 16);
    assert_eq!(discovery.targets().len(), execs);

    // Step 2 + 5: train and round-trip through the registry.
    let model = train_on(&dataset);
    publish_model(&registry, "it", &model);
    let model = fetch_latest_model(&registry).unwrap();

    // Steps 3-4: screen every chain.
    let detector = AnomalyDetector::new(2.0);
    let mut caught = 0;
    for chain in &dataset.chains {
        let ids = screen_new_build(&model, chain, &detector, &alarms).unwrap();
        // Every returned id resolves in the store.
        for id in &ids {
            assert!(alarms.all().iter().any(|a| a.id == *id));
        }
        let current = chain.current();
        let hit = alarms
            .by_env_label("env", &em_record_id(current))
            .iter()
            .any(|a| {
                current.faults.iter().any(|f| {
                    a.start <= (f.end + model.config.history_window) as i64
                        && (f.start as i64) <= a.end
                })
            });
        if hit {
            caught += 1;
        }
    }
    // Every chain is faulty here; the detector must catch most of them.
    assert!(
        caught * 2 >= dataset.chains.len(),
        "only {caught}/{} faulty chains produced matching alarms",
        dataset.chains.len()
    );
}

#[test]
fn tsdb_round_trip_preserves_model_input() {
    let dataset = small_dataset();
    let tsdb = TimeSeriesDb::new();
    let mut discovery = ServiceDiscovery::new();
    let ex = &dataset.chains[2].executions[1];
    collect_execution(&tsdb, &mut discovery, ex);

    let mut vocab = EmVocabulary::telecom();
    vocab.encode_or_add(&ex.labels.values());
    let from_tsdb = read_dataframe(&tsdb, ex, 3, &vocab).unwrap();
    let direct =
        Dataframe::from_series_frozen(&ex.cf, &ex.cpu, &ex.labels.values(), 3, &vocab).unwrap();
    assert_eq!(from_tsdb.cf, direct.cf);
    assert_eq!(from_tsdb.history, direct.history);
    assert_eq!(from_tsdb.target, direct.target);
    assert_eq!(from_tsdb.em, direct.em);

    // The TSDB query layer also answers targeted label queries.
    let series = tsdb.query_range(
        "cpu_usage",
        &[LabelMatcher::eq("env", em_record_id(ex))],
        0,
        i64::MAX,
    );
    assert_eq!(series.len(), 1);
    assert_eq!(series[0].samples.len(), ex.len());
}

#[test]
fn alarms_pinpoint_testbed_and_interval() {
    // The paper's step 4 requirement end-to-end: alarms carry everything
    // an engineer needs.
    let dataset = small_dataset();
    let model = train_on(&dataset);
    let alarms = AlarmStore::new();
    let detector = AnomalyDetector::new(1.0);
    for chain in &dataset.chains {
        screen_new_build(&model, chain, &detector, &alarms).unwrap();
    }
    assert!(
        !alarms.is_empty(),
        "gamma=1 must raise alarms on faulty data"
    );
    for alarm in alarms.all() {
        let testbed = alarm.env.get("testbed").expect("testbed label present");
        assert!(testbed.starts_with("Testbed_"));
        assert!(alarm.env.get("build").is_some());
        assert!(alarm.start <= alarm.end);
        assert_eq!(alarm.gamma, 1.0);
        assert!(alarm.message.contains(testbed));
    }
}
