//! §4.2 multi-resource claim: the same architecture screens memory
//! problems (leak-style drifts) exactly as it screens CPU — only the
//! target series changes.

use env2vec::anomaly::AnomalyDetector;
use env2vec::config::Env2VecConfig;
use env2vec::dataframe::Dataframe;
use env2vec::pipeline::{screen_new_build_resource, Resource};
use env2vec::train::train_env2vec;
use env2vec::vocab::EmVocabulary;
use env2vec_datagen::telecom::{TelecomConfig, TelecomDataset};
use env2vec_telemetry::alarms::AlarmStore;

fn dataset() -> TelecomDataset {
    let mut cfg = TelecomConfig::small();
    cfg.num_chains = 6;
    cfg.fault_fraction = 1.0;
    TelecomDataset::generate(cfg)
}

fn train_memory_model(dataset: &TelecomDataset) -> env2vec::Env2VecModel {
    let window = 2;
    let mut vocab = EmVocabulary::telecom();
    let mut trains = Vec::new();
    let mut vals = Vec::new();
    for chain in &dataset.chains {
        for ex in chain.history() {
            let df =
                Dataframe::from_series(&ex.cf, &ex.mem, &ex.labels.values(), window, &mut vocab)
                    .unwrap();
            let (t, v) = df.split_validation(0.15).unwrap();
            trains.push(t);
            vals.push(v);
        }
    }
    let train = Dataframe::concat(&trains).unwrap();
    let val = Dataframe::concat(&vals).unwrap();
    let mut cfg = Env2VecConfig::fast();
    cfg.max_epochs = 20;
    train_env2vec(cfg, vocab, &train, &val).unwrap().0
}

#[test]
fn memory_model_fits_memory_series() {
    let ds = dataset();
    let model = train_memory_model(&ds);
    // Clean-memory MAE should be small across chains: memory is
    // session-driven and observable through the CFs.
    let mut total = 0.0;
    for chain in &ds.chains {
        let cur = chain.current();
        let df = Dataframe::from_series_frozen(
            &cur.cf,
            &cur.clean_mem,
            &cur.labels.values(),
            2,
            model.vocab(),
        )
        .unwrap();
        let pred = model.predict(&df).unwrap();
        total += pred
            .iter()
            .zip(&df.target)
            .map(|(p, t)| (p - t).abs())
            .sum::<f64>()
            / df.len() as f64;
    }
    let mean_mae = total / ds.chains.len() as f64;
    assert!(mean_mae < 6.0, "memory model MAE {mean_mae}");
}

#[test]
fn memory_leaks_raise_memory_alarms() {
    let ds = dataset();
    let model = train_memory_model(&ds);
    let alarms = AlarmStore::new();
    let detector = AnomalyDetector::new(2.0);

    let mut chains_with_mem_faults = 0;
    let mut chains_alarmed = 0;
    for chain in &ds.chains {
        screen_new_build_resource(&model, chain, &detector, &alarms, Resource::Memory).unwrap();
        let current = chain.current();
        if current.mem_faults.is_empty() {
            continue;
        }
        chains_with_mem_faults += 1;
        let env_alarms = alarms.by_env_label("env", &env2vec::pipeline::em_record_id(current));
        let hit = env_alarms.iter().any(|a| {
            current
                .mem_faults
                .iter()
                .any(|f| a.start <= (f.end + 2) as i64 && f.start as i64 <= a.end)
        });
        if hit {
            chains_alarmed += 1;
        }
    }
    assert!(
        chains_with_mem_faults > 0,
        "generator must inject memory faults"
    );
    assert!(
        chains_alarmed * 2 >= chains_with_mem_faults,
        "memory leaks detected on only {chains_alarmed}/{chains_with_mem_faults} chains"
    );
    // Alarms are labelled with the memory metric.
    assert!(alarms.all().iter().all(|a| a.metric == "mem_usage"));
}
