//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's API: `lock()`,
//! `read()` and `write()` return guards directly instead of `Result`s.
//! Poisoning (which parking_lot does not have) is treated as a bug and
//! panics.

#![warn(missing_docs)]

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A reader-writer lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("rwlock poisoned")
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().expect("rwlock poisoned")
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().expect("rwlock poisoned")
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("rwlock poisoned")
    }
}

/// A mutual-exclusion lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex poisoned")
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("mutex poisoned")
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("mutex poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
