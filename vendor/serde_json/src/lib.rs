//! Offline stand-in for `serde_json`.
//!
//! Prints and parses JSON over the vendored `serde` [`Value`] tree.
//! Floats are printed with Rust's shortest-roundtrip formatting (the
//! moral equivalent of the `float_roundtrip` feature), and non-finite
//! floats serialise to `null` exactly as upstream serde_json does.

#![warn(missing_docs)]

use std::fmt::Write as _;

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// `Result` alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialises a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialises a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::deserialize(&value)
}

/// Parses a JSON document into a raw [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's Display is shortest-roundtrip; add `.0` so
                // integral floats stay visibly floats, like serde_json.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            }
            if !pairs.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn err(&self, what: &str) -> Error {
        Error::new(format!("{what} at offset {}", self.pos))
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("missing low surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?
                            };
                            out.push(c);
                            // hex4 leaves pos past the digits; skip the
                            // outer `pos += 1` below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2").unwrap(), 2.0);
        assert_eq!(from_str::<u32>("17").unwrap(), 17);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn float_shortest_roundtrip() {
        for &f in &[
            0.1,
            1.0 / 3.0,
            6.02e23,
            -1e-300,
            f64::MAX,
            f64::MIN_POSITIVE,
        ] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), f, "{s}");
        }
    }

    #[test]
    fn nested_containers_round_trip() {
        let v: Vec<Vec<f64>> = vec![vec![1.0, 2.5], vec![], vec![-3.0]];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<f64>>>(&s).unwrap(), v);

        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2u64);
        let s = to_string(&m).unwrap();
        assert_eq!(s, "{\"a\":1,\"b\":2}");
        let back: std::collections::BTreeMap<String, u64> = from_str(&s).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<u64> = vec![1, 2, 3];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<u64>>(&pretty).unwrap(), v);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
        let s = to_string(&"control:\u{1}".to_string()).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), "control:\u{1}");
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<f64>("{").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("-5").is_err());
    }
}
