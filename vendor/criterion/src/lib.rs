//! Offline stand-in for `criterion`.
//!
//! Provides the `bench_function`/`iter` surface with a simple
//! median-of-samples wall-clock measurement and plain-text reporting.
//! No statistical analysis, baselines, or HTML reports.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    /// Per-benchmark measurement budget.
    measurement_time: Duration,
    /// Substring filter from argv; empty string matches everything.
    filter: String,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as the first
        // non-flag argument, like libtest.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .unwrap_or_default();
        Criterion {
            measurement_time: Duration::from_millis(500),
            filter,
        }
    }
}

impl Criterion {
    /// Runs `f` as a named benchmark and prints a one-line summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if !self.filter.is_empty() && !name.contains(&self.filter) {
            return self;
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            deadline: Instant::now() + self.measurement_time,
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Final-summary hook; a no-op in this stand-in.
    pub fn final_summary(&mut self) {}
}

/// Runs the measured closure and records per-iteration timings.
pub struct Bencher {
    samples: Vec<Duration>,
    deadline: Instant,
}

impl Bencher {
    /// Measures `routine` repeatedly until the time budget is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: one untimed call (fills caches, triggers lazy init).
        black_box(routine());
        loop {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= self.deadline || self.samples.len() >= 1_000_000 {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} no samples");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{name:<40} median {:>12?}  (min {:?}, max {:?}, n={})",
            median,
            min,
            max,
            sorted.len()
        );
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
            filter: String::new(),
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(2u64 + 2));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
            filter: "matches-nothing".to_string(),
        };
        let mut ran = false;
        c.bench_function("smoke", |_| ran = true);
        assert!(!ran);
    }
}
