//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! range/tuple/`Just`/regex-class strategies, `prop_map`/`prop_flat_map`,
//! `collection::{vec, btree_set}`, `prop_oneof!`, and the `proptest!`
//! test macro with `prop_assert*`/`prop_assume!`. Cases are generated
//! from a deterministic seed sequence; there is **no shrinking** — a
//! failing case reports its generated inputs via the assertion message
//! only. Case count defaults to 32 and can be overridden with the
//! `PROPTEST_CASES` environment variable.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod test_runner {
    //! Error type mirroring `proptest::test_runner`.

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` — retried, not a failure.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failed case with the given message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected (skipped) case with the given message.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
                TestCaseError::Fail(r) => write!(f, "failed: {r}"),
            }
        }
    }
}

pub use test_runner::TestCaseError;

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, i64, i32, f64, f32);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
}

/// String literals act as character-class regex strategies, supporting
/// exactly the `[class]{n}` / `[class]{m,n}` shape (with `a-z` style
/// ranges inside the class).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let (chars, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern {self:?}"));
        let len = rng.gen_range(min..=max);
        (0..len)
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect()
    }
}

fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, counts) = rest.split_once(']')?;
    let mut chars = Vec::new();
    let class_chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < class_chars.len() {
        if i + 2 < class_chars.len() && class_chars[i + 1] == '-' {
            let (lo, hi) = (class_chars[i], class_chars[i + 2]);
            for c in lo..=hi {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(class_chars[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let counts = counts.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((chars, min, max))
}

/// A choice between same-typed strategies, for `prop_oneof!`.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over the given options (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Boxes a strategy as a trait object (used by `prop_oneof!`).
pub fn union_option<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Number of elements a collection strategy should produce.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

pub mod collection {
    //! Collection strategies mirroring `proptest::collection`.

    use super::*;

    /// Strategy for `Vec<T>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with a size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates ordered sets of distinct values from `element`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = rng.gen_range(self.size.min..=self.size.max);
            let mut set = BTreeSet::new();
            // The element domain may be smaller than `target`; bail out
            // after a bounded number of duplicate draws.
            let mut misses = 0;
            while set.len() < target && misses < 1000 {
                if !set.insert(self.element.generate(rng)) {
                    misses += 1;
                }
            }
            set
        }
    }
}

/// Drives the case loop for one `proptest!`-generated test.
pub fn run_cases<F>(name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let mut passed = 0u64;
    let mut attempt = 0u64;
    while passed < cases {
        attempt += 1;
        if attempt > cases.saturating_mul(20) {
            panic!("{name}: too many cases rejected by prop_assume!");
        }
        // Seed folds in the test name so sibling tests see distinct
        // streams, but reruns are fully deterministic.
        let name_tag = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
        });
        let mut rng = StdRng::seed_from_u64(name_tag ^ attempt);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: case {attempt}/{cases} failed: {msg}")
            }
        }
    }
}

/// Defines property tests. Each body runs for a number of generated
/// cases; assertion failures report via panic (no shrinking).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__proptest_rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking directly) so the driver can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::TestCaseError::fail(::std::format!($($fmt)+)).into(),
            );
        }
    };
}

/// Asserts two values are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::TestCaseError::reject(stringify!($cond)).into(),
            );
        }
    };
}

/// Picks uniformly between several same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::union_option($strat)),+])
    };
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_pattern_parses() {
        let (chars, min, max) = parse_class_pattern("[a-z]{1,8}").unwrap();
        assert_eq!(chars.len(), 26);
        assert_eq!((min, max), (1, 8));
        let (chars, min, max) = parse_class_pattern("[A-Za-z0-9_]{1,12}").unwrap();
        assert_eq!(chars.len(), 26 + 26 + 10 + 1);
        assert_eq!((min, max), (1, 12));
        let (_, min, max) = parse_class_pattern("[ab]{4}").unwrap();
        assert_eq!((min, max), (4, 4));
    }

    #[test]
    fn ranges_and_collections_generate_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let n = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&n));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let v = collection::vec(0u64..10, 2usize..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
            let s = collection::btree_set(0i64..500, 1..30).generate(&mut rng);
            assert!(!s.is_empty() && s.len() < 30);
        }
    }

    #[test]
    fn map_flat_map_oneof() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = (1usize..4)
            .prop_flat_map(|n| collection::vec(0.0f64..1.0, n).prop_map(move |v| (n, v)));
        for _ in 0..50 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
        let choice = prop_oneof![Just(1u64), Just(2u64), Just(3u64)];
        for _ in 0..50 {
            assert!((1..=3).contains(&choice.generate(&mut rng)));
        }
    }

    proptest! {
        #[test]
        fn macro_smoke(n in 1usize..50, s in "[a-z]{1,8}") {
            prop_assume!(n != 13);
            prop_assert!(n < 50);
            prop_assert_eq!(s.len(), s.chars().count());
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }
}
