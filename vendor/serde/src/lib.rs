//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! replaces serde's visitor-based architecture with a much simpler
//! value-tree model: [`Serialize`] renders a type into a [`Value`] tree
//! and [`Deserialize`] rebuilds the type from one. `serde_json` (also
//! vendored) prints and parses `Value` trees. The `#[derive(Serialize,
//! Deserialize)]` macros (in the vendored `serde_derive`) cover the
//! shapes this workspace uses: named-field structs, newtype structs,
//! unit-variant enums, and `#[serde(transparent)]` single-field structs.
//!
//! The JSON representations match upstream serde_json for all of those
//! shapes, so documents produced by the real stack parse here and vice
//! versa.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A parsed/serialisable JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer in `i64` range.
    Int(i64),
    /// Integer above `i64::MAX`.
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Human-readable kind for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            // Upstream serde_json emits NaN/inf as null; accept it back.
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::UInt(u) => Some(u),
            _ => None,
        }
    }

    fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            _ => None,
        }
    }
}

/// Serialisation/deserialisation error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Renders a value into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree representation of `self`.
    fn serialize(&self) -> Value;
}

/// Rebuilds a value from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `value` into `Self`.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as u64;
                if v <= i64::MAX as u64 {
                    Value::Int(v as i64)
                } else {
                    Value::UInt(v)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| Error::new(format!(
                        "expected unsigned integer, found {}", value.kind()
                    )))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| Error::new(format!(
                        "expected integer, found {}", value.kind()
                    )))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                value
                    .as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::new(format!(
                        "expected number, found {}", value.kind()
                    )))
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!(
                "expected boolean, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(Error::new(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn serialize(&self) -> Value {
        // Deterministic output: sort keys like a BTreeMap would.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(Error::new(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(Error::new(format!(
                                "expected array of {expected}, found {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    other => Err(Error::new(format!(
                        "expected array, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}
