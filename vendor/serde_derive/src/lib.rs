//! Offline stand-in for `serde_derive`.
//!
//! `syn` and `quote` are unavailable offline, so the derive input is
//! parsed directly at the token level. Supported shapes — exactly what
//! the workspace uses:
//!
//! - structs with named fields,
//! - newtype (single-field tuple) structs,
//! - enums whose variants are all unit variants,
//! - `#[serde(transparent)]` on single-field structs.
//!
//! Generics and data-carrying enum variants are rejected with a
//! `compile_error!` so unsupported usage fails loudly at build time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the derive input turned out to be.
enum Shape {
    /// `struct S { a: A, b: B }` — field names in declaration order.
    NamedStruct(Vec<String>),
    /// `struct S(T);`
    Newtype,
    /// `#[serde(transparent)] struct S { inner: T }`
    TransparentNamed(String),
    /// `enum E { A, B }` — variant names in declaration order.
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

/// True when an attribute group body marks `#[serde(transparent)]`.
fn is_serde_transparent(tokens: &[TokenTree]) -> bool {
    // Attribute content is `serde ( transparent )`.
    match tokens {
        [TokenTree::Ident(name), TokenTree::Group(args)] => {
            name.to_string() == "serde" && args.stream().to_string().contains("transparent")
        }
        _ => false,
    }
}

/// Consumes leading attributes, returning whether any was
/// `#[serde(transparent)]`.
fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut transparent = false;
    while *pos + 1 < tokens.len() {
        let is_hash = matches!(&tokens[*pos], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_hash {
            break;
        }
        if let TokenTree::Group(g) = &tokens[*pos + 1] {
            if g.delimiter() == Delimiter::Bracket {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                transparent |= is_serde_transparent(&body);
                *pos += 2;
                continue;
            }
        }
        break;
    }
    transparent
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(&tokens[*pos], TokenTree::Ident(i) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(&tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

/// Parses the field names of a named-field struct body.
fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < body.len() {
        skip_attributes(body, &mut pos);
        if pos >= body.len() {
            break;
        }
        skip_visibility(body, &mut pos);
        let name = match &body[pos] {
            TokenTree::Ident(i) => i.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        pos += 1;
        match &body.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while pos < body.len() {
            match &body[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Parses the variant names of an all-unit-variant enum body.
fn parse_unit_variants(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < body.len() {
        skip_attributes(body, &mut pos);
        if pos >= body.len() {
            break;
        }
        let name = match &body[pos] {
            TokenTree::Ident(i) => i.to_string(),
            other => return Err(format!("expected variant name, found `{other}`")),
        };
        pos += 1;
        match &body.get(pos) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "variant `{name}` carries data; only unit variants are supported"
                ))
            }
            Some(other) => return Err(format!("unexpected token `{other}` after `{name}`")),
        }
        variants.push(name);
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let transparent = skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let keyword = match &tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    pos += 1;
    let name = match &tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    pos += 1;

    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("`{name}`: generic types are not supported"));
    }

    let body = match &tokens.get(pos) {
        Some(TokenTree::Group(g)) => g,
        other => return Err(format!("expected item body, found {other:?}")),
    };

    let shape = match (keyword.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => {
            let body: Vec<TokenTree> = body.stream().into_iter().collect();
            let fields = parse_named_fields(&body)?;
            if transparent {
                match fields.as_slice() {
                    [single] => Shape::TransparentNamed(single.clone()),
                    _ => {
                        return Err(format!(
                            "`{name}`: #[serde(transparent)] needs exactly one field"
                        ))
                    }
                }
            } else {
                Shape::NamedStruct(fields)
            }
        }
        ("struct", Delimiter::Parenthesis) => {
            // Count top-level tuple fields by commas at angle depth 0.
            let body: Vec<TokenTree> = body.stream().into_iter().collect();
            let mut angle_depth = 0i32;
            let mut fields = if body.is_empty() { 0 } else { 1 };
            for t in &body {
                match t {
                    TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                    TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => fields += 1,
                    _ => {}
                }
            }
            // A trailing comma over-counts by one; tolerate it.
            if matches!(body.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                fields -= 1;
            }
            if fields != 1 {
                return Err(format!(
                    "`{name}`: only single-field tuple structs are supported"
                ));
            }
            Shape::Newtype
        }
        ("enum", Delimiter::Brace) => {
            let body: Vec<TokenTree> = body.stream().into_iter().collect();
            Shape::UnitEnum(parse_unit_variants(&body)?)
        }
        _ => return Err(format!("`{name}`: unsupported item shape")),
    };

    Ok(Item { name, shape })
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::serialize(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{pushes}])")
        }
        Shape::Newtype => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::TransparentNamed(field) => {
            format!("::serde::Serialize::serialize(&self.{field})")
        }
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),"
                    )
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::deserialize(value.field({f:?})?)?,"))
                .collect();
            format!("::std::result::Result::Ok({name} {{ {inits} }})")
        }
        Shape::Newtype => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(value)?))")
        }
        Shape::TransparentNamed(field) => format!(
            "::std::result::Result::Ok({name} {{ \
             {field}: ::serde::Deserialize::deserialize(value)? }})"
        ),
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "match value {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {arms}\n\
                         other => ::std::result::Result::Err(::serde::Error::new(\n\
                             ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     other => ::std::result::Result::Err(::serde::Error::new(\n\
                         ::std::format!(\"expected string for {name}, found {{}}\", other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(value: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
