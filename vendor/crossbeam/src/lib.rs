//! Offline stand-in for `crossbeam`.
//!
//! Only `crossbeam::thread::scope` is used by the workspace; it is
//! implemented on top of `std::thread::scope` (stable since 1.63), with
//! crossbeam's `Result`-returning panic behaviour.

#![warn(missing_docs)]

/// Scoped threads.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Error payload of a panicked scoped thread.
    pub type ScopeError = Box<dyn std::any::Any + Send + 'static>;

    /// A handle for spawning scoped threads, mirroring
    /// `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again
        /// (crossbeam's signature) so nested spawns are possible.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload).
        pub fn join(self) -> Result<T, ScopeError> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all threads are joined before `scope` returns. A panic in
    /// any spawned thread surfaces as `Err`, as in crossbeam.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'a, 'scope> FnOnce(&'a Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let scope = Scope { inner: s };
                f(&scope)
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        let total_ref = &total;
        super::thread::scope(|scope| {
            for &x in &data {
                scope.spawn(move |_| {
                    total_ref.fetch_add(x, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(total.into_inner(), 10);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
