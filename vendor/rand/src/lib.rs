//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of the rand 0.8 API the workspace uses:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`, `from_seed`), [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically strong enough for initialisation, dropout,
//! batching, and synthetic-data generation. It is NOT the same stream as
//! upstream `StdRng` (ChaCha12), so seeds produce different (but equally
//! reproducible) sequences; nothing in the workspace depends on the
//! upstream stream.

#![warn(missing_docs)]

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Sampling a uniform value from a range of this type.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`; `hi` is exclusive.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; `hi` is inclusive.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Widening-multiply rejection-free mapping; bias is
                // below 2^-64 for the spans used here.
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + v) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                Self::sample_half_open(rng, lo, hi + 1)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, i8, i16, i32, i64, usize, isize);

impl SampleUniform for u64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let span = (hi - lo) as u128;
        lo + ((rng.next_u64() as u128 * span) >> 64) as u64
    }
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        if lo == 0 && hi == u64::MAX {
            return rng.next_u64();
        }
        Self::sample_half_open(rng, lo, hi + 1)
    }
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as Standard>::draw(rng);
                lo + u * (hi - lo)
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // For floats the closed/half-open distinction is
                // immaterial at f64 resolution.
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::draw(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of an inferred type (`rng.gen::<f64>()`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws uniformly from a range (`rng.gen_range(0..10)`,
    /// `rng.gen_range(0.0..1.0)`, inclusive ranges too).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0, 1]");
        f64::draw(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a 64-bit seed (the only constructor the
    /// workspace uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut sm);
            for (b, out) in v.to_le_bytes().iter().zip(chunk.iter_mut()) {
                *out = *b;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete RNG types.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's
    /// `StdRng`; a different — but equally reproducible — stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // A xoshiro state must not be all zero.
            if s.iter().all(|&x| x == 0) {
                let mut sm = 0x853c_49e6_748f_ea9b;
                for slot in &mut s {
                    *slot = splitmix64(&mut sm);
                }
            }
            StdRng { s }
        }
    }

    /// Alias: the workspace only ever needs one small deterministic RNG.
    pub type SmallRng = StdRng;
}

/// Slice helpers, mirroring `rand::seq::SliceRandom`.
pub mod seq {
    use super::{Rng, SampleUniform};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly random element (`None` for an empty slice).
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_closed(rng, 0, i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_half_open(rng, 0, self.len())])
            }
        }
    }
}

/// Commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
            let i = rng.gen_range(3..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&j));
            let f = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice ordered");
    }
}
