//! §4.1: VNF resource modelling on the KDN benchmark datasets.
//!
//! Trains one Env2Vec model across all three VNF datasets (Snort,
//! firewall, switch — a per-VNF embedding tells them apart) and compares
//! its test MAE against a per-dataset ridge baseline, reproducing the
//! single-model-vs-many argument of Table 4 in miniature.
//!
//! Run with: `cargo run --release -p env2vec --example kdn_modeling`

use env2vec::config::Env2VecConfig;
use env2vec::dataframe::Dataframe;
use env2vec::train::train_env2vec;
use env2vec::vocab::EmVocabulary;
use env2vec_baselines::ridge::{fit_best_alpha, ALPHA_GRID};
use env2vec_datagen::kdn::{KdnDataset, Vnf};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let window = 2;
    let datasets: Vec<KdnDataset> = Vnf::ALL
        .iter()
        .map(|&v| KdnDataset::generate(v, 2020))
        .collect();

    // Pooled dataframes with a per-VNF EM feature.
    let mut vocab = EmVocabulary::new(&["vnf"]);
    let mut splits = Vec::new();
    for ds in &datasets {
        let full =
            Dataframe::from_series(&ds.features, &ds.cpu, &[ds.vnf.name()], window, &mut vocab)?;
        let train: Vec<usize> = (0..ds.n_train - window).collect();
        let val: Vec<usize> = (ds.n_train - window..ds.n_train + ds.n_val - window).collect();
        let test: Vec<usize> = (ds.n_train + ds.n_val - window..full.len()).collect();
        splits.push((
            full.select(&train)?,
            full.select(&val)?,
            full.select(&test)?,
        ));
    }
    let train = Dataframe::concat(&splits.iter().map(|s| s.0.clone()).collect::<Vec<_>>())?;
    let val = Dataframe::concat(&splits.iter().map(|s| s.1.clone()).collect::<Vec<_>>())?;

    println!(
        "training one Env2Vec model on {} pooled rows from {} VNFs...",
        train.len(),
        datasets.len()
    );
    let cfg = Env2VecConfig {
        history_window: window,
        max_epochs: 40,
        learning_rate: 3e-3,
        ..Env2VecConfig::default()
    };
    let (model, _) = train_env2vec(cfg, vocab, &train, &val)?;

    println!(
        "\n{:<10} {:>14} {:>22}",
        "VNF", "Ridge MAE", "Env2Vec (single) MAE"
    );
    for (ds, (_, _, test)) in datasets.iter().zip(&splits) {
        // Per-dataset ridge with the paper's alpha grid.
        let (tx, ty) = ds.train();
        let (vx, vy) = ds.validation();
        let (ridge, _) = fit_best_alpha(&tx, ty, &vx, vy, &ALPHA_GRID)?;
        let (sx, sy) = ds.test();
        let ridge_pred = ridge.predict(&sx)?;
        let ridge_mae: f64 = ridge_pred
            .iter()
            .zip(sy)
            .map(|(p, a)| (p - a).abs())
            .sum::<f64>()
            / sy.len() as f64;

        let env2vec_pred = model.predict(test)?;
        let env2vec_mae: f64 = env2vec_pred
            .iter()
            .zip(&test.target)
            .map(|(p, a)| (p - a).abs())
            .sum::<f64>()
            / test.target.len() as f64;
        println!(
            "{:<10} {:>14.2} {:>22.2}",
            ds.vnf.name(),
            ridge_mae,
            env2vec_mae
        );
    }
    println!(
        "\nOne model, three VNFs: the per-VNF embedding absorbs the \
         differences the paper's Table 4 demonstrates."
    );
    Ok(())
}
