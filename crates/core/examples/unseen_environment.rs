//! §4.3 / Figure 5: detecting problems in a previously unseen environment
//! by reusing learned environment embeddings.
//!
//! One chain is held out entirely: the model never sees any of its data.
//! Its EM tuple is nonetheless *constructible* from embeddings learned on
//! other chains (same testbed under a different SUT, same test case on a
//! different testbed, ...), so Env2Vec screens the execution immediately —
//! "while other approaches still need to collect new training data".
//!
//! Run with: `cargo run --release -p env2vec --example unseen_environment`

use env2vec::anomaly::AnomalyDetector;
use env2vec::config::Env2VecConfig;
use env2vec::dataframe::Dataframe;
use env2vec::train::train_env2vec;
use env2vec::vocab::EmVocabulary;
use env2vec_datagen::telecom::{TelecomConfig, TelecomDataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut gen = TelecomConfig::small();
    gen.fault_fraction = 1.0;
    let dataset = TelecomDataset::generate(gen);
    let window = 2;

    // Hold out chain 0 completely — the "new previously unseen
    // environment" of Figure 5.
    let held_out = &dataset.chains[0];
    println!(
        "held-out environment: <{}, {}, {}, {}>",
        held_out.testbed,
        held_out.sut,
        held_out.testcase,
        held_out.current().labels.build
    );

    // Train on everything else.
    let mut vocab = EmVocabulary::telecom();
    let mut train_frames = Vec::new();
    let mut val_frames = Vec::new();
    for chain in dataset.chains.iter().filter(|c| c.id != held_out.id) {
        for ex in chain.history() {
            let df =
                Dataframe::from_series(&ex.cf, &ex.cpu, &ex.labels.values(), window, &mut vocab)?;
            let (t, v) = df.split_validation(0.15)?;
            train_frames.push(t);
            val_frames.push(v);
        }
    }
    let train = Dataframe::concat(&train_frames)?;
    let val = Dataframe::concat(&val_frames)?;
    let (model, _) = train_env2vec(Env2VecConfig::fast(), vocab, &train, &val)?;

    // Show the Figure 5 mix-and-match: which of the held-out tuple's
    // components were learned from *other* environments?
    let values = held_out.current().labels.values();
    let encoded = model.vocab().encode(&values);
    for (name, (value, idx)) in ["testbed", "sut", "testcase", "build"]
        .iter()
        .zip(values.iter().zip(&encoded))
    {
        println!(
            "  {name:<9} {value:<22} -> {}",
            if *idx == 0 {
                "UNKNOWN (falls back to the learned <unk> embedding)".to_string()
            } else {
                format!("embedding row {idx} learned from other chains")
            }
        );
    }

    // Screen the unseen execution: no per-environment history exists, so
    // the error distribution comes from the execution itself (§4.3).
    let current = held_out.current();
    let df =
        Dataframe::from_series_frozen(&current.cf, &current.cpu, &values, window, model.vocab())?;
    let predicted = model.predict(&df)?;
    let detector = AnomalyDetector::new(2.0);
    let alarms = detector.detect_unseen(&predicted, &df.target)?;

    println!(
        "\nscreening the unseen execution ({} injected problems):",
        current.faults.len()
    );
    for a in &alarms {
        let hits_truth = current
            .faults
            .iter()
            .any(|f| a.start + window < f.end + window && f.start < a.end + window);
        println!(
            "  ALARM t={}..{} observed {:.1}% vs predicted {:.1}% [{}]",
            a.start + window,
            a.end + window,
            a.observed_at_peak,
            a.predicted_at_peak,
            if hits_truth {
                "matches ground truth"
            } else {
                "false alarm"
            }
        );
    }
    if alarms.is_empty() {
        println!("  no alarms raised");
    }

    // Contrast: per-environment baselines are simply not applicable.
    println!(
        "\nRidge/Ridge_ts on this environment: N/A — no historical data to \
         train on (the paper's Table 6)."
    );
    Ok(())
}
