//! The complete Figure 2 testing workflow against the telemetry substrate.
//!
//! Walks all five numbered steps of the paper's §3:
//!
//! 1. testbed data collection into the TSDB + service discovery,
//! 2. daily model training on unflagged data,
//! 3. the prediction pipeline reading dataframes back from the TSDB,
//! 4. alarms pushed into the alarm store (the PostgreSQL stand-in),
//! 5. model publish/fetch through the registry (the HTTP server stand-in).
//!
//! Run with: `cargo run --release -p env2vec --example testing_workflow`

use env2vec::anomaly::AnomalyDetector;
use env2vec::config::Env2VecConfig;
use env2vec::dataframe::Dataframe;
use env2vec::pipeline::{
    collect_execution, em_record_id, fetch_latest_model, publish_model, read_dataframe,
    screen_new_build,
};
use env2vec::train::train_env2vec;
use env2vec::vocab::EmVocabulary;
use env2vec_datagen::telecom::{TelecomConfig, TelecomDataset};
use env2vec_telemetry::alarms::AlarmStore;
use env2vec_telemetry::discovery::ServiceDiscovery;
use env2vec_telemetry::registry::ModelRegistry;
use env2vec_telemetry::tsdb::TimeSeriesDb;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut gen = TelecomConfig::small();
    gen.fault_fraction = 0.6;
    let dataset = TelecomDataset::generate(gen);
    let window = 2;

    // Shared infrastructure, as in Figure 2.
    let tsdb = TimeSeriesDb::new();
    let mut discovery = ServiceDiscovery::new();
    let alarms = AlarmStore::new();
    let registry = ModelRegistry::new();

    // Step 1: every execution streams its metrics into the TSDB, keyed by
    // its EM record id via service discovery.
    for chain in &dataset.chains {
        for ex in &chain.executions {
            collect_execution(&tsdb, &mut discovery, ex);
        }
    }
    println!(
        "step 1: collected {} series / {} samples; discovery file:\n{}...\n",
        tsdb.num_series(),
        tsdb.num_samples(),
        &discovery.to_json()[..200.min(discovery.to_json().len())]
    );

    // Step 2: daily training on all *historical* (unflagged) data, read
    // back out of the TSDB like the real training pipeline would.
    let mut vocab = EmVocabulary::telecom();
    let mut train_frames = Vec::new();
    let mut val_frames = Vec::new();
    for chain in &dataset.chains {
        for ex in chain.history() {
            // Grow the vocabulary from the EM labels...
            vocab.encode_or_add(&ex.labels.values());
            // ...and assemble the dataframe from TSDB queries.
            let df = read_dataframe(&tsdb, ex, window, &vocab)?;
            let (t, v) = df.split_validation(0.15)?;
            train_frames.push(t);
            val_frames.push(v);
        }
    }
    let train = Dataframe::concat(&train_frames)?;
    let val = Dataframe::concat(&val_frames)?;
    let (model, _) = train_env2vec(Env2VecConfig::fast(), vocab, &train, &val)?;
    println!("step 2: trained daily model on {} rows", train.len());

    // Step 5 (publish side): the training pipeline publishes the model.
    let version = publish_model(&registry, "daily", &model);
    println!("step 5: published model version {version}");

    // Step 5 (fetch side) + steps 3–4: the prediction pipeline fetches the
    // latest model and screens every chain's new build.
    let model = fetch_latest_model(&registry)?;
    let detector = AnomalyDetector::new(2.0);
    let mut chains_alarmed = 0;
    for chain in &dataset.chains {
        let ids = screen_new_build(&model, chain, &detector, &alarms)?;
        if !ids.is_empty() {
            chains_alarmed += 1;
        }
    }
    println!(
        "steps 3-4: screened {} new builds; {} raised alarms ({} alarms total)\n",
        dataset.chains.len(),
        chains_alarmed,
        alarms.len()
    );

    // A testing engineer reviews the alarm store, pinpointing testbeds and
    // intervals (the paper's step 4 requirement).
    for alarm in alarms.all().iter().take(5) {
        println!(
            "alarm #{} {} on {}: t={}..{} observed {:.1}% vs predicted {:.1}% (gamma {})",
            alarm.id,
            alarm.env.get("build").unwrap_or("?"),
            alarm.env.get("testbed").unwrap_or("?"),
            alarm.start,
            alarm.end,
            alarm.observed,
            alarm.predicted,
            alarm.gamma
        );
    }
    // Cross-check one alarm against the generator's ground truth.
    if let Some(alarm) = alarms.all().first() {
        let env = alarm.env.get("env").expect("alarms carry the EM id");
        let chain = dataset
            .chains
            .iter()
            .find(|c| em_record_id(c.current()) == env)
            .expect("alarm points at a generated execution");
        println!(
            "\nground truth for {}: {:?}",
            env,
            chain
                .current()
                .faults
                .iter()
                .map(|f| (f.kind, f.start, f.end))
                .collect::<Vec<_>>()
        );
    }
    Ok(())
}
