//! Quickstart: train Env2Vec on one build chain and screen a new build.
//!
//! This is the smallest end-to-end use of the public API:
//!
//! 1. generate a synthetic telecom build chain,
//! 2. assemble dataframes (CFs ∪ EM ∪ RU-history, paper Table 2),
//! 3. train the Env2Vec model (FNN + GRU + environment embeddings),
//! 4. fit the chain's prediction-error distribution on its history,
//! 5. screen the new build with the γ·σ contextual anomaly rule.
//!
//! Run with: `cargo run --release -p env2vec --example quickstart`

use env2vec::anomaly::AnomalyDetector;
use env2vec::config::Env2VecConfig;
use env2vec::dataframe::Dataframe;
use env2vec::train::train_env2vec;
use env2vec::vocab::EmVocabulary;
use env2vec_datagen::telecom::{TelecomConfig, TelecomDataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small synthetic testing campaign: several build chains, the
    //    final build of some chains carries injected performance problems.
    let mut gen = TelecomConfig::small();
    gen.fault_fraction = 1.0; // make sure the demo chain has a problem
    let dataset = TelecomDataset::generate(gen);
    let window = 2;

    // 2. Training data: every chain's *historical* builds. The vocabulary
    //    grows as EM tuples are encoded.
    let mut vocab = EmVocabulary::telecom();
    let mut train_frames = Vec::new();
    let mut val_frames = Vec::new();
    for chain in &dataset.chains {
        for ex in chain.history() {
            let df =
                Dataframe::from_series(&ex.cf, &ex.cpu, &ex.labels.values(), window, &mut vocab)?;
            let (train, val) = df.split_validation(0.15)?;
            train_frames.push(train);
            val_frames.push(val);
        }
    }
    let train = Dataframe::concat(&train_frames)?;
    let val = Dataframe::concat(&val_frames)?;
    println!(
        "training on {} rows from {} chains ({} EM features)",
        train.len(),
        dataset.chains.len(),
        vocab.num_features()
    );

    // 3. Train the single generic model.
    let (model, report) = train_env2vec(Env2VecConfig::fast(), vocab, &train, &val)?;
    println!(
        "trained: {} weights, best epoch {} (val MSE {:.4})",
        model.params().num_weights(),
        report.best_epoch,
        report.val_losses[report.best_epoch]
    );

    // 4–5. Screen one chain's new build.
    let chain = &dataset.chains[0];
    let mut hist_pred = Vec::new();
    let mut hist_obs = Vec::new();
    for ex in chain.history() {
        let df = Dataframe::from_series_frozen(
            &ex.cf,
            &ex.cpu,
            &ex.labels.values(),
            window,
            model.vocab(),
        )?;
        hist_pred.extend(model.predict(&df)?);
        hist_obs.extend_from_slice(&df.target);
    }
    let dist = AnomalyDetector::fit_error_distribution(&hist_pred, &hist_obs)?;
    println!(
        "chain {} error distribution: mu {:+.2}, sigma {:.2}",
        chain.id, dist.mean, dist.std_dev
    );

    let current = chain.current();
    let df = Dataframe::from_series_frozen(
        &current.cf,
        &current.cpu,
        &current.labels.values(),
        window,
        model.vocab(),
    )?;
    let predicted = model.predict(&df)?;
    let detector = AnomalyDetector::new(2.0);
    let alarms = detector.detect(&dist, &predicted, &df.target)?;

    println!(
        "\nscreening build {} on {} ({} ground-truth problems injected):",
        current.labels.build,
        chain.testbed,
        current.faults.len()
    );
    for a in &alarms {
        println!(
            "  ALARM timesteps {}..{}: observed {:.1}% CPU, predicted {:.1}%",
            a.start + window,
            a.end + window,
            a.observed_at_peak,
            a.predicted_at_peak
        );
    }
    if alarms.is_empty() {
        println!("  no anomalies at gamma = 2");
    }
    for f in &current.faults {
        println!(
            "  ground truth: {:?} at {}..{} (+{:.1} CPU points)",
            f.kind, f.start, f.end, f.magnitude
        );
    }
    Ok(())
}
