//! §4.3's closing loop: detect in an unseen environment, then absorb its
//! data by incremental retraining.
//!
//! A model trained without a target environment first screens it blind
//! (embeddings reused from similar environments, error distribution over
//! the execution itself). Once the environment's history is available,
//! [`env2vec::train::fine_tune_env2vec`] continues training on it — "This
//! problem is resolved by retraining Env2Vec incrementally with the new
//! data from the environment" — and the fit visibly improves.
//!
//! Run with: `cargo run --release -p env2vec --example incremental_retraining`

use env2vec::config::Env2VecConfig;
use env2vec::dataframe::Dataframe;
use env2vec::train::{fine_tune_env2vec, train_env2vec};
use env2vec::vocab::EmVocabulary;
use env2vec_datagen::telecom::{TelecomConfig, TelecomDataset};

fn mae(pred: &[f64], actual: &[f64]) -> f64 {
    pred.iter()
        .zip(actual)
        .map(|(p, a)| (p - a).abs())
        .sum::<f64>()
        / actual.len() as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = TelecomDataset::generate(TelecomConfig::small());
    let window = 2;

    // Hold out three chains entirely — the unseen environments.
    let held_out: Vec<usize> = vec![1, 2, 3];

    // Train the blind model on everything else.
    let mut vocab = EmVocabulary::telecom();
    let mut trains = Vec::new();
    let mut vals = Vec::new();
    for chain in dataset.chains.iter().filter(|c| !held_out.contains(&c.id)) {
        for ex in chain.history() {
            let df =
                Dataframe::from_series(&ex.cf, &ex.cpu, &ex.labels.values(), window, &mut vocab)?;
            let (t, v) = df.split_validation(0.15)?;
            trains.push(t);
            vals.push(v);
        }
    }
    let (mut model, _) = train_env2vec(
        Env2VecConfig::fast(),
        vocab,
        &Dataframe::concat(&trains)?,
        &Dataframe::concat(&vals)?,
    )?;

    // Phase 1: blind fit on the held-out chains' current builds.
    let score = |model: &env2vec::Env2VecModel| -> Result<f64, Box<dyn std::error::Error>> {
        let mut total = 0.0;
        for &id in &held_out {
            let current = dataset.chains[id].current();
            let df = Dataframe::from_series_frozen(
                &current.cf,
                &current.clean_cpu,
                &current.labels.values(),
                window,
                model.vocab(),
            )?;
            total += mae(&model.predict(&df)?, &df.target);
        }
        Ok(total / held_out.len() as f64)
    };
    let before = score(&model)?;
    println!("blind model, unseen environments: mean MAE {before:.3} CPU points");

    // Phase 2: their history becomes available — retrain incrementally.
    let mut new_trains = Vec::new();
    let mut new_vals = Vec::new();
    for &id in &held_out {
        for ex in dataset.chains[id].history() {
            let df = Dataframe::from_series_frozen(
                &ex.cf,
                &ex.cpu,
                &ex.labels.values(),
                window,
                model.vocab(),
            )?;
            let (t, v) = df.split_validation(0.2)?;
            new_trains.push(t);
            new_vals.push(v);
        }
    }
    let report = fine_tune_env2vec(
        &mut model,
        20,
        3e-3,
        &Dataframe::concat(&new_trains)?,
        &Dataframe::concat(&new_vals)?,
    )?;
    let after = score(&model)?;
    println!(
        "after incremental retraining ({} epochs, best val MSE {:.5}): mean MAE {after:.3}",
        report.val_losses.len(),
        report.val_losses[report.best_epoch],
    );
    println!(
        "improvement: {:.1}% — the §4.3 loop closes without retraining from scratch.",
        100.0 * (before - after) / before
    );
    Ok(())
}
