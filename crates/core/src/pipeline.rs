//! The Figure 2 testing workflow, end to end.
//!
//! Wires the model into the telemetry substrate exactly as the paper's
//! deployment does:
//!
//! 1. **Testbed data collection** — [`collect_execution`] registers the
//!    execution's collector endpoint in service discovery (with its EM
//!    record id under the `env` label) and streams WMs/PMs/RU into the
//!    TSDB.
//! 3. **Prediction pipeline** — [`read_dataframe`] pulls the monitoring
//!    data back out of the TSDB by `env` label and assembles the Table 2
//!    dataframe.
//! 4. **Raising alarms** — [`screen_new_build`] fits the chain's error
//!    distribution on its historical builds, scores the new build, and
//!    pushes one alarm per anomalous interval into the alarm store, each
//!    pinpointing the testbed and the time interval.
//! 5. **Updating the model** — [`publish_model`] / [`fetch_latest_model`]
//!    round-trip the serialised model through the registry.
//!
//! (Step 2, training, lives in [`crate::train`].)

use env2vec_datagen::telecom::workload::CF_NAMES;
use env2vec_datagen::telecom::{BuildChain, Execution};
use env2vec_linalg::{Error, Matrix, Result};
use env2vec_telemetry::alarms::{AlarmStore, NewAlarm};
use env2vec_telemetry::discovery::{ScrapeTarget, ServiceDiscovery};
use env2vec_telemetry::labels::{LabelMatcher, LabelSet};
use env2vec_telemetry::registry::ModelRegistry;
use env2vec_telemetry::tsdb::{Sample, TimeSeriesDb};

use crate::anomaly::AnomalyDetector;
use crate::dataframe::Dataframe;
use crate::model::Env2VecModel;
use crate::serialize::{load_model, save_model};
use crate::vocab::EmVocabulary;

/// The EM record id linking an execution's metrics to its metadata.
pub fn em_record_id(ex: &Execution) -> String {
    format!(
        "EM_{}_{}_{}_{}",
        ex.labels.testbed, ex.labels.sut, ex.labels.testcase, ex.labels.build
    )
}

/// The full label set attached to an execution's series.
pub fn execution_labels(ex: &Execution) -> LabelSet {
    LabelSet::new()
        .with("env", em_record_id(ex))
        .with("testbed", ex.labels.testbed.clone())
        .with("sut", ex.labels.sut.clone())
        .with("testcase", ex.labels.testcase.clone())
        .with("build", ex.labels.build.clone())
}

/// Step 1: registers the execution in service discovery and streams its
/// metrics into the TSDB.
///
/// CF columns are stored as `cf_<name>` series and the CPU as
/// `cpu_usage`, all labelled with the EM record id.
pub fn collect_execution(tsdb: &TimeSeriesDb, discovery: &mut ServiceDiscovery, ex: &Execution) {
    let _span = env2vec_obs::span!("pipeline/collect_execution", chain = ex.chain_id);
    env2vec_obs::metrics()
        .counter("pipeline_collections_total")
        .inc();
    let env_id = em_record_id(ex);
    discovery.register(ScrapeTarget::for_env(
        format!("collector-{}:9100", ex.chain_id),
        env_id,
    ));
    let labels = execution_labels(ex);
    for (col, name) in CF_NAMES.iter().enumerate() {
        let samples: Vec<Sample> = (0..ex.len())
            .map(|t| Sample {
                timestamp: t as i64,
                value: ex.cf.get(t, col),
            })
            .collect();
        tsdb.append_series(&format!("cf_{name}"), &labels, &samples);
    }
    let cpu: Vec<Sample> = ex
        .cpu
        .iter()
        .enumerate()
        .map(|(t, &v)| Sample {
            timestamp: t as i64,
            value: v,
        })
        .collect();
    tsdb.append_series("cpu_usage", &labels, &cpu);
    let mem: Vec<Sample> = ex
        .mem
        .iter()
        .enumerate()
        .map(|(t, &v)| Sample {
            timestamp: t as i64,
            value: v,
        })
        .collect();
    tsdb.append_series("mem_usage", &labels, &mem);
}

/// Step 3 input: reads an execution's series back out of the TSDB and
/// assembles the model dataframe with a frozen vocabulary.
///
/// Returns an error when the environment has no data or series lengths
/// disagree.
pub fn read_dataframe(
    tsdb: &TimeSeriesDb,
    ex: &Execution,
    window: usize,
    vocab: &EmVocabulary,
) -> Result<Dataframe> {
    let env_id = em_record_id(ex);
    let _span = env2vec_obs::span!("pipeline/read_dataframe", env = env_id);
    env2vec_obs::metrics()
        .counter("pipeline_dataframe_reads_total")
        .inc();
    let matchers = [LabelMatcher::eq("env", env_id)];
    let cpu_series = tsdb.query_range("cpu_usage", &matchers, 0, i64::MAX);
    let cpu_series = cpu_series.first().ok_or(Error::Empty {
        routine: "read_dataframe: no cpu series",
    })?;
    let cpu: Vec<f64> = cpu_series.samples.iter().map(|s| s.value).collect();

    let mut columns: Vec<Vec<f64>> = Vec::with_capacity(CF_NAMES.len());
    for name in CF_NAMES {
        let series = tsdb.query_range(&format!("cf_{name}"), &matchers, 0, i64::MAX);
        let series = series.first().ok_or(Error::Empty {
            routine: "read_dataframe: missing cf series",
        })?;
        if series.samples.len() != cpu.len() {
            return Err(Error::ShapeMismatch {
                op: "read_dataframe",
                lhs: (series.samples.len(), 1),
                rhs: (cpu.len(), 1),
            });
        }
        columns.push(series.samples.iter().map(|s| s.value).collect());
    }
    let cf = Matrix::from_fn(cpu.len(), CF_NAMES.len(), |t, j| columns[j][t]);
    Dataframe::from_series_frozen(&cf, &cpu, &ex.labels.values(), window, vocab)
}

/// Which resource series of an execution a model predicts and screens.
///
/// §4.2: "This approach can be used for detecting performance problems
/// across many types of resources such as CPU, memory and disk, or other
/// VNF specific KPIs."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// CPU utilisation (the paper's headline target).
    Cpu,
    /// Memory utilisation (leak-style problems).
    Memory,
}

impl Resource {
    /// The TSDB metric name for this resource.
    pub fn metric(self) -> &'static str {
        match self {
            Resource::Cpu => "cpu_usage",
            Resource::Memory => "mem_usage",
        }
    }

    /// The observed series of an execution.
    pub fn series(self, ex: &Execution) -> &[f64] {
        match self {
            Resource::Cpu => &ex.cpu,
            Resource::Memory => &ex.mem,
        }
    }
}

/// Steps 3–4: scores a chain's current build against its history and
/// pushes one alarm per anomalous interval (CPU, the paper's headline
/// resource).
///
/// Returns the raised alarm ids. Historical executions provide the error
/// distribution; the dataframe window offset is added back so alarm
/// intervals are in raw timestep coordinates.
pub fn screen_new_build(
    model: &Env2VecModel,
    chain: &BuildChain,
    detector: &AnomalyDetector,
    alarms: &AlarmStore,
) -> Result<Vec<u64>> {
    screen_new_build_resource(model, chain, detector, alarms, Resource::Cpu)
}

/// [`screen_new_build`] generalised over the target resource: the model
/// must have been trained on the same resource's series.
pub fn screen_new_build_resource(
    model: &Env2VecModel,
    chain: &BuildChain,
    detector: &AnomalyDetector,
    alarms: &AlarmStore,
    resource: Resource,
) -> Result<Vec<u64>> {
    let mut span = env2vec_obs::span!(
        "pipeline/screen_new_build",
        testbed = chain.testbed,
        resource = resource.metric(),
    );
    env2vec_obs::metrics()
        .counter("pipeline_screens_total")
        .inc();
    let window = model.config.history_window;
    let vocab = model.vocab();

    // Error distribution over all historical builds of this chain.
    let mut predicted_hist = Vec::new();
    let mut observed_hist = Vec::new();
    for ex in chain.history() {
        let df = Dataframe::from_series_frozen(
            &ex.cf,
            resource.series(ex),
            &ex.labels.values(),
            window,
            vocab,
        )?;
        predicted_hist.extend(model.predict(&df)?);
        observed_hist.extend_from_slice(&df.target);
    }
    let dist = AnomalyDetector::fit_error_distribution(&predicted_hist, &observed_hist)?;

    // Score the new build.
    let current = chain.current();
    let df = Dataframe::from_series_frozen(
        &current.cf,
        resource.series(current),
        &current.labels.values(),
        window,
        vocab,
    )?;
    let predicted = model.predict(&df)?;
    let intervals = detector.detect(&dist, &predicted, &df.target)?;

    span.arg("alarms", intervals.len());
    env2vec_obs::metrics()
        .counter_with(
            "pipeline_alarms_total",
            LabelSet::new().with("resource", resource.metric()),
        )
        .inc_by(intervals.len() as u64);
    if !intervals.is_empty() {
        env2vec_obs::info!(
            "alarms raised";
            testbed = chain.testbed,
            build = current.labels.build,
            resource = resource.metric(),
            count = intervals.len(),
        );
    }

    let labels = execution_labels(current);
    let ids = intervals
        .iter()
        .map(|iv| {
            alarms.push(NewAlarm {
                env: labels.clone(),
                metric: resource.metric().into(),
                start: (iv.start + window) as i64,
                end: (iv.end - 1 + window) as i64,
                gamma: detector.gamma,
                predicted: iv.predicted_at_peak,
                observed: iv.observed_at_peak,
                message: format!(
                    "{} deviates from chain baseline on {} ({})",
                    resource.metric(),
                    chain.testbed,
                    current.labels.build
                ),
            })
        })
        .collect();
    Ok(ids)
}

/// Step 2 output / step 5 input: publishes a trained model to the
/// registry.
pub fn publish_model(registry: &ModelRegistry, tag: &str, model: &Env2VecModel) -> u64 {
    registry.publish(tag, save_model(model).into_bytes())
}

/// Step 5: fetches and deserialises the latest published model.
///
/// Returns an error when the registry is empty or the blob is malformed.
pub fn fetch_latest_model(registry: &ModelRegistry) -> Result<Env2VecModel> {
    let latest = registry.latest().ok_or(Error::Empty {
        routine: "fetch_latest_model",
    })?;
    let json = String::from_utf8(latest.blob).map_err(|_| Error::InvalidArgument {
        what: "model blob is not UTF-8",
    })?;
    load_model(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Env2VecConfig;
    use crate::train::train_env2vec;
    use env2vec_datagen::telecom::{TelecomConfig, TelecomDataset};

    fn tiny_dataset() -> TelecomDataset {
        let mut cfg = TelecomConfig::small();
        cfg.num_chains = 4;
        cfg.builds_per_chain = 3;
        cfg.steps_per_execution = 72;
        cfg.fault_fraction = 1.0;
        TelecomDataset::generate(cfg)
    }

    /// Trains a quick model on the dataset's historical executions.
    fn quick_model(ds: &TelecomDataset) -> Env2VecModel {
        let window = 2;
        let mut vocab = EmVocabulary::telecom();
        let mut frames = Vec::new();
        for chain in &ds.chains {
            for ex in chain.history() {
                frames.push(
                    Dataframe::from_series(
                        &ex.cf,
                        &ex.cpu,
                        &ex.labels.values(),
                        window,
                        &mut vocab,
                    )
                    .unwrap(),
                );
            }
        }
        let all = Dataframe::concat(&frames).unwrap();
        let (train, val) = all.split_validation(0.15).unwrap();
        let mut cfg = Env2VecConfig::fast();
        cfg.max_epochs = 12;
        let (model, _) = train_env2vec(cfg, vocab, &train, &val).unwrap();
        model
    }

    #[test]
    fn collect_and_read_round_trip() {
        let ds = tiny_dataset();
        let tsdb = TimeSeriesDb::new();
        let mut discovery = ServiceDiscovery::new();
        let ex = &ds.chains[0].executions[0];
        collect_execution(&tsdb, &mut discovery, ex);

        // Service discovery carries the EM record id, as in §3 step 1.
        assert_eq!(discovery.targets().len(), 1);
        assert_eq!(
            discovery.targets()[0].env(),
            Some(em_record_id(ex).as_str())
        );

        // Dataframe read back from the TSDB matches one built directly.
        let mut vocab = EmVocabulary::telecom();
        vocab.encode_or_add(&ex.labels.values());
        let via_tsdb = read_dataframe(&tsdb, ex, 2, &vocab).unwrap();
        let direct =
            Dataframe::from_series_frozen(&ex.cf, &ex.cpu, &ex.labels.values(), 2, &vocab).unwrap();
        assert_eq!(via_tsdb.target, direct.target);
        assert_eq!(via_tsdb.cf, direct.cf);
        assert_eq!(via_tsdb.em, direct.em);
    }

    #[test]
    fn read_dataframe_fails_without_collection() {
        let ds = tiny_dataset();
        let tsdb = TimeSeriesDb::new();
        let vocab = EmVocabulary::telecom();
        let ex = &ds.chains[0].executions[0];
        assert!(read_dataframe(&tsdb, ex, 2, &vocab).is_err());
    }

    #[test]
    fn screening_faulty_build_raises_located_alarms() {
        let ds = tiny_dataset();
        let model = quick_model(&ds);
        let alarms = AlarmStore::new();
        let detector = AnomalyDetector::new(2.0);

        let mut any_faulty_alarmed = false;
        for chain in &ds.chains {
            let ids = screen_new_build(&model, chain, &detector, &alarms).unwrap();
            if chain.current().has_faults() && !ids.is_empty() {
                any_faulty_alarmed = true;
            }
        }
        assert!(
            any_faulty_alarmed,
            "at least one injected fault must raise an alarm"
        );
        // Every alarm pinpoints a testbed and a valid interval.
        for alarm in alarms.all() {
            assert!(alarm.env.get("testbed").is_some());
            assert!(alarm.start <= alarm.end);
            assert_eq!(alarm.metric, "cpu_usage");
        }
    }

    #[test]
    fn resource_selector_maps_series_and_metric() {
        let ds = tiny_dataset();
        let ex = &ds.chains[0].executions[0];
        assert_eq!(Resource::Cpu.metric(), "cpu_usage");
        assert_eq!(Resource::Memory.metric(), "mem_usage");
        assert_eq!(Resource::Cpu.series(ex), ex.cpu.as_slice());
        assert_eq!(Resource::Memory.series(ex), ex.mem.as_slice());
    }

    #[test]
    fn collected_memory_series_round_trips_through_tsdb() {
        let ds = tiny_dataset();
        let tsdb = TimeSeriesDb::new();
        let mut discovery = ServiceDiscovery::new();
        let ex = &ds.chains[1].executions[0];
        collect_execution(&tsdb, &mut discovery, ex);
        let series = tsdb.query_range(
            "mem_usage",
            &[LabelMatcher::eq("env", em_record_id(ex))],
            0,
            i64::MAX,
        );
        assert_eq!(series.len(), 1);
        let values: Vec<f64> = series[0].samples.iter().map(|s| s.value).collect();
        assert_eq!(values, ex.mem);
    }

    #[test]
    fn model_registry_round_trip() {
        let ds = tiny_dataset();
        let model = quick_model(&ds);
        let registry = ModelRegistry::new();
        assert!(fetch_latest_model(&registry).is_err());
        let v = publish_model(&registry, "daily-2020-04-27", &model);
        assert_eq!(v, 1);
        let fetched = fetch_latest_model(&registry).unwrap();
        // Same predictions after the fetch, as required for step 5.
        let ex = &ds.chains[0].executions[0];
        let df = Dataframe::from_series_frozen(
            &ex.cf,
            &ex.cpu,
            &ex.labels.values(),
            model.config.history_window,
            model.vocab(),
        )
        .unwrap();
        assert_eq!(model.predict(&df).unwrap(), fetched.predict(&df).unwrap());
    }
}
