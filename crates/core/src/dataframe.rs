//! The model dataframe (paper Table 2).
//!
//! One row per timestep `p` of an execution: the contextual features
//! `a_p`, the EM tuple encoded through the vocabularies, the RU history
//! `{y_{p-n}, …, y_{p-1}}`, and the target `y_p`. The first `n` timesteps
//! of every execution are dropped because their history window is
//! incomplete. History columns are stored oldest-first, matching the
//! order the GRU consumes them.

use env2vec_linalg::{Error, Matrix, Result};

use crate::vocab::EmVocabulary;

/// A batch of model-ready rows.
///
/// # Examples
///
/// ```
/// use env2vec::dataframe::Dataframe;
/// use env2vec::vocab::EmVocabulary;
/// use env2vec_linalg::Matrix;
///
/// // Five timesteps of two contextual features plus the CPU series.
/// let cf = Matrix::from_rows(&(0..5).map(|t| vec![t as f64, 10.0]).collect::<Vec<_>>())?;
/// let cpu = vec![30.0, 31.0, 33.0, 32.0, 35.0];
///
/// let mut vocab = EmVocabulary::telecom();
/// let df = Dataframe::from_series(&cf, &cpu, &["tb", "sut", "tc", "S01"], 2, &mut vocab)?;
///
/// // The first two timesteps lack a full history window.
/// assert_eq!(df.len(), 3);
/// assert_eq!(df.history.row(0), &[30.0, 31.0]); // y_{p-2}, y_{p-1}
/// assert_eq!(df.target[0], 33.0);               // y_p
/// # Ok::<(), env2vec_linalg::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Dataframe {
    /// `n x num_cf` contextual features (raw, unscaled).
    pub cf: Matrix,
    /// `n x window` RU history, oldest first (raw, unscaled).
    pub history: Matrix,
    /// Encoded EM tuple per row (`n` entries of `num_em_features`
    /// indices).
    pub em: Vec<Vec<usize>>,
    /// Target RU value per row.
    pub target: Vec<f64>,
}

impl Dataframe {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.target.len()
    }

    /// Whether the dataframe has no rows.
    pub fn is_empty(&self) -> bool {
        self.target.is_empty()
    }

    /// Builds rows from one execution's series, growing the vocabulary
    /// (training path).
    ///
    /// `em_values` is the execution's EM tuple (constant across its
    /// timesteps). Returns an error when the series is shorter than
    /// `window + 1` or the matrix/target lengths disagree.
    pub fn from_series(
        cf: &Matrix,
        ru: &[f64],
        em_values: &[&str],
        window: usize,
        vocab: &mut EmVocabulary,
    ) -> Result<Self> {
        let encoded = vocab.encode_or_add(em_values);
        Self::assemble(cf, ru, encoded, window)
    }

    /// Builds rows with a frozen vocabulary (inference path): unknown EM
    /// values map to `<unk>`.
    ///
    /// Returns an error when the series is shorter than `window + 1` or
    /// lengths disagree.
    pub fn from_series_frozen(
        cf: &Matrix,
        ru: &[f64],
        em_values: &[&str],
        window: usize,
        vocab: &EmVocabulary,
    ) -> Result<Self> {
        let encoded = vocab.encode(em_values);
        Self::assemble(cf, ru, encoded, window)
    }

    fn assemble(cf: &Matrix, ru: &[f64], encoded: Vec<usize>, window: usize) -> Result<Self> {
        if cf.rows() != ru.len() {
            return Err(Error::ShapeMismatch {
                op: "dataframe",
                lhs: cf.shape(),
                rhs: (ru.len(), 1),
            });
        }
        if window == 0 {
            return Err(Error::InvalidArgument {
                what: "history window must be at least 1",
            });
        }
        if ru.len() <= window {
            return Err(Error::InvalidArgument {
                what: "series shorter than history window",
            });
        }
        let rows = ru.len() - window;
        let cf_out = Matrix::from_fn(rows, cf.cols(), |i, j| cf.get(i + window, j));
        // History oldest-first: column j holds y_{p-window+j}.
        let history = Matrix::from_fn(rows, window, |i, j| ru[i + j]);
        let target = ru[window..].to_vec();
        let em = vec![encoded; rows];
        Ok(Dataframe {
            cf: cf_out,
            history,
            em,
            target,
        })
    }

    /// Concatenates dataframes (e.g. one per execution) into one training
    /// set.
    ///
    /// Returns an error for an empty list or mismatched widths.
    pub fn concat(frames: &[Dataframe]) -> Result<Dataframe> {
        let Some(first) = frames.first() else {
            return Err(Error::Empty {
                routine: "dataframe concat",
            });
        };
        let mut cf = first.cf.clone();
        let mut history = first.history.clone();
        let mut em = first.em.clone();
        let mut target = first.target.clone();
        for f in &frames[1..] {
            cf = cf.vstack(&f.cf)?;
            history = history.vstack(&f.history)?;
            em.extend_from_slice(&f.em);
            target.extend_from_slice(&f.target);
        }
        Ok(Dataframe {
            cf,
            history,
            em,
            target,
        })
    }

    /// Extracts the given rows into a new dataframe (mini-batching).
    ///
    /// Returns an error when an index is out of range.
    pub fn select(&self, indices: &[usize]) -> Result<Dataframe> {
        for &i in indices {
            if i >= self.len() {
                return Err(Error::IndexOutOfBounds {
                    index: i,
                    len: self.len(),
                });
            }
        }
        Ok(Dataframe {
            cf: self.cf.select_rows(indices)?,
            history: self.history.select_rows(indices)?,
            em: indices.iter().map(|&i| self.em[i].clone()).collect(),
            target: indices.iter().map(|&i| self.target[i]).collect(),
        })
    }

    /// Splits off the trailing `fraction` of rows as a validation set
    /// (time-ordered split, as the paper uses for time series).
    ///
    /// Returns an error when either side would be empty.
    pub fn split_validation(&self, fraction: f64) -> Result<(Dataframe, Dataframe)> {
        // envlint: allow(float-cmp) — exact boundary check: 0.0 is the one
        // rejected value the half-open range pattern cannot exclude.
        if !(0.0..1.0).contains(&fraction) || fraction == 0.0 {
            return Err(Error::InvalidArgument {
                what: "validation fraction must be in (0, 1)",
            });
        }
        let n_val = ((self.len() as f64) * fraction).round() as usize;
        let n_val = n_val.clamp(1, self.len().saturating_sub(1));
        if self.len() < 2 {
            return Err(Error::InvalidArgument {
                what: "need at least two rows to split",
            });
        }
        let train_idx: Vec<usize> = (0..self.len() - n_val).collect();
        let val_idx: Vec<usize> = (self.len() - n_val..self.len()).collect();
        Ok((self.select(&train_idx)?, self.select(&val_idx)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Matrix, Vec<f64>) {
        let cf = Matrix::from_rows(
            &(0..6)
                .map(|i| vec![i as f64, 10.0 * i as f64])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let ru = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        (cf, ru)
    }

    #[test]
    fn assembles_history_and_targets() {
        let (cf, ru) = tiny();
        let mut vocab = EmVocabulary::telecom();
        let df = Dataframe::from_series(&cf, &ru, &["tb", "s", "tc", "b"], 2, &mut vocab).unwrap();
        assert_eq!(df.len(), 4);
        // Row 0 ↔ p=2: history [y0, y1] (oldest first), target y2, CF row 2.
        assert_eq!(df.history.row(0), &[1.0, 2.0]);
        assert_eq!(df.target[0], 3.0);
        assert_eq!(df.cf.row(0), &[2.0, 20.0]);
        // Last row ↔ p=5.
        assert_eq!(df.history.row(3), &[4.0, 5.0]);
        assert_eq!(df.target[3], 6.0);
        // EM encoded identically on all rows.
        assert!(df.em.iter().all(|e| e == &vec![1, 1, 1, 1]));
    }

    #[test]
    fn frozen_vocab_maps_unknowns() {
        let (cf, ru) = tiny();
        let mut vocab = EmVocabulary::telecom();
        vocab.encode_or_add(&["tb", "s", "tc", "b"]);
        let df = Dataframe::from_series_frozen(&cf, &ru, &["tb", "NEW_SUT", "tc", "b"], 1, &vocab)
            .unwrap();
        assert_eq!(df.em[0], vec![1, 0, 1, 1]);
    }

    #[test]
    fn rejects_bad_shapes() {
        let (cf, ru) = tiny();
        let mut vocab = EmVocabulary::telecom();
        assert!(
            Dataframe::from_series(&cf, &ru[..4], &["a", "b", "c", "d"], 2, &mut vocab).is_err()
        );
        assert!(Dataframe::from_series(&cf, &ru, &["a", "b", "c", "d"], 0, &mut vocab).is_err());
        assert!(Dataframe::from_series(&cf, &ru, &["a", "b", "c", "d"], 6, &mut vocab).is_err());
    }

    #[test]
    fn concat_and_select() {
        let (cf, ru) = tiny();
        let mut vocab = EmVocabulary::telecom();
        let a = Dataframe::from_series(&cf, &ru, &["t1", "s", "tc", "b1"], 2, &mut vocab).unwrap();
        let b = Dataframe::from_series(&cf, &ru, &["t2", "s", "tc", "b2"], 2, &mut vocab).unwrap();
        let joined = Dataframe::concat(&[a.clone(), b]).unwrap();
        assert_eq!(joined.len(), 8);
        assert_eq!(joined.em[0], vec![1, 1, 1, 1]);
        assert_eq!(joined.em[4], vec![2, 1, 1, 2]);

        let picked = joined.select(&[0, 4]).unwrap();
        assert_eq!(picked.len(), 2);
        assert_eq!(picked.target, vec![3.0, 3.0]);
        assert!(joined.select(&[99]).is_err());
        assert!(Dataframe::concat(&[]).is_err());
    }

    #[test]
    fn validation_split_is_time_ordered() {
        let (cf, ru) = tiny();
        let mut vocab = EmVocabulary::telecom();
        let df = Dataframe::from_series(&cf, &ru, &["t", "s", "tc", "b"], 1, &mut vocab).unwrap();
        let (train, val) = df.split_validation(0.4).unwrap();
        assert_eq!(train.len() + val.len(), df.len());
        // Validation rows are the most recent ones.
        assert_eq!(val.target.last(), df.target.last());
        assert!(train.target[0] < val.target[0]);
        assert!(df.split_validation(0.0).is_err());
        assert!(df.split_validation(1.0).is_err());
    }
}
