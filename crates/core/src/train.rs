//! Training loops.
//!
//! Appendix A.1 of the paper: MSE loss, the Adam update rule, dropout on
//! the hidden layer, and early stopping on a validation set. Both model
//! families (Env2Vec with embeddings, RFNN without) share one loop via a
//! small crate-private trait.

use env2vec_linalg::{Error, Matrix, Result};
use env2vec_nn::graph::{Graph, NodeId};
use env2vec_nn::optim::{Adam, Optimizer};
use env2vec_nn::params::{Bound, ParamSet};
use env2vec_nn::trainer::{
    grad_norm, param_distance, param_distance_filtered, param_norm, shuffled_batches,
    EarlyStopping, EpochStats, NullObserver, TrainObserver,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::Env2VecConfig;
use crate::dataframe::Dataframe;
use crate::model::{Env2VecModel, RfnnModel};
use crate::vocab::EmVocabulary;

/// Per-run training telemetry.
#[derive(Debug, Clone)]
pub struct TrainingReport {
    /// Validation MSE (on scaled targets) after each completed epoch.
    pub val_losses: Vec<f64>,
    /// Epoch index whose parameters were kept.
    pub best_epoch: usize,
    /// Whether early stopping fired before `max_epochs`.
    pub stopped_early: bool,
}

/// A [`TrainObserver`] that bridges epoch telemetry into the
/// observability layer: per-epoch `info!` log lines when `--verbose` is
/// on, and `train_*` metrics (labelled by model name) in the global
/// registry for the self-scraper to persist.
#[derive(Debug, Clone)]
pub struct ObsTrainObserver {
    model: String,
}

impl ObsTrainObserver {
    /// An observer reporting under `model` (e.g. `"env2vec"`, `"rfnn"`).
    pub fn new(model: impl Into<String>) -> Self {
        ObsTrainObserver {
            model: model.into(),
        }
    }

    fn labels(&self) -> env2vec_telemetry::LabelSet {
        env2vec_telemetry::LabelSet::new().with("model", self.model.as_str())
    }
}

impl TrainObserver for ObsTrainObserver {
    fn wants_epoch_stats(&self) -> bool {
        true
    }

    fn on_epoch_stats(&mut self, stats: &EpochStats) {
        let m = env2vec_obs::metrics();
        m.gauge_with("train_param_norm", self.labels())
            .set(stats.param_norm);
        m.gauge_with("train_update_norm", self.labels())
            .set(stats.update_norm);
        m.gauge_with("train_update_ratio", self.labels())
            .set(stats.update_ratio);
        m.gauge_with("train_embedding_drift", self.labels())
            .set(stats.embedding_drift);
        m.gauge_with("train_val_loss_delta", self.labels())
            .set(stats.val_loss_delta);
        m.gauge_with("train_best_val_loss", self.labels())
            .set(stats.best_val_loss);
    }

    fn on_epoch(&mut self, epoch: usize, val_loss: f64, grad_norm: f64) {
        let m = env2vec_obs::metrics();
        m.counter_with("train_epochs_total", self.labels()).inc();
        m.gauge_with("train_val_loss", self.labels()).set(val_loss);
        m.gauge_with("train_grad_norm", self.labels())
            .set(grad_norm);
        env2vec_obs::info!(
            "epoch complete";
            model = self.model,
            epoch = epoch,
            val_loss = val_loss,
            grad_norm = grad_norm,
        );
    }

    fn on_early_stop(&mut self, epoch: usize) {
        env2vec_obs::metrics()
            .counter_with("train_early_stops_total", self.labels())
            .inc();
        env2vec_obs::info!("early stop"; model = self.model, epoch = epoch);
    }

    fn on_complete(&mut self, best_epoch: usize, stopped_early: bool) {
        env2vec_obs::metrics()
            .counter_with("train_runs_total", self.labels())
            .inc();
        env2vec_obs::info!(
            "training complete";
            model = self.model,
            best_epoch = best_epoch,
            stopped_early = stopped_early,
        );
    }
}

/// Crate-private abstraction over the two trainable model families.
trait Trainable {
    fn params(&self) -> &ParamSet;
    fn params_mut(&mut self) -> &mut ParamSet;
    fn replace_params(&mut self, params: ParamSet);
    fn scale_target(&self, y: f64) -> f64;
    fn forward_graph(
        &self,
        graph: &mut Graph,
        bound: &Bound,
        batch: &Dataframe,
        dropout_rng: Option<&mut StdRng>,
    ) -> Result<NodeId>;
}

impl Trainable for Env2VecModel {
    fn params(&self) -> &ParamSet {
        Env2VecModel::params(self)
    }
    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }
    fn replace_params(&mut self, params: ParamSet) {
        self.set_params(params);
    }
    fn scale_target(&self, y: f64) -> f64 {
        self.y_scaler.scale(y)
    }
    fn forward_graph(
        &self,
        graph: &mut Graph,
        bound: &Bound,
        batch: &Dataframe,
        dropout_rng: Option<&mut StdRng>,
    ) -> Result<NodeId> {
        self.forward(graph, bound, batch, dropout_rng)
    }
}

impl Trainable for RfnnModel {
    fn params(&self) -> &ParamSet {
        RfnnModel::params(self)
    }
    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }
    fn replace_params(&mut self, params: ParamSet) {
        self.set_params(params);
    }
    fn scale_target(&self, y: f64) -> f64 {
        self.y_scaler.scale(y)
    }
    fn forward_graph(
        &self,
        graph: &mut Graph,
        bound: &Bound,
        batch: &Dataframe,
        dropout_rng: Option<&mut StdRng>,
    ) -> Result<NodeId> {
        self.forward(graph, bound, batch, dropout_rng)
    }
}

/// Trains an Env2Vec model on `train`, early-stopping on `val`.
///
/// `vocab` must already contain every EM value present in `train` (build
/// it while assembling the dataframes). Returns the trained model and the
/// per-epoch report, or an error for invalid inputs.
pub fn train_env2vec(
    config: Env2VecConfig,
    vocab: EmVocabulary,
    train: &Dataframe,
    val: &Dataframe,
) -> Result<(Env2VecModel, TrainingReport)> {
    train_env2vec_observed(config, vocab, train, val, &mut NullObserver)
}

/// [`train_env2vec`] with per-epoch [`TrainObserver`] hooks. The
/// observer only reads values the loop computes anyway, so results are
/// identical to the unobserved variant.
pub fn train_env2vec_observed(
    config: Env2VecConfig,
    vocab: EmVocabulary,
    train: &Dataframe,
    val: &Dataframe,
    observer: &mut dyn TrainObserver,
) -> Result<(Env2VecModel, TrainingReport)> {
    let mut model = Env2VecModel::new(config, vocab, train)?;
    let report = fit(&mut model, &config, train, val, observer)?;
    Ok((model, report))
}

/// Trains an RFNN model (no embeddings) on `train`, early-stopping on
/// `val`.
///
/// Returns the trained model and the per-epoch report.
pub fn train_rfnn(
    config: Env2VecConfig,
    train: &Dataframe,
    val: &Dataframe,
) -> Result<(RfnnModel, TrainingReport)> {
    train_rfnn_observed(config, train, val, &mut NullObserver)
}

/// [`train_rfnn`] with per-epoch [`TrainObserver`] hooks.
pub fn train_rfnn_observed(
    config: Env2VecConfig,
    train: &Dataframe,
    val: &Dataframe,
    observer: &mut dyn TrainObserver,
) -> Result<(RfnnModel, TrainingReport)> {
    let mut model = RfnnModel::new(config, train)?;
    let report = fit(&mut model, &config, train, val, observer)?;
    Ok((model, report))
}

/// Continues training an existing Env2Vec model on new data — the
/// incremental retraining §4.3 prescribes once an unseen environment has
/// produced data ("This problem is resolved by retraining Env2Vec
/// incrementally with the new data from the environment").
///
/// The model's vocabulary is frozen: new EM *values* still map to
/// `<unk>`, but new data for constructible environments sharpens their
/// embeddings. Scalers are kept from the original fit so predictions stay
/// on the same scale. Returns the per-epoch report.
pub fn fine_tune_env2vec(
    model: &mut Env2VecModel,
    epochs: usize,
    learning_rate: f64,
    train: &Dataframe,
    val: &Dataframe,
) -> Result<TrainingReport> {
    let config = Env2VecConfig {
        max_epochs: epochs,
        learning_rate,
        ..model.config
    };
    config
        .validate()
        .map_err(|what| Error::InvalidArgument { what })?;
    fit(model, &config, train, val, &mut NullObserver)
}

/// Validation MSE in scaled-target space (no dropout).
fn scaled_val_mse<M: Trainable>(model: &M, val: &Dataframe) -> Result<f64> {
    let mut graph = Graph::new();
    let bound = model.params().bind(&mut graph);
    let pred = model.forward_graph(&mut graph, &bound, val, None)?;
    let value = graph.value(pred);
    let n = value.rows() as f64;
    Ok(value
        .col_iter(0)
        .zip(&val.target)
        .map(|(p, &y)| {
            let t = model.scale_target(y);
            (p - t) * (p - t)
        })
        .sum::<f64>()
        / n)
}

/// The shared mini-batch Adam + early-stopping loop.
fn fit<M: Trainable>(
    model: &mut M,
    config: &Env2VecConfig,
    train: &Dataframe,
    val: &Dataframe,
    observer: &mut dyn TrainObserver,
) -> Result<TrainingReport> {
    if train.is_empty() || val.is_empty() {
        return Err(Error::Empty { routine: "fit" });
    }
    let mut opt = Adam::new(config.learning_rate);
    let mut stopper = EarlyStopping::new(config.patience, 1e-6);
    let mut dropout_rng = StdRng::seed_from_u64(config.seed ^ 0xd20f);
    let mut val_losses = Vec::new();
    let mut stopped_early = false;
    // Stats collection is read-only but clones the parameter set once
    // per epoch, so only pay for it when the observer opted in.
    let wants_stats = observer.wants_epoch_stats();
    let initial_params = wants_stats.then(|| model.params().clone());
    let mut prev_val_loss = f64::NAN;
    let mut best_val_loss = f64::INFINITY;

    // One graph for the whole fit: `reset` recycles every node's
    // value/gradient storage through the tape's scratch arena, so
    // steady-state steps run allocation-free where the per-batch
    // `Graph::new` used to rebuild everything from the allocator.
    let mut graph = Graph::new();
    for epoch in 0..config.max_epochs {
        let epoch_start_params = wants_stats.then(|| model.params().clone());
        let mut last_grad_norm = 0.0;
        for batch_idx in
            shuffled_batches(train.len(), config.batch_size, config.seed + epoch as u64)
        {
            let batch = train.select(&batch_idx)?;
            let scaled_targets: Vec<f64> = batch
                .target
                .iter()
                .map(|&y| model.scale_target(y))
                .collect();
            graph.reset();
            let bound = model.params().bind(&mut graph);
            let pred = model.forward_graph(&mut graph, &bound, &batch, Some(&mut dropout_rng))?;
            let target = graph.leaf(Matrix::col_vector(&scaled_targets));
            let loss = graph.mse(pred, target)?;
            graph.backward(loss)?;
            let grads = model.params().gradients(&graph, &bound)?;
            last_grad_norm = grad_norm(&grads);
            opt.step(model.params_mut(), &grads)?;
        }
        let loss = scaled_val_mse(model, val)?;
        val_losses.push(loss);
        observer.on_epoch(epoch, loss, last_grad_norm);
        if let (Some(initial), Some(start)) = (&initial_params, &epoch_start_params) {
            // f64::min ignores a NaN loss, so best_val_loss stays at the
            // best real value even after a divergence.
            best_val_loss = best_val_loss.min(loss);
            let p_norm = param_norm(model.params());
            let u_norm = param_distance(start, model.params());
            observer.on_epoch_stats(&EpochStats {
                epoch,
                val_loss: loss,
                grad_norm: last_grad_norm,
                param_norm: p_norm,
                update_norm: u_norm,
                update_ratio: if p_norm > 0.0 { u_norm / p_norm } else { 0.0 },
                embedding_drift: param_distance_filtered(initial, model.params(), |n| {
                    n.starts_with("em.")
                }),
                val_loss_delta: if prev_val_loss.is_nan() {
                    0.0
                } else {
                    loss - prev_val_loss
                },
                best_val_loss,
            });
            prev_val_loss = loss;
        }
        if stopper.observe(loss, model.params()) {
            stopped_early = true;
            observer.on_early_stop(epoch);
            break;
        }
    }
    // total_cmp gives a total order even if a loss went NaN, so epoch
    // selection can never panic mid-run (NaN sorts above every real
    // loss and is never chosen as the best epoch).
    let best_epoch = val_losses
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let current = model.params().clone();
    model.replace_params(stopper.into_best(current));
    observer.on_complete(best_epoch, stopped_early);
    Ok(TrainingReport {
        val_losses,
        best_epoch,
        stopped_early,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use env2vec_nn::loss::mae;

    /// A synthetic two-environment task where the environment shifts the
    /// target: y = f(cf) + offset(env) + AR carry-over.
    fn two_env_data(
        vocab: &mut EmVocabulary,
        offset_a: f64,
        offset_b: f64,
        n: usize,
    ) -> (Dataframe, Dataframe, Dataframe) {
        let make = |offset: f64, env: [&str; 4], vocab: &mut EmVocabulary| {
            let cf = Matrix::from_fn(n, 4, |i, j| {
                (((i * 13 + j * 7) % 17) as f64 / 17.0) + 0.1 * (i as f64 * 0.4).sin()
            });
            let mut ru = vec![offset];
            for t in 1..n {
                let drive = 20.0 * cf.get(t, 0) + 8.0 * cf.get(t, 1) * cf.get(t, 1);
                ru.push(0.3 * ru[t - 1] + 0.7 * (offset + drive));
            }
            Dataframe::from_series(&cf, &ru, &env, 2, vocab).unwrap()
        };
        let a = make(offset_a, ["tb1", "sutA", "tc", "S01"], vocab);
        let b = make(offset_b, ["tb2", "sutB", "tc", "S01"], vocab);
        let all = Dataframe::concat(&[a.clone(), b.clone()]).unwrap();
        (all, a, b)
    }

    #[test]
    fn env2vec_training_reduces_validation_loss() {
        let mut vocab = EmVocabulary::telecom();
        let (all, _, _) = two_env_data(&mut vocab, 30.0, 60.0, 120);
        let (train, val) = all.split_validation(0.2).unwrap();
        let (model, report) = train_env2vec(Env2VecConfig::fast(), vocab, &train, &val).unwrap();
        assert!(
            report.val_losses.last().copied().unwrap_or(f64::INFINITY) < report.val_losses[0],
            "losses {:?}",
            report.val_losses
        );
        let pred = model.predict(&val).unwrap();
        let err = mae(&pred, &val.target).unwrap();
        assert!(err < 8.0, "validation MAE {err}");
    }

    #[test]
    fn embeddings_beat_pooled_rfnn_on_env_shifted_data() {
        // The defining experiment in miniature (paper §4.1.4): pooled
        // training without embeddings cannot tell environments apart when
        // their targets differ by a large offset, Env2Vec can.
        let mut vocab = EmVocabulary::telecom();
        let (all, a, b) = two_env_data(&mut vocab, 20.0, 70.0, 150);
        let (train, val) = all.split_validation(0.15).unwrap();
        let cfg = Env2VecConfig::fast();
        let (env2vec, _) = train_env2vec(cfg, vocab, &train, &val).unwrap();
        let (rfnn_all, _) = train_rfnn(cfg, &train, &val).unwrap();

        let score = |pred: &[f64], t: &[f64]| mae(pred, t).unwrap();
        let e_a = score(&env2vec.predict(&a).unwrap(), &a.target);
        let e_b = score(&env2vec.predict(&b).unwrap(), &b.target);
        let r_a = score(&rfnn_all.predict(&a).unwrap(), &a.target);
        let r_b = score(&rfnn_all.predict(&b).unwrap(), &b.target);
        let env2vec_mae = (e_a + e_b) / 2.0;
        let rfnn_mae = (r_a + r_b) / 2.0;
        assert!(
            env2vec_mae < rfnn_mae,
            "Env2Vec {env2vec_mae} should beat pooled RFNN {rfnn_mae}"
        );
    }

    #[test]
    fn early_stopping_restores_best_epoch() {
        let mut vocab = EmVocabulary::telecom();
        let (all, _, _) = two_env_data(&mut vocab, 30.0, 60.0, 80);
        let (train, val) = all.split_validation(0.2).unwrap();
        let cfg = Env2VecConfig {
            max_epochs: 40,
            patience: 3,
            ..Env2VecConfig::fast()
        };
        let (_, report) = train_env2vec(cfg, vocab, &train, &val).unwrap();
        let best = report.val_losses[report.best_epoch];
        assert!(report.val_losses.iter().all(|&l| l >= best - 1e-12));
    }

    #[test]
    fn all_combination_modes_train_and_fit() {
        // §3.2's claim: the alternatives "yield similar results". Each
        // mode must train to a sane fit on the same data.
        use crate::config::Combination;
        let mut results = Vec::new();
        for combination in [
            Combination::HadamardSum,
            Combination::Bilinear,
            Combination::MlpHead,
        ] {
            let mut vocab = EmVocabulary::telecom();
            let (all, a, b) = two_env_data(&mut vocab, 25.0, 65.0, 120);
            let (train, val) = all.split_validation(0.15).unwrap();
            let cfg = Env2VecConfig {
                combination,
                max_epochs: 30,
                ..Env2VecConfig::fast()
            };
            let (model, _) = train_env2vec(cfg, vocab, &train, &val).unwrap();
            let err = (mae(&model.predict(&a).unwrap(), &a.target).unwrap()
                + mae(&model.predict(&b).unwrap(), &b.target).unwrap())
                / 2.0;
            assert!(err < 8.0, "{combination:?} mae {err}");
            results.push(err);
        }
        // No mode is wildly worse than the best (the "similar results"
        // claim, loosely).
        let best = results.iter().cloned().fold(f64::INFINITY, f64::min);
        for (i, err) in results.iter().enumerate() {
            assert!(*err < best * 4.0 + 1.0, "mode {i} err {err} vs best {best}");
        }
    }

    #[test]
    fn attention_variant_trains_and_serialises() {
        // The §6 attention extension must train to a comparable fit and
        // survive persistence (its extra parameters restore by name).
        let mut vocab = EmVocabulary::telecom();
        let (all, a, _) = two_env_data(&mut vocab, 25.0, 65.0, 120);
        let (train, val) = all.split_validation(0.15).unwrap();
        let cfg = Env2VecConfig {
            attention: true,
            history_window: 4,
            max_epochs: 30,
            ..Env2VecConfig::fast()
        };
        let (model, _) = train_env2vec(cfg, vocab, &train, &val).unwrap();
        let err = mae(&model.predict(&a).unwrap(), &a.target).unwrap();
        assert!(err < 8.0, "attention variant mae {err}");
        assert!(model.params().find("attn.w").is_some());

        let json = crate::serialize::save_model(&model);
        let restored = crate::serialize::load_model(&json).unwrap();
        assert_eq!(model.predict(&a).unwrap(), restored.predict(&a).unwrap());
    }

    #[test]
    fn fine_tune_improves_fit_on_new_environment_data() {
        // Train on environment A only, then incrementally absorb B.
        let mut vocab = EmVocabulary::telecom();
        let (_, a, b) = two_env_data(&mut vocab, 25.0, 65.0, 120);
        let (train_a, val_a) = a.split_validation(0.2).unwrap();
        let cfg = Env2VecConfig::fast();
        let (mut model, _) = train_env2vec(cfg, vocab, &train_a, &val_a).unwrap();

        let before = mae(&model.predict(&b).unwrap(), &b.target).unwrap();
        let (train_b, val_b) = b.split_validation(0.2).unwrap();
        fine_tune_env2vec(&mut model, 20, 3e-3, &train_b, &val_b).unwrap();
        let after = mae(&model.predict(&b).unwrap(), &b.target).unwrap();
        assert!(
            after < before / 2.0,
            "fine-tuning must absorb the new environment: {before} -> {after}"
        );
        // The original environment must not be catastrophically forgotten.
        let a_after = mae(&model.predict(&a).unwrap(), &a.target).unwrap();
        assert!(a_after < 20.0, "environment A forgotten: mae {a_after}");
    }

    #[test]
    fn fine_tune_rejects_invalid_overrides() {
        let mut vocab = EmVocabulary::telecom();
        let (all, _, _) = two_env_data(&mut vocab, 25.0, 65.0, 60);
        let (train, val) = all.split_validation(0.2).unwrap();
        let (mut model, _) = train_env2vec(Env2VecConfig::fast(), vocab, &train, &val).unwrap();
        assert!(fine_tune_env2vec(&mut model, 0, 1e-3, &train, &val).is_err());
        assert!(fine_tune_env2vec(&mut model, 5, -1.0, &train, &val).is_err());
    }

    #[test]
    fn observer_does_not_change_numerics() {
        // Acceptance criterion for the observability layer: observed and
        // unobserved training with the same seed produce byte-identical
        // models (here checked via exact prediction equality).
        struct Recorder {
            epochs: usize,
            stats: usize,
            completed: bool,
        }
        impl env2vec_nn::trainer::TrainObserver for Recorder {
            fn on_epoch(&mut self, _epoch: usize, val_loss: f64, grad_norm: f64) {
                assert!(val_loss.is_finite() && grad_norm.is_finite());
                self.epochs += 1;
            }
            // Opting into stats exercises the per-epoch snapshot path, so
            // this test also proves stats collection is numerics-inert.
            fn wants_epoch_stats(&self) -> bool {
                true
            }
            fn on_epoch_stats(&mut self, stats: &env2vec_nn::trainer::EpochStats) {
                assert!(stats.param_norm.is_finite() && stats.param_norm > 0.0);
                assert!(stats.update_norm.is_finite());
                assert!(stats.update_ratio.is_finite());
                assert!(stats.embedding_drift.is_finite());
                assert!(stats.best_val_loss <= stats.val_loss + 1e-15);
                self.stats += 1;
            }
            fn on_complete(&mut self, _best_epoch: usize, _stopped_early: bool) {
                self.completed = true;
            }
        }

        let mut vocab_a = EmVocabulary::telecom();
        let (all, a, _) = two_env_data(&mut vocab_a, 30.0, 60.0, 100);
        let vocab_b = vocab_a.clone();
        let (train, val) = all.split_validation(0.2).unwrap();
        let cfg = Env2VecConfig::fast();

        let (plain, plain_report) = train_env2vec(cfg, vocab_a, &train, &val).unwrap();
        let mut rec = Recorder {
            epochs: 0,
            stats: 0,
            completed: false,
        };
        let (observed, observed_report) =
            train_env2vec_observed(cfg, vocab_b, &train, &val, &mut rec).unwrap();

        assert_eq!(plain_report.val_losses, observed_report.val_losses);
        assert_eq!(plain_report.best_epoch, observed_report.best_epoch);
        assert_eq!(plain.predict(&a).unwrap(), observed.predict(&a).unwrap());
        assert_eq!(rec.epochs, observed_report.val_losses.len());
        assert_eq!(rec.stats, rec.epochs);
        assert!(rec.completed);
    }

    #[test]
    fn obs_observer_records_metrics() {
        let mut vocab = EmVocabulary::telecom();
        let (all, _, _) = two_env_data(&mut vocab, 30.0, 60.0, 60);
        let (train, val) = all.split_validation(0.2).unwrap();
        let mut obs = ObsTrainObserver::new("test_numerics_check");
        let labels = env2vec_telemetry::LabelSet::new().with("model", "test_numerics_check");
        let before = env2vec_obs::metrics()
            .counter_with("train_epochs_total", labels.clone())
            .get();
        let (_, report) =
            train_env2vec_observed(Env2VecConfig::fast(), vocab, &train, &val, &mut obs).unwrap();
        let after = env2vec_obs::metrics()
            .counter_with("train_epochs_total", labels.clone())
            .get();
        assert_eq!((after - before) as usize, report.val_losses.len());
        assert!(env2vec_obs::metrics()
            .gauge_with("train_val_loss", labels.clone())
            .get()
            .is_finite());
        // The introspection-stream gauges are published too.
        for name in [
            "train_param_norm",
            "train_update_ratio",
            "train_embedding_drift",
            "train_best_val_loss",
        ] {
            let v = env2vec_obs::metrics()
                .gauge_with(name, labels.clone())
                .get();
            assert!(v.is_finite(), "{name} should be finite, got {v}");
        }
        assert!(
            env2vec_obs::metrics()
                .gauge_with("train_param_norm", labels)
                .get()
                > 0.0
        );
    }

    #[test]
    fn training_rejects_empty_sets() {
        let mut vocab = EmVocabulary::telecom();
        let (all, _, _) = two_env_data(&mut vocab, 30.0, 60.0, 40);
        let empty = Dataframe {
            cf: Matrix::zeros(0, all.cf.cols()),
            history: Matrix::zeros(0, all.history.cols()),
            em: vec![],
            target: vec![],
        };
        assert!(train_rfnn(Env2VecConfig::fast(), &all, &empty).is_err());
    }
}
