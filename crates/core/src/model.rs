//! The Env2Vec model and its embedding-free RFNN variant.
//!
//! [`Env2VecModel`] implements the architecture of §3.1–§3.2: an FNN over
//! the contextual features (`v_fs`), a GRU over the RU history (`v_ts`), a
//! dense layer mapping `[v_ts, v_fs]` to `v_d`, and per-EM-feature lookup
//! tables whose concatenation `C` combines with `v_d` through the paper's
//! Equation 2, `ŷ = Σ (v_d ⊙ C)`.
//!
//! [`RfnnModel`] is "a variant of Env2Vec ... without using the embeddings
//! of environments" (§4.1.3): the same FNN+GRU front end with a regression
//! head on the dense layer. Trained per environment it is the paper's
//! `RFNN`; trained on pooled data it is `RFNN_all`.

use env2vec_linalg::{Error, Matrix, Result};
use env2vec_nn::graph::{Graph, NodeId};
use env2vec_nn::layers::{dropout_mask, Activation, AttentionPool, Dense, Embedding, GruCell};
use env2vec_nn::params::{Bound, ParamSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::config::Env2VecConfig;
use crate::dataframe::Dataframe;
use crate::vocab::EmVocabulary;

/// Initialiser for the bilinear combination matrix: near-identity so the
/// Bilinear mode starts close to the Hadamard behaviour.
pub(crate) fn model_init_bilinear(rng: &mut StdRng, dim: usize) -> Matrix {
    let mut m = env2vec_nn::init::uniform(rng, dim, dim, 0.02);
    for i in 0..dim {
        let v = m.get(i, i) + 1.0;
        m.set(i, i, v);
    }
    m
}

/// Per-feature standardisation parameters (fit on training data).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scaler {
    /// Per-feature means.
    pub means: Vec<f64>,
    /// Per-feature standard deviations (zero-variance features get 1).
    pub stds: Vec<f64>,
}

impl Scaler {
    /// Fits on the rows of `x`.
    ///
    /// Returns an error for an empty matrix.
    pub fn fit(x: &Matrix) -> Result<Self> {
        if x.rows() == 0 {
            return Err(Error::Empty {
                routine: "scaler fit",
            });
        }
        let means = x.col_means();
        let mut stds = vec![0.0; x.cols()];
        for i in 0..x.rows() {
            for (s, (&v, &m)) in stds.iter_mut().zip(x.row(i).iter().zip(&means)) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut stds {
            *s = (*s / x.rows() as f64).sqrt();
            // envlint: allow(float-cmp) — exact zero-guard: a constant column
            // has std identically 0.0 and must not become a divisor.
            if *s == 0.0 {
                *s = 1.0;
            }
        }
        Ok(Scaler { means, stds })
    }

    /// Standardises a matrix.
    ///
    /// Returns an error on width mismatch.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix> {
        if x.cols() != self.means.len() {
            return Err(Error::ShapeMismatch {
                op: "scaler transform",
                lhs: x.shape(),
                rhs: (1, self.means.len()),
            });
        }
        Ok(Matrix::from_fn(x.rows(), x.cols(), |i, j| {
            (x.get(i, j) - self.means[j]) / self.stds[j]
        }))
    }
}

/// Scalar standardisation for the target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TargetScaler {
    /// Target mean.
    pub mean: f64,
    /// Target standard deviation (1 when degenerate).
    pub std: f64,
}

impl TargetScaler {
    /// Fits on a target vector.
    ///
    /// Returns an error for empty input.
    pub fn fit(y: &[f64]) -> Result<Self> {
        if y.is_empty() {
            return Err(Error::Empty {
                routine: "target scaler fit",
            });
        }
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let var = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / y.len() as f64;
        let std = var.sqrt();
        Ok(TargetScaler {
            mean,
            // envlint: allow(float-cmp) — exact zero-guard: a constant target
            // has std identically 0.0 and must not become a divisor.
            std: if std == 0.0 { 1.0 } else { std },
        })
    }

    /// Standardises one value.
    pub fn scale(&self, y: f64) -> f64 {
        (y - self.mean) / self.std
    }

    /// Inverts the standardisation.
    pub fn unscale(&self, y: f64) -> f64 {
        y * self.std + self.mean
    }
}

/// The layers implementing the configured [`Combination`] mode.
#[derive(Debug, Clone)]
enum CombinationLayers {
    /// Equation 2: no extra parameters.
    HadamardSum,
    /// Learned square matrix `R`.
    Bilinear { r: env2vec_nn::ParamId },
    /// Hidden + output layers over `[v_d, C]`.
    MlpHead { hidden: Dense, out: Dense },
}

/// The Env2Vec deep-learning model.
#[derive(Debug, Clone)]
pub struct Env2VecModel {
    /// Hyper-parameters the model was built with.
    pub config: Env2VecConfig,
    pub(crate) params: ParamSet,
    fnn: Dense,
    gru: GruCell,
    dense: Dense,
    embeddings: Vec<Embedding>,
    combination: CombinationLayers,
    attention: Option<AttentionPool>,
    vocab: EmVocabulary,
    pub(crate) cf_scaler: Scaler,
    pub(crate) y_scaler: TargetScaler,
    num_cf: usize,
}

impl Env2VecModel {
    /// Creates an untrained model.
    ///
    /// `vocab` must already contain every EM value of the training data
    /// (embedding-table sizes are fixed here); `train` provides the
    /// scaler statistics. Returns an error for invalid configuration or
    /// empty training data.
    pub fn new(config: Env2VecConfig, vocab: EmVocabulary, train: &Dataframe) -> Result<Self> {
        if train.is_empty() {
            return Err(Error::Empty {
                routine: "Env2VecModel::new",
            });
        }
        let cf_scaler = Scaler::fit(&train.cf)?;
        let y_scaler = TargetScaler::fit(&train.target)?;
        Self::with_scalers(config, vocab, train.cf.cols(), cf_scaler, y_scaler)
    }

    /// Creates an untrained model from explicit scaler statistics (used by
    /// deserialisation, which must rebuild the exact layer structure).
    ///
    /// Returns an error for an invalid configuration.
    pub(crate) fn with_scalers(
        config: Env2VecConfig,
        vocab: EmVocabulary,
        num_cf: usize,
        cf_scaler: Scaler,
        y_scaler: TargetScaler,
    ) -> Result<Self> {
        config
            .validate()
            .map_err(|what| Error::InvalidArgument { what })?;
        let k = vocab.num_features();
        let c_dim = k * config.embedding_dim;
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let fnn = Dense::new(
            &mut params,
            &mut rng,
            "fnn",
            num_cf,
            config.fnn_hidden,
            Activation::Sigmoid,
        )?;
        let gru = GruCell::new(
            &mut params,
            &mut rng,
            "gru",
            1,
            config.gru_hidden,
            Activation::Relu,
        )?;
        let dense = Dense::new(
            &mut params,
            &mut rng,
            "dense",
            config.gru_hidden + config.fnn_hidden,
            c_dim,
            Activation::Linear,
        )?;
        let embeddings = (0..k)
            .map(|f| {
                Embedding::new(
                    &mut params,
                    &mut rng,
                    &format!("em.{}", vocab.feature_names()[f]),
                    vocab.feature(f).len(),
                    config.embedding_dim,
                )
            })
            .collect::<Result<Vec<_>>>()?;
        let attention = if config.attention {
            Some(AttentionPool::new(
                &mut params,
                &mut rng,
                "attn",
                config.gru_hidden,
            )?)
        } else {
            None
        };
        let combination = match config.combination {
            crate::config::Combination::HadamardSum => CombinationLayers::HadamardSum,
            crate::config::Combination::Bilinear => CombinationLayers::Bilinear {
                r: params.add("comb.r", model_init_bilinear(&mut rng, c_dim))?,
            },
            crate::config::Combination::MlpHead => CombinationLayers::MlpHead {
                hidden: Dense::new(
                    &mut params,
                    &mut rng,
                    "comb.hidden",
                    2 * c_dim,
                    c_dim,
                    Activation::Sigmoid,
                )?,
                out: Dense::new(
                    &mut params,
                    &mut rng,
                    "comb.out",
                    c_dim,
                    1,
                    Activation::Linear,
                )?,
            },
        };
        Ok(Env2VecModel {
            config,
            params,
            fnn,
            gru,
            dense,
            embeddings,
            combination,
            attention,
            vocab,
            cf_scaler,
            y_scaler,
            num_cf,
        })
    }

    /// The EM vocabulary the model was trained with.
    pub fn vocab(&self) -> &EmVocabulary {
        &self.vocab
    }

    /// Number of contextual features expected per row.
    pub fn num_cf(&self) -> usize {
        self.num_cf
    }

    /// Trainable parameters (for inspection and persistence).
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Replaces the parameter values (used by training to restore the
    /// best epoch).
    pub(crate) fn set_params(&mut self, params: ParamSet) {
        self.params = params;
    }

    /// Builds the forward graph for a batch, returning the *scaled*
    /// prediction node.
    ///
    /// With `dropout_rng` set, inverted dropout is applied to the FNN
    /// hidden output (training mode).
    pub(crate) fn forward(
        &self,
        graph: &mut Graph,
        bound: &Bound,
        batch: &Dataframe,
        mut dropout_rng: Option<&mut StdRng>,
    ) -> Result<NodeId> {
        let b = batch.len();
        if b == 0 {
            return Err(Error::Empty { routine: "forward" });
        }
        // FNN branch.
        let cf_scaled = self.cf_scaler.transform(&batch.cf)?;
        let cf = graph.leaf(cf_scaled);
        let mut v_fs = self.fnn.forward(graph, bound, cf)?;
        if let Some(rng) = dropout_rng.as_deref_mut() {
            if self.config.dropout > 0.0 {
                let mask = dropout_mask(rng, b, self.config.fnn_hidden, self.config.dropout)?;
                v_fs = graph.dropout(v_fs, mask)?;
            }
        }
        // GRU branch over the scaled history, oldest first.
        let steps: Vec<NodeId> = (0..batch.history.cols())
            .map(|t| {
                let col: Vec<f64> = (0..b)
                    .map(|i| self.y_scaler.scale(batch.history.get(i, t)))
                    .collect();
                graph.leaf(Matrix::col_vector(&col))
            })
            .collect();
        let v_ts = match &self.attention {
            None => self.gru.run_sequence(graph, bound, &steps, b)?,
            Some(pool) => {
                let states = self.gru.run_sequence_all(graph, bound, &steps, b)?;
                pool.forward(graph, bound, &states)?
            }
        };

        // v_s = [v_ts, v_fs] → dense → v_d.
        let v_s = graph.concat_cols(&[v_ts, v_fs])?;
        let v_d = self.dense.forward(graph, bound, v_s)?;

        // C = [ec¹, …, ecᵏ]. During training, a small fraction of EM
        // values is replaced with <unk> so the unknown embedding learns a
        // usable average-environment fallback (used at inference for EM
        // values outside the vocabulary).
        let mut parts: Vec<NodeId> = Vec::with_capacity(self.embeddings.len());
        for (f, emb) in self.embeddings.iter().enumerate() {
            let mut idx: Vec<usize> = batch.em.iter().map(|row| row[f]).collect();
            if let Some(rng) = dropout_rng.as_deref_mut() {
                if self.config.unk_rate > 0.0 {
                    use rand::Rng;
                    for i in &mut idx {
                        if rng.gen::<f64>() < self.config.unk_rate {
                            *i = crate::vocab::FeatureVocab::UNK;
                        }
                    }
                }
            }
            parts.push(emb.lookup(graph, bound, &idx)?);
        }
        let c = graph.concat_cols(&parts)?;

        match &self.combination {
            // ŷ = Σ (v_d ⊙ C), Equation 2.
            CombinationLayers::HadamardSum => {
                let prod = graph.mul(v_d, c)?;
                Ok(graph.row_sums(prod))
            }
            // ŷ = v_d · R · C, batched as Σ ((v_d R) ⊙ C) per row.
            CombinationLayers::Bilinear { r } => {
                let vr = graph.matmul(v_d, bound.node(*r))?;
                let prod = graph.mul(vr, c)?;
                Ok(graph.row_sums(prod))
            }
            // An MLP over the concatenated [v_d, C].
            CombinationLayers::MlpHead { hidden, out } => {
                let joined = graph.concat_cols(&[v_d, c])?;
                let h = hidden.forward(graph, bound, joined)?;
                out.forward(graph, bound, h)
            }
        }
    }

    /// Predicts RU values for every row of a dataframe.
    ///
    /// Returns an error on shape mismatch.
    pub fn predict(&self, batch: &Dataframe) -> Result<Vec<f64>> {
        let mut graph = Graph::new();
        let bound = self.params.bind(&mut graph);
        let pred = self.forward(&mut graph, &bound, batch, None)?;
        Ok(graph
            .value(pred)
            .col_iter(0)
            .map(|v| self.y_scaler.unscale(v))
            .collect())
    }

    /// The concatenated environment embedding `C` for an EM value tuple,
    /// read from the current parameters (used for the Figure 6
    /// visualisation and the unseen-environment analysis).
    ///
    /// Unknown values contribute the `<unk>` embedding. Returns an error
    /// when the tuple width is wrong.
    pub fn environment_embedding(&self, em_values: &[&str]) -> Result<Vec<f64>> {
        if em_values.len() != self.vocab.num_features() {
            return Err(Error::ShapeMismatch {
                op: "environment_embedding",
                lhs: (em_values.len(), 1),
                rhs: (self.vocab.num_features(), 1),
            });
        }
        let encoded = self.vocab.encode(em_values);
        let mut out = Vec::with_capacity(self.vocab.num_features() * self.config.embedding_dim);
        for (f, emb) in self.embeddings.iter().enumerate() {
            out.extend_from_slice(emb.vector(&self.params, encoded[f])?);
        }
        Ok(out)
    }
}

/// RFNN: the Env2Vec front end without environment embeddings.
#[derive(Debug, Clone)]
pub struct RfnnModel {
    /// Hyper-parameters the model was built with.
    pub config: Env2VecConfig,
    pub(crate) params: ParamSet,
    fnn: Dense,
    gru: GruCell,
    dense: Dense,
    head: Dense,
    pub(crate) cf_scaler: Scaler,
    pub(crate) y_scaler: TargetScaler,
    num_cf: usize,
}

impl RfnnModel {
    /// Creates an untrained RFNN model; scaler statistics come from
    /// `train`.
    ///
    /// Returns an error for invalid configuration or empty training data.
    pub fn new(config: Env2VecConfig, train: &Dataframe) -> Result<Self> {
        config
            .validate()
            .map_err(|what| Error::InvalidArgument { what })?;
        if train.is_empty() {
            return Err(Error::Empty {
                routine: "RfnnModel::new",
            });
        }
        let num_cf = train.cf.cols();
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let fnn = Dense::new(
            &mut params,
            &mut rng,
            "fnn",
            num_cf,
            config.fnn_hidden,
            Activation::Sigmoid,
        )?;
        let gru = GruCell::new(
            &mut params,
            &mut rng,
            "gru",
            1,
            config.gru_hidden,
            Activation::Relu,
        )?;
        // v_d keeps the same width Env2Vec would use so capacities match.
        let v_d_dim = 4 * config.embedding_dim;
        let dense = Dense::new(
            &mut params,
            &mut rng,
            "dense",
            config.gru_hidden + config.fnn_hidden,
            v_d_dim,
            Activation::Sigmoid,
        )?;
        let head = Dense::new(
            &mut params,
            &mut rng,
            "head",
            v_d_dim,
            1,
            Activation::Linear,
        )?;
        let cf_scaler = Scaler::fit(&train.cf)?;
        let y_scaler = TargetScaler::fit(&train.target)?;
        Ok(RfnnModel {
            config,
            params,
            fnn,
            gru,
            dense,
            head,
            cf_scaler,
            y_scaler,
            num_cf,
        })
    }

    /// Number of contextual features expected per row.
    pub fn num_cf(&self) -> usize {
        self.num_cf
    }

    /// Trainable parameters.
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    pub(crate) fn set_params(&mut self, params: ParamSet) {
        self.params = params;
    }

    /// Builds the forward graph, returning the scaled prediction node.
    pub(crate) fn forward(
        &self,
        graph: &mut Graph,
        bound: &Bound,
        batch: &Dataframe,
        dropout_rng: Option<&mut StdRng>,
    ) -> Result<NodeId> {
        let b = batch.len();
        if b == 0 {
            return Err(Error::Empty { routine: "forward" });
        }
        let cf_scaled = self.cf_scaler.transform(&batch.cf)?;
        let cf = graph.leaf(cf_scaled);
        let mut v_fs = self.fnn.forward(graph, bound, cf)?;
        if let Some(rng) = dropout_rng {
            if self.config.dropout > 0.0 {
                let mask = dropout_mask(rng, b, self.config.fnn_hidden, self.config.dropout)?;
                v_fs = graph.dropout(v_fs, mask)?;
            }
        }
        let steps: Vec<NodeId> = (0..batch.history.cols())
            .map(|t| {
                let col: Vec<f64> = (0..b)
                    .map(|i| self.y_scaler.scale(batch.history.get(i, t)))
                    .collect();
                graph.leaf(Matrix::col_vector(&col))
            })
            .collect();
        let v_ts = self.gru.run_sequence(graph, bound, &steps, b)?;
        let v_s = graph.concat_cols(&[v_ts, v_fs])?;
        let v_d = self.dense.forward(graph, bound, v_s)?;
        self.head.forward(graph, bound, v_d)
    }

    /// Predicts RU values for every row of a dataframe.
    ///
    /// Returns an error on shape mismatch.
    pub fn predict(&self, batch: &Dataframe) -> Result<Vec<f64>> {
        let mut graph = Graph::new();
        let bound = self.params.bind(&mut graph);
        let pred = self.forward(&mut graph, &bound, batch, None)?;
        Ok(graph
            .value(pred)
            .col_iter(0)
            .map(|v| self.y_scaler.unscale(v))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_frame(n: usize, em: &[&str], vocab: &mut EmVocabulary) -> Dataframe {
        let cf = Matrix::from_fn(n, 3, |i, j| (i * (j + 1)) as f64 * 0.1);
        let ru: Vec<f64> = (0..n)
            .map(|i| 40.0 + (i as f64 * 0.7).sin() * 10.0)
            .collect();
        Dataframe::from_series(&cf, &ru, em, 2, vocab).unwrap()
    }

    #[test]
    fn untrained_model_predicts_finite_values() {
        let mut vocab = EmVocabulary::telecom();
        let df = toy_frame(30, &["tb", "s", "tc", "b"], &mut vocab);
        let model = Env2VecModel::new(Env2VecConfig::fast(), vocab, &df).unwrap();
        let pred = model.predict(&df).unwrap();
        assert_eq!(pred.len(), df.len());
        assert!(pred.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn prediction_depends_on_environment() {
        let mut vocab = EmVocabulary::telecom();
        let a = toy_frame(30, &["tb1", "s", "tc", "b"], &mut vocab);
        let b = toy_frame(30, &["tb2", "s", "tc", "b"], &mut vocab);
        let train = Dataframe::concat(&[a.clone(), b.clone()]).unwrap();
        let model = Env2VecModel::new(Env2VecConfig::fast(), vocab, &train).unwrap();
        // Identical CFs/history but different EM tuple → different output.
        let pa = model.predict(&a).unwrap();
        let pb = model.predict(&b).unwrap();
        assert_ne!(pa, pb);
    }

    #[test]
    fn environment_embedding_dimension_and_unk() {
        let mut vocab = EmVocabulary::telecom();
        let df = toy_frame(20, &["tb", "s", "tc", "b"], &mut vocab);
        let cfg = Env2VecConfig::fast();
        let model = Env2VecModel::new(cfg, vocab, &df).unwrap();
        let e = model
            .environment_embedding(&["tb", "s", "tc", "b"])
            .unwrap();
        assert_eq!(e.len(), 4 * cfg.embedding_dim);
        // Unknown testbed reuses the <unk> row but keeps the other three
        // learned components (the Figure 5 mix-and-match).
        let mixed = model
            .environment_embedding(&["NEW", "s", "tc", "b"])
            .unwrap();
        assert_eq!(
            e[cfg.embedding_dim..],
            mixed[cfg.embedding_dim..],
            "shared features must reuse their embeddings"
        );
        assert_ne!(e[..cfg.embedding_dim], mixed[..cfg.embedding_dim]);
        assert!(model.environment_embedding(&["just-one"]).is_err());
    }

    #[test]
    fn rfnn_predicts_and_ignores_environment() {
        let mut vocab = EmVocabulary::telecom();
        let df = toy_frame(30, &["tb", "s", "tc", "b"], &mut vocab);
        let model = RfnnModel::new(Env2VecConfig::fast(), &df).unwrap();
        let pred = model.predict(&df).unwrap();
        assert_eq!(pred.len(), df.len());
        assert!(pred.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn rejects_empty_training_data() {
        let vocab = EmVocabulary::telecom();
        let empty = Dataframe {
            cf: Matrix::zeros(0, 3),
            history: Matrix::zeros(0, 2),
            em: vec![],
            target: vec![],
        };
        assert!(Env2VecModel::new(Env2VecConfig::fast(), vocab, &empty).is_err());
        assert!(RfnnModel::new(Env2VecConfig::fast(), &empty).is_err());
    }

    #[test]
    fn scalers_standardise_and_invert() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0]]).unwrap();
        let s = Scaler::fit(&m).unwrap();
        let t = s.transform(&m).unwrap();
        assert!((t.get(0, 0) + 1.0).abs() < 1e-12);
        assert!((t.get(1, 0) - 1.0).abs() < 1e-12);
        let ts = TargetScaler::fit(&[10.0, 20.0, 30.0]).unwrap();
        assert!((ts.unscale(ts.scale(17.3)) - 17.3).abs() < 1e-12);
        let degenerate = TargetScaler::fit(&[5.0, 5.0]).unwrap();
        assert_eq!(degenerate.scale(5.0), 0.0);
    }
}
