//! Whole-model persistence.
//!
//! §6 of the paper: "our Env2Vec model requires less than 10MB storage
//! space, for a file containing the environment embeddings and the DL
//! model". The saved document carries the configuration, the EM
//! vocabularies, the scaler statistics, and every weight matrix (the
//! embeddings live inside the parameter set). Loading rebuilds the layer
//! structure from the configuration and then restores the weights by
//! parameter name, verifying shapes.

use env2vec_linalg::{Error, Result};
use serde::{Deserialize, Serialize};

use crate::config::Env2VecConfig;
use crate::model::{Env2VecModel, Scaler, TargetScaler};
use crate::vocab::EmVocabulary;

/// The on-disk model document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavedModel {
    /// Format version for forward compatibility.
    pub format_version: u32,
    /// Model hyper-parameters.
    pub config: Env2VecConfig,
    /// EM vocabularies.
    pub vocab: EmVocabulary,
    /// Contextual-feature scaler.
    pub cf_scaler: Scaler,
    /// Target scaler.
    pub y_scaler: TargetScaler,
    /// Number of contextual features.
    pub num_cf: usize,
    /// All weights, including the embedding tables.
    pub params: env2vec_nn::ParamSet,
}

/// Current save-format version.
pub const FORMAT_VERSION: u32 = 1;

/// Serialises a trained model to JSON.
pub fn save_model(model: &Env2VecModel) -> String {
    let doc = SavedModel {
        format_version: FORMAT_VERSION,
        config: model.config,
        vocab: model.vocab().clone(),
        cf_scaler: model.cf_scaler.clone(),
        y_scaler: model.y_scaler,
        num_cf: model.num_cf(),
        params: model.params().clone(),
    };
    // envlint: allow(no-panic) — the vendored serializer has no error
    // paths for these plain data structures; a panic here means the
    // vendor stub itself is broken.
    serde_json::to_string(&doc).expect("model serialises infallibly")
}

/// Restores a model saved by [`save_model`].
///
/// Returns an error for malformed JSON, an unknown format version, or
/// weight shapes that do not match the rebuilt structure.
pub fn load_model(json: &str) -> Result<Env2VecModel> {
    let doc: SavedModel = serde_json::from_str(json).map_err(|_| Error::InvalidArgument {
        what: "malformed model JSON",
    })?;
    if doc.format_version != FORMAT_VERSION {
        return Err(Error::InvalidArgument {
            what: "unsupported model format version",
        });
    }
    let mut model = Env2VecModel::with_scalers(
        doc.config,
        doc.vocab,
        doc.num_cf,
        doc.cf_scaler,
        doc.y_scaler,
    )?;
    // Restore weights by name, enforcing shape agreement.
    let fresh = model.params().clone();
    let mut restored = env2vec_nn::ParamSet::new();
    for (_, name, value) in fresh.iter() {
        let saved_id = doc.params.find(name).ok_or(Error::InvalidArgument {
            what: "saved model is missing a parameter",
        })?;
        let saved = doc.params.value(saved_id);
        if saved.shape() != value.shape() {
            return Err(Error::ShapeMismatch {
                op: "load_model",
                lhs: value.shape(),
                rhs: saved.shape(),
            });
        }
        restored.add(name, saved.clone())?;
    }
    model.set_params(restored);
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataframe::Dataframe;
    use env2vec_linalg::Matrix;

    fn trained_ish_model() -> (Env2VecModel, Dataframe) {
        let mut vocab = EmVocabulary::telecom();
        let cf = Matrix::from_fn(40, 3, |i, j| ((i + j) % 9) as f64);
        let ru: Vec<f64> = (0..40).map(|i| 30.0 + (i % 7) as f64).collect();
        let df = Dataframe::from_series(&cf, &ru, &["tb", "s", "tc", "b"], 2, &mut vocab).unwrap();
        let model = Env2VecModel::new(Env2VecConfig::fast(), vocab, &df).unwrap();
        (model, df)
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let (model, df) = trained_ish_model();
        let json = save_model(&model);
        let restored = load_model(&json).unwrap();
        assert_eq!(model.predict(&df).unwrap(), restored.predict(&df).unwrap());
        assert_eq!(
            model
                .environment_embedding(&["tb", "s", "tc", "b"])
                .unwrap(),
            restored
                .environment_embedding(&["tb", "s", "tc", "b"])
                .unwrap()
        );
    }

    #[test]
    fn saved_size_is_well_under_paper_limit() {
        // §6: "less than 10MB storage space".
        let (model, _) = trained_ish_model();
        let json = save_model(&model);
        assert!(
            json.len() < 10 * 1024 * 1024,
            "model file is {} bytes",
            json.len()
        );
    }

    #[test]
    fn rejects_malformed_and_wrong_version() {
        assert!(load_model("{not json").is_err());
        let (model, _) = trained_ish_model();
        let mut doc: SavedModel = serde_json::from_str(&save_model(&model)).unwrap();
        doc.format_version = 99;
        let json = serde_json::to_string(&doc).unwrap();
        assert!(load_model(&json).is_err());
    }

    #[test]
    fn round_trip_preserves_every_combination_mode() {
        use crate::config::Combination;
        for combination in [
            Combination::HadamardSum,
            Combination::Bilinear,
            Combination::MlpHead,
        ] {
            let mut vocab = EmVocabulary::telecom();
            let cf = Matrix::from_fn(30, 3, |i, j| ((i + j) % 5) as f64);
            let ru: Vec<f64> = (0..30).map(|i| 20.0 + (i % 4) as f64).collect();
            let df =
                Dataframe::from_series(&cf, &ru, &["t", "s", "c", "b"], 2, &mut vocab).unwrap();
            let cfg = Env2VecConfig {
                combination,
                ..Env2VecConfig::fast()
            };
            let model = Env2VecModel::new(cfg, vocab, &df).unwrap();
            let restored = load_model(&save_model(&model)).unwrap();
            assert_eq!(
                model.predict(&df).unwrap(),
                restored.predict(&df).unwrap(),
                "{combination:?}"
            );
        }
    }

    #[test]
    fn rejects_missing_parameter() {
        let (model, _) = trained_ish_model();
        let mut doc: SavedModel = serde_json::from_str(&save_model(&model)).unwrap();
        doc.params = env2vec_nn::ParamSet::new();
        let json = serde_json::to_string(&doc).unwrap();
        assert!(load_model(&json).is_err());
    }
}
