//! Contextual anomaly detection (paper §3.2 "Anomaly detection").
//!
//! The detector fits a Gaussian `N(μ_error, σ_error)` to the prediction
//! errors of *previous, non-problematic* builds in a build chain, then
//! flags a timestep of the new build when its error deviates from `μ` by
//! more than `γ · σ`. Following §4.2.2, a flagged timestep must also
//! deviate in *absolute* terms — "the difference, in CPU utilization,
//! between the predicted and observed values not only exceeds γ standard
//! deviations, but also has absolute value exceeding 5%" — which is the
//! standard false-alarm filter.
//!
//! For unseen environments (§4.3) there is no historical error
//! distribution, so [`AnomalyDetector::detect_unseen`] applies γ to the
//! error distribution computed over the execution's own timesteps.
//!
//! Contiguous flagged timesteps merge into one [`AnomalyInterval`] — the
//! unit the paper counts as "an alarm".

use env2vec_linalg::stats::Gaussian;
use env2vec_linalg::{Error, Result};

/// One alarm: a contiguous anomalous interval.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyInterval {
    /// First anomalous timestep (index into the scored series).
    pub start: usize,
    /// One past the last anomalous timestep.
    pub end: usize,
    /// Timestep of the largest absolute deviation.
    pub peak: usize,
    /// Model prediction at the peak.
    pub predicted_at_peak: f64,
    /// Observation at the peak.
    pub observed_at_peak: f64,
}

impl AnomalyInterval {
    /// Length of the interval in timesteps.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the interval is degenerate.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Whether this interval overlaps `[start, end)`.
    pub fn overlaps(&self, start: usize, end: usize) -> bool {
        self.start < end && start < self.end
    }
}

/// The γ·σ contextual anomaly detector.
///
/// # Examples
///
/// ```
/// use env2vec::anomaly::AnomalyDetector;
///
/// // Historical (predicted, observed) pairs from non-problematic builds.
/// let hist_pred = vec![50.0; 50];
/// let hist_obs: Vec<f64> = (0..50).map(|i| 50.0 + ((i % 5) as f64 - 2.0) * 0.4).collect();
/// let dist = AnomalyDetector::fit_error_distribution(&hist_pred, &hist_obs)?;
///
/// // The new build deviates by 20 CPU points for a while.
/// let pred = vec![50.0; 30];
/// let mut obs = vec![50.0; 30];
/// for v in &mut obs[10..15] { *v += 20.0; }
///
/// let alarms = AnomalyDetector::new(2.0).detect(&dist, &pred, &obs)?;
/// assert_eq!(alarms.len(), 1);
/// assert_eq!((alarms[0].start, alarms[0].end), (10, 15));
/// # Ok::<(), env2vec_linalg::Error>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AnomalyDetector {
    /// Threshold in standard deviations (the paper evaluates γ ∈ {1,2,3}).
    pub gamma: f64,
    /// Minimum absolute deviation (percentage points) for a flag; the
    /// paper uses 5.
    pub absolute_filter: f64,
}

impl AnomalyDetector {
    /// Creates a detector with the paper's 5-point absolute filter.
    pub fn new(gamma: f64) -> Self {
        AnomalyDetector {
            gamma,
            absolute_filter: 5.0,
        }
    }

    /// Fits the error distribution from historical `(predicted, observed)`
    /// series of non-problematic builds.
    ///
    /// Errors are signed `observed − predicted`. Returns an error for
    /// empty or mismatched inputs.
    pub fn fit_error_distribution(predicted: &[f64], observed: &[f64]) -> Result<Gaussian> {
        if predicted.len() != observed.len() {
            return Err(Error::ShapeMismatch {
                op: "fit_error_distribution",
                lhs: (predicted.len(), 1),
                rhs: (observed.len(), 1),
            });
        }
        let errors: Vec<f64> = observed.iter().zip(predicted).map(|(o, p)| o - p).collect();
        Gaussian::fit(&errors)
    }

    /// Scores the new build against a historical error distribution,
    /// returning merged anomalous intervals.
    ///
    /// Returns an error for mismatched lengths.
    pub fn detect(
        &self,
        error_dist: &Gaussian,
        predicted: &[f64],
        observed: &[f64],
    ) -> Result<Vec<AnomalyInterval>> {
        if predicted.len() != observed.len() {
            return Err(Error::ShapeMismatch {
                op: "detect",
                lhs: (predicted.len(), 1),
                rhs: (observed.len(), 1),
            });
        }
        let flagged: Vec<bool> = predicted
            .iter()
            .zip(observed)
            .map(|(p, o)| {
                let err = o - p;
                let deviation = (err - error_dist.mean).abs();
                // envlint: allow(float-cmp) — exact zero-guard: a degenerate
                // error distribution (std identically 0.0) switches to the
                // any-deviation rule instead of dividing by sigma.
                let sigma_ok = if error_dist.std_dev == 0.0 {
                    deviation > 0.0
                } else {
                    deviation > self.gamma * error_dist.std_dev
                };
                sigma_ok && (o - p).abs() > self.absolute_filter
            })
            .collect();
        Ok(merge_flags(&flagged, predicted, observed))
    }

    /// Unseen-environment detection (§4.3): the error distribution is
    /// computed over all timesteps of this execution itself, then γ is
    /// applied to it.
    ///
    /// Returns an error for empty or mismatched inputs.
    pub fn detect_unseen(
        &self,
        predicted: &[f64],
        observed: &[f64],
    ) -> Result<Vec<AnomalyInterval>> {
        let dist = Self::fit_error_distribution(predicted, observed)?;
        self.detect(&dist, predicted, observed)
    }
}

/// Merges consecutive flagged timesteps into intervals with peak info.
fn merge_flags(flagged: &[bool], predicted: &[f64], observed: &[f64]) -> Vec<AnomalyInterval> {
    let mut out = Vec::new();
    let mut t = 0;
    while t < flagged.len() {
        if !flagged[t] {
            t += 1;
            continue;
        }
        let start = t;
        let mut peak = t;
        let mut peak_dev = (observed[t] - predicted[t]).abs();
        while t < flagged.len() && flagged[t] {
            let dev = (observed[t] - predicted[t]).abs();
            if dev > peak_dev {
                peak_dev = dev;
                peak = t;
            }
            t += 1;
        }
        out.push(AnomalyInterval {
            start,
            end: t,
            peak,
            predicted_at_peak: predicted[peak],
            observed_at_peak: observed[peak],
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// History with small noise around zero error.
    fn quiet_history() -> (Vec<f64>, Vec<f64>) {
        let predicted: Vec<f64> = (0..100).map(|i| 50.0 + (i as f64 * 0.3).sin()).collect();
        let observed: Vec<f64> = predicted
            .iter()
            .enumerate()
            .map(|(i, p)| p + ((i * 7 % 5) as f64 - 2.0) * 0.3)
            .collect();
        (predicted, observed)
    }

    #[test]
    fn clean_build_raises_no_alarms() {
        let (pred, obs) = quiet_history();
        let dist = AnomalyDetector::fit_error_distribution(&pred, &obs).unwrap();
        let det = AnomalyDetector::new(2.0);
        let alarms = det.detect(&dist, &pred, &obs).unwrap();
        assert!(alarms.is_empty(), "{alarms:?}");
    }

    #[test]
    fn injected_spike_is_detected_with_correct_interval() {
        let (pred, obs) = quiet_history();
        let dist = AnomalyDetector::fit_error_distribution(&pred, &obs).unwrap();
        let mut faulty = obs.clone();
        for v in &mut faulty[40..46] {
            *v += 20.0;
        }
        let det = AnomalyDetector::new(2.0);
        let alarms = det.detect(&dist, &pred, &faulty).unwrap();
        assert_eq!(alarms.len(), 1);
        let a = &alarms[0];
        assert_eq!((a.start, a.end), (40, 46));
        assert!(a.peak >= 40 && a.peak < 46);
        assert!(a.observed_at_peak - a.predicted_at_peak > 15.0);
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn absolute_filter_suppresses_small_statistical_blips() {
        // Tiny σ makes a 2-point deviation many σs — but below the 5-point
        // absolute filter, so it must not alarm.
        let pred = vec![50.0; 50];
        let mut obs = vec![50.0; 50];
        obs[10] = 52.0;
        let dist = Gaussian {
            mean: 0.0,
            std_dev: 0.1,
        };
        let det = AnomalyDetector::new(3.0);
        let alarms = det.detect(&dist, &pred, &obs).unwrap();
        assert!(alarms.is_empty());
        // Without the filter it would alarm.
        let loose = AnomalyDetector {
            gamma: 3.0,
            absolute_filter: 1.0,
        };
        assert_eq!(loose.detect(&dist, &pred, &obs).unwrap().len(), 1);
    }

    #[test]
    fn higher_gamma_is_stricter() {
        let (pred, obs) = quiet_history();
        let dist = AnomalyDetector::fit_error_distribution(&pred, &obs).unwrap();
        let mut faulty = obs.clone();
        // Two faults of different size.
        for v in &mut faulty[20..24] {
            *v += 6.0;
        }
        for v in &mut faulty[60..64] {
            *v += 30.0;
        }
        let count = |gamma: f64| {
            AnomalyDetector::new(gamma)
                .detect(&dist, &pred, &faulty)
                .unwrap()
                .len()
        };
        // γ monotonicity: alarms never increase with γ.
        let c1 = count(1.0);
        let c5 = count(5.0);
        let c80 = count(80.0);
        assert!(c1 >= c5 && c5 >= c80, "{c1} {c5} {c80}");
        assert!(c1 >= 2);
        assert_eq!(c80, 0);
    }

    #[test]
    fn separate_faults_become_separate_alarms() {
        let (pred, obs) = quiet_history();
        let dist = AnomalyDetector::fit_error_distribution(&pred, &obs).unwrap();
        let mut faulty = obs.clone();
        for v in &mut faulty[10..13] {
            *v += 25.0;
        }
        for v in &mut faulty[50..55] {
            *v += 25.0;
        }
        let alarms = AnomalyDetector::new(2.0)
            .detect(&dist, &pred, &faulty)
            .unwrap();
        assert_eq!(alarms.len(), 2);
        assert!(alarms[0].end <= alarms[1].start);
    }

    #[test]
    fn unseen_detection_finds_spike_without_history() {
        let (pred, obs) = quiet_history();
        let mut faulty = obs;
        for v in &mut faulty[70..75] {
            *v += 25.0;
        }
        let det = AnomalyDetector::new(2.0);
        let alarms = det.detect_unseen(&pred, &faulty).unwrap();
        assert_eq!(alarms.len(), 1);
        assert!(alarms[0].overlaps(70, 75));
    }

    #[test]
    fn interval_overlap_predicate() {
        let a = AnomalyInterval {
            start: 10,
            end: 20,
            peak: 15,
            predicted_at_peak: 0.0,
            observed_at_peak: 0.0,
        };
        assert!(a.overlaps(19, 25));
        assert!(a.overlaps(0, 11));
        assert!(!a.overlaps(20, 30));
        assert!(!a.overlaps(0, 10));
    }

    #[test]
    fn rejects_mismatched_lengths() {
        let det = AnomalyDetector::new(1.0);
        let dist = Gaussian {
            mean: 0.0,
            std_dev: 1.0,
        };
        assert!(det.detect(&dist, &[1.0], &[1.0, 2.0]).is_err());
        assert!(AnomalyDetector::fit_error_distribution(&[1.0], &[]).is_err());
        assert!(det.detect_unseen(&[], &[]).is_err());
    }
}
