//! Env2Vec: environment-embedding deep learning for VNF test diagnosis.
//!
//! This crate is the Rust reproduction of the system described in
//! *Env2Vec: Accelerating VNF Testing with Deep Learning* (Piao, Nicholson
//! & Lugones, EuroSys 2020). Env2Vec predicts a VNF's resource usage from
//! three inputs — contextual features (workload + performance metrics), a
//! sliding window of recent resource usage, and environment-metadata
//! labels — and flags a *contextual anomaly* whenever the observed usage
//! of a new software build deviates from the prediction by more than
//! `γ · σ` of the historical error distribution.
//!
//! The architecture (paper §3.1–§3.2, Appendix A):
//!
//! ```text
//! CFs ──────────► FNN (1 hidden sigmoid layer) ──► v_fs ─┐
//! RU history ───► GRU (ReLU candidate)         ──► v_ts ─┴─► [v_ts, v_fs]
//!                                                             │ dense
//! EM labels ────► per-feature lookup tables ──► C = [ec¹..ecᵏ]▼
//!                                       ŷ = Σ ( v_d ⊙ C )     v_d
//! ```
//!
//! Modules:
//!
//! - [`config`]: hyper-parameters (embedding dim 10, MSE + Adam, dropout,
//!   early stopping — the paper's training recipe).
//! - [`vocab`]: per-EM-feature vocabularies with the `<unk>` row.
//! - [`dataframe`]: the Table 2 dataframe — CFs ∪ EM ∪ RU-history rows —
//!   built from raw executions.
//! - [`model`]: [`model::Env2VecModel`] plus the embedding-free
//!   [`model::RfnnModel`] used for the paper's `RFNN`/`RFNN_all`
//!   baselines.
//! - [`train`]: mini-batch Adam training with dropout and early stopping.
//! - [`anomaly`]: the Gaussian-error contextual anomaly detector with the
//!   γ·σ rule and the 5-percentage-point absolute filter of §4.2.2, plus
//!   the unseen-environment variant of §4.3.
//! - [`pipeline`]: the Figure 2 workflow glue — collect metrics into the
//!   TSDB, train, predict, and raise alarms into the alarm store.
//! - [`serialize`]: whole-model persistence ("less than 10MB storage
//!   space, for a file containing the environment embeddings and the DL
//!   model", §6).

#![warn(missing_docs)]

pub mod anomaly;
pub mod config;
pub mod dataframe;
pub mod model;
pub mod pipeline;
pub mod serialize;
pub mod train;
pub mod vocab;

pub use anomaly::{AnomalyDetector, AnomalyInterval};
pub use config::Env2VecConfig;
pub use dataframe::Dataframe;
pub use model::Env2VecModel;
pub use vocab::EmVocabulary;
