//! Env2Vec hyper-parameters.

use serde::{Deserialize, Serialize};

/// How the dense representation `v_d` combines with the concatenated
/// environment embedding `C` to produce the prediction.
///
/// §3.2 of the paper defaults to the sum of the element-wise product
/// (Equation 2) and notes two alternatives: "the prediction can be done
/// with an additional matrix R, i.e., `ŷ = v_d · R · C`; or ... using
/// additional neural network layers with the concatenated vector of `v_d`
/// and `C` as an input. Both approaches require more parameters to learn
/// but yield similar results." All three are implemented so the claim can
/// be checked (see the `ablation` experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Combination {
    /// `ŷ = Σ (v_d ⊙ C)` — the paper's Equation 2 (default).
    HadamardSum,
    /// `ŷ = v_d · R · C` with a learned square matrix `R`.
    Bilinear,
    /// A small MLP over `[v_d, C]`.
    MlpHead,
}

/// Hyper-parameters of the Env2Vec model and its training loop.
///
/// Defaults follow the paper where it is explicit — embedding dimension 10
/// (§3.1), MSE loss with the Adam update rule and dropout + early stopping
/// (Appendix A.1), a short RU-history window (the paper tunes `n` in 1..9
/// and lands on 1–2 for the KDN data) — and use modest layer sizes
/// elsewhere.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Env2VecConfig {
    /// Hidden width of the contextual-feature FNN (`v_fs` dimension).
    pub fnn_hidden: usize,
    /// GRU hidden width (`v_ts` dimension).
    pub gru_hidden: usize,
    /// Embedding dimension per EM feature (paper: 10).
    pub embedding_dim: usize,
    /// RU-history window length `n`.
    pub history_window: usize,
    /// Dropout rate on the FNN hidden layer during training.
    pub dropout: f64,
    /// Probability of replacing an EM value with `<unk>` during training,
    /// so the unknown embedding learns an "average environment" fallback
    /// and predictions stay sane for EM values never seen in training.
    pub unk_rate: f64,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Maximum training epochs.
    pub max_epochs: usize,
    /// Early-stopping patience (epochs without validation improvement).
    pub patience: usize,
    /// RNG seed for initialisation, dropout and batching.
    pub seed: u64,
    /// How `v_d` combines with the environment embedding `C`.
    pub combination: Combination,
    /// Pool the GRU states with learned attention instead of keeping only
    /// the last hidden state — the extension the paper's §6 proposes
    /// ("incorporating the attention mechanism ... to learn relationships
    /// between metric values from previous timesteps").
    pub attention: bool,
}

impl Default for Env2VecConfig {
    fn default() -> Self {
        Env2VecConfig {
            fnn_hidden: 64,
            gru_hidden: 16,
            embedding_dim: 10,
            history_window: 2,
            dropout: 0.1,
            unk_rate: 0.03,
            learning_rate: 1e-3,
            batch_size: 64,
            max_epochs: 60,
            patience: 8,
            seed: 42,
            combination: Combination::HadamardSum,
            attention: false,
        }
    }
}

impl Env2VecConfig {
    /// A faster configuration for tests: smaller layers, fewer epochs.
    pub fn fast() -> Self {
        Env2VecConfig {
            fnn_hidden: 24,
            gru_hidden: 8,
            embedding_dim: 6,
            history_window: 2,
            dropout: 0.0,
            unk_rate: 0.03,
            learning_rate: 3e-3,
            batch_size: 64,
            max_epochs: 25,
            patience: 5,
            seed: 42,
            combination: Combination::HadamardSum,
            attention: false,
        }
    }

    /// Validates internal consistency.
    ///
    /// Returns a description of the first violated constraint, if any.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.fnn_hidden == 0 || self.gru_hidden == 0 || self.embedding_dim == 0 {
            return Err("layer widths must be positive");
        }
        if self.history_window == 0 {
            return Err("history window must be at least 1");
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err("dropout must be in [0, 1)");
        }
        if !(0.0..1.0).contains(&self.unk_rate) {
            return Err("unk_rate must be in [0, 1)");
        }
        if self.learning_rate <= 0.0 {
            return Err("learning rate must be positive");
        }
        if self.max_epochs == 0 {
            return Err("training needs at least one epoch");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_match_paper_constants() {
        let c = Env2VecConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.embedding_dim, 10, "paper §3.1: dimension of 10");
        assert!(c.history_window >= 1 && c.history_window <= 9);
    }

    #[test]
    fn fast_config_is_valid() {
        assert!(Env2VecConfig::fast().validate().is_ok());
    }

    #[test]
    fn validation_catches_each_violation() {
        let base = Env2VecConfig::default();
        let cases = [
            Env2VecConfig {
                fnn_hidden: 0,
                ..base
            },
            Env2VecConfig {
                history_window: 0,
                ..base
            },
            Env2VecConfig {
                dropout: 1.0,
                ..base
            },
            Env2VecConfig {
                dropout: -0.1,
                ..base
            },
            Env2VecConfig {
                learning_rate: 0.0,
                ..base
            },
            Env2VecConfig {
                unk_rate: 1.0,
                ..base
            },
            Env2VecConfig {
                max_epochs: 0,
                ..base
            },
        ];
        for c in cases {
            assert!(c.validate().is_err(), "{c:?} should be invalid");
        }
    }

    #[test]
    fn serde_round_trip() {
        let c = Env2VecConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: Env2VecConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
