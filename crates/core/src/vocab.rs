//! Environment-metadata vocabularies.
//!
//! Each EM feature (testbed, SUT, test case, build, ...) has its own
//! vocabulary mapping string values to embedding-table rows. Index `0` is
//! reserved for the `<unk>` embedding, "an additional unknown
//! vector/embedding to deal with an unknown environment that has not
//! appeared in the training data before" (§3.1).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Vocabulary for one EM feature.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FeatureVocab {
    /// Value → encoded index (1-based; 0 is `<unk>`). A `BTreeMap` so
    /// serialisation and any future iteration over the map are ordered —
    /// vocab ids must be bit-identical across runs (envlint `hash-iter`).
    map: BTreeMap<String, usize>,
    /// Values in insertion order (`values[i]` has index `i + 1`).
    values: Vec<String>,
}

impl FeatureVocab {
    /// The index of the unknown value.
    pub const UNK: usize = 0;

    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes a value, adding it to the vocabulary if new.
    pub fn encode_or_add(&mut self, value: &str) -> usize {
        if let Some(&i) = self.map.get(value) {
            return i;
        }
        self.values.push(value.to_string());
        let idx = self.values.len();
        self.map.insert(value.to_string(), idx);
        idx
    }

    /// Encodes a value, returning `UNK` for values never seen.
    pub fn encode(&self, value: &str) -> usize {
        self.map.get(value).copied().unwrap_or(Self::UNK)
    }

    /// Decodes an index back to its value (`None` for `UNK` or out of
    /// range).
    pub fn decode(&self, index: usize) -> Option<&str> {
        if index == 0 {
            return None;
        }
        self.values.get(index - 1).map(String::as_str)
    }

    /// Number of known values (excluding `<unk>`).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the vocabulary has no known values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over known values in index order.
    pub fn values(&self) -> impl Iterator<Item = &str> {
        self.values.iter().map(String::as_str)
    }
}

/// The vocabularies for all EM features of a model, in feature order.
///
/// # Examples
///
/// ```
/// use env2vec::vocab::EmVocabulary;
///
/// let mut vocab = EmVocabulary::telecom();
/// let idx = vocab.encode_or_add(&["Testbed_13", "SUT_FW", "Testcase_Endurance", "S08"]);
/// assert_eq!(idx, vec![1, 1, 1, 1]);
///
/// // Inference path: unknown values map to the <unk> index 0 while known
/// // components keep their learned rows (the paper's Figure 5).
/// let mixed = vocab.encode(&["Testbed_99", "SUT_FW", "Testcase_Endurance", "S08"]);
/// assert_eq!(mixed, vec![0, 1, 1, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmVocabulary {
    feature_names: Vec<String>,
    vocabs: Vec<FeatureVocab>,
}

impl EmVocabulary {
    /// Creates vocabularies for the given EM feature names.
    pub fn new(feature_names: &[&str]) -> Self {
        EmVocabulary {
            feature_names: feature_names.iter().map(|s| s.to_string()).collect(),
            vocabs: feature_names.iter().map(|_| FeatureVocab::new()).collect(),
        }
    }

    /// The paper's representative four-feature tuple
    /// `<Testbed, SUT, Testcase, Build>`.
    pub fn telecom() -> Self {
        EmVocabulary::new(&["testbed", "sut", "testcase", "build"])
    }

    /// Number of EM features.
    pub fn num_features(&self) -> usize {
        self.vocabs.len()
    }

    /// Feature names in order.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Vocabulary of one feature.
    ///
    /// # Panics
    ///
    /// Panics when `feature` is out of range.
    pub fn feature(&self, feature: usize) -> &FeatureVocab {
        &self.vocabs[feature]
    }

    /// Encodes a full EM value tuple, growing vocabularies (training
    /// path).
    ///
    /// # Panics
    ///
    /// Panics when `values.len()` differs from the feature count.
    pub fn encode_or_add(&mut self, values: &[&str]) -> Vec<usize> {
        assert_eq!(values.len(), self.vocabs.len(), "EM tuple width mismatch");
        values
            .iter()
            .zip(&mut self.vocabs)
            .map(|(v, vocab)| vocab.encode_or_add(v))
            .collect()
    }

    /// Encodes a full EM value tuple without growing (inference path);
    /// unknown values map to `<unk>`.
    ///
    /// # Panics
    ///
    /// Panics when `values.len()` differs from the feature count.
    pub fn encode(&self, values: &[&str]) -> Vec<usize> {
        assert_eq!(values.len(), self.vocabs.len(), "EM tuple width mismatch");
        values
            .iter()
            .zip(&self.vocabs)
            .map(|(v, vocab)| vocab.encode(v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_or_add_assigns_stable_indices() {
        let mut v = FeatureVocab::new();
        assert_eq!(v.encode_or_add("Testbed_01"), 1);
        assert_eq!(v.encode_or_add("Testbed_02"), 2);
        assert_eq!(v.encode_or_add("Testbed_01"), 1);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn encode_maps_unknown_to_unk() {
        let mut v = FeatureVocab::new();
        v.encode_or_add("known");
        assert_eq!(v.encode("known"), 1);
        assert_eq!(v.encode("never seen"), FeatureVocab::UNK);
    }

    #[test]
    fn decode_round_trip() {
        let mut v = FeatureVocab::new();
        v.encode_or_add("a");
        v.encode_or_add("b");
        assert_eq!(v.decode(1), Some("a"));
        assert_eq!(v.decode(2), Some("b"));
        assert_eq!(v.decode(0), None);
        assert_eq!(v.decode(3), None);
        let vals: Vec<&str> = v.values().collect();
        assert_eq!(vals, vec!["a", "b"]);
    }

    #[test]
    fn em_vocabulary_tuple_encoding() {
        let mut em = EmVocabulary::telecom();
        assert_eq!(em.num_features(), 4);
        let idx = em.encode_or_add(&["Testbed_13", "SUT_F", "Testcase_Endurance", "S01"]);
        assert_eq!(idx, vec![1, 1, 1, 1]);
        let idx2 = em.encode_or_add(&["Testbed_13", "SUT_A", "Testcase_Endurance", "S02"]);
        assert_eq!(idx2, vec![1, 2, 1, 2]);
        // Inference path: unknown testbed maps to <unk>, known parts keep
        // their indices — the mix-and-match of Figure 5.
        let mixed = em.encode(&["Testbed_99", "SUT_A", "Testcase_Endurance", "S01"]);
        assert_eq!(mixed, vec![0, 2, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_tuple_width_panics() {
        let em = EmVocabulary::telecom();
        let _ = em.encode(&["just-one"]);
    }

    #[test]
    fn serde_round_trip() {
        let mut em = EmVocabulary::telecom();
        em.encode_or_add(&["tb", "s", "tc", "b"]);
        let json = serde_json::to_string(&em).unwrap();
        let back: EmVocabulary = serde_json::from_str(&json).unwrap();
        assert_eq!(em, back);
        assert_eq!(back.encode(&["tb", "s", "tc", "b"]), vec![1, 1, 1, 1]);
    }
}
