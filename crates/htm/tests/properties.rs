//! Property-based tests for the HTM pipeline.

use env2vec_htm::encoder::ScalarEncoder;
use env2vec_htm::sdr::Sdr;
use env2vec_htm::spatial_pooler::{SpatialPooler, SpatialPoolerConfig};
use env2vec_htm::{HtmAnomalyDetector, HtmConfig};
use proptest::prelude::*;

proptest! {
    /// Every encoding has exactly `w` active bits inside the SDR width.
    #[test]
    fn encoder_cardinality_invariant(value in -50.0f64..150.0) {
        let enc = ScalarEncoder::new(0.0, 100.0, 128, 16);
        let sdr = enc.encode(value);
        prop_assert_eq!(sdr.cardinality(), 16);
        prop_assert!(sdr.active().iter().all(|&b| b < 128));
    }

    /// Encoding overlap never increases as values move apart.
    #[test]
    fn encoder_overlap_monotone(base in 10.0f64..60.0, d1 in 0.0f64..20.0, d2 in 0.0f64..20.0) {
        let enc = ScalarEncoder::new(0.0, 100.0, 256, 24);
        let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let b = enc.encode(base);
        prop_assert!(b.overlap(&enc.encode(base + near)) >= b.overlap(&enc.encode(base + far)));
    }

    /// SDR overlap is symmetric and bounded by min cardinality.
    #[test]
    fn sdr_overlap_symmetric_bounded(
        a in proptest::collection::vec(0usize..64, 0..20),
        b in proptest::collection::vec(0usize..64, 0..20),
    ) {
        let x = Sdr::new(64, a);
        let y = Sdr::new(64, b);
        prop_assert_eq!(x.overlap(&y), y.overlap(&x));
        prop_assert!(x.overlap(&y) <= x.cardinality().min(y.cardinality()));
    }

    /// The spatial pooler's output is deterministic for a fixed input and
    /// never exceeds its activity budget.
    #[test]
    fn pooler_output_budget(value in 0.0f64..100.0) {
        let enc = ScalarEncoder::new(0.0, 100.0, 128, 16);
        let mut sp = SpatialPooler::new(128, SpatialPoolerConfig::default());
        let a = sp.compute(&enc.encode(value), false);
        let b = sp.compute(&enc.encode(value), false);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.cardinality() <= 10);
    }

    /// Detector outputs stay in [0, 1] on arbitrary bounded streams.
    #[test]
    fn detector_scores_bounded(values in proptest::collection::vec(0.0f64..100.0, 1..80)) {
        let mut det = HtmAnomalyDetector::new(HtmConfig::for_range(0.0, 100.0));
        for v in values {
            let r = det.process(v);
            prop_assert!((0.0..=1.0).contains(&r.raw_score));
            prop_assert!((0.0..=1.0).contains(&r.likelihood));
        }
    }
}
