//! Sparse distributed representations.
//!
//! An [`Sdr`] is a fixed-width binary vector with few active bits, stored
//! as a sorted list of active indices. Overlap (shared active bits) is the
//! similarity measure every HTM stage is built on.

/// A sparse binary vector of fixed width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sdr {
    size: usize,
    /// Sorted, deduplicated active-bit indices.
    active: Vec<usize>,
}

impl Sdr {
    /// Creates an SDR of `size` bits from the given active indices.
    ///
    /// Indices are sorted and deduplicated; out-of-range indices are
    /// discarded.
    pub fn new(size: usize, mut active: Vec<usize>) -> Self {
        active.retain(|&i| i < size);
        active.sort_unstable();
        active.dedup();
        Sdr { size, active }
    }

    /// An SDR with no active bits.
    pub fn empty(size: usize) -> Self {
        Sdr {
            size,
            active: Vec::new(),
        }
    }

    /// Total width in bits.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Sorted active-bit indices.
    pub fn active(&self) -> &[usize] {
        &self.active
    }

    /// Number of active bits.
    pub fn cardinality(&self) -> usize {
        self.active.len()
    }

    /// Whether a bit is active.
    pub fn contains(&self, bit: usize) -> bool {
        self.active.binary_search(&bit).is_ok()
    }

    /// Number of active bits shared with another SDR.
    pub fn overlap(&self, other: &Sdr) -> usize {
        let mut count = 0;
        let (mut i, mut j) = (0, 0);
        while i < self.active.len() && j < other.active.len() {
            match self.active[i].cmp(&other.active[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Fraction of this SDR's active bits shared with `other`
    /// (`1.0` for identical patterns, `0.0` for disjoint or empty).
    pub fn overlap_fraction(&self, other: &Sdr) -> f64 {
        if self.active.is_empty() {
            return 0.0;
        }
        self.overlap(other) as f64 / self.active.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_dedups_and_clips() {
        let s = Sdr::new(10, vec![5, 2, 5, 11, 0]);
        assert_eq!(s.active(), &[0, 2, 5]);
        assert_eq!(s.cardinality(), 3);
        assert_eq!(s.size(), 10);
    }

    #[test]
    fn contains_and_overlap() {
        let a = Sdr::new(16, vec![1, 3, 5, 7]);
        let b = Sdr::new(16, vec![3, 4, 5, 6]);
        assert!(a.contains(3));
        assert!(!a.contains(4));
        assert_eq!(a.overlap(&b), 2);
        assert_eq!(a.overlap_fraction(&b), 0.5);
    }

    #[test]
    fn identical_and_disjoint_overlap() {
        let a = Sdr::new(8, vec![0, 1, 2]);
        assert_eq!(a.overlap(&a), 3);
        assert_eq!(a.overlap_fraction(&a), 1.0);
        let b = Sdr::new(8, vec![5, 6]);
        assert_eq!(a.overlap(&b), 0);
        let empty = Sdr::empty(8);
        assert_eq!(empty.overlap_fraction(&a), 0.0);
        assert_eq!(empty.cardinality(), 0);
    }
}
