//! Hierarchical Temporal Memory anomaly detection — the `HTM-AD` baseline.
//!
//! The paper compares Env2Vec against "HTM-AD \[1\]", the unsupervised
//! streaming anomaly detector of Ahmad, Lavin, Purdy & Agha
//! (*Unsupervised real-time anomaly detection for streaming data*,
//! Neurocomputing 2017). HTM-AD "does not consider any contextual
//! features. Rather, it only uses the target resource consumption (in this
//! case CPU) as input" (§4.2.2). No Rust implementation of HTM exists, so
//! this crate provides one following the published algorithm:
//!
//! - [`sdr`]: sparse distributed representations (sorted active-bit sets).
//! - [`encoder`]: a scalar encoder mapping a CPU reading to an SDR.
//! - [`spatial_pooler`]: permanence-learning columns with global top-k
//!   inhibition.
//! - [`temporal_memory`]: per-column cells, distal segments, bursting and
//!   winner-cell learning; its prediction error is the raw anomaly score
//!   (the fraction of active columns that were not predicted).
//! - [`likelihood`]: the rolling-Gaussian anomaly likelihood of the NAB
//!   reference implementation.
//! - [`anomaly`]: [`anomaly::HtmAnomalyDetector`], the end-to-end pipeline
//!   the evaluation harness feeds one reading at a time.
//!
//! The paper alarms "only ... when the anomaly score is equal to 1"; the
//! detector exposes both the raw score and the likelihood so the harness
//! can apply exactly that rule.

#![warn(missing_docs)]

pub mod anomaly;
pub mod encoder;
pub mod likelihood;
pub mod sdr;
pub mod spatial_pooler;
pub mod temporal_memory;

pub use anomaly::{HtmAnomalyDetector, HtmConfig};
