//! Temporal memory: sequence learning over column SDRs.
//!
//! Each column contains `cells_per_column` cells; distal segments on cells
//! learn to recognise the previously-active cell set, so a cell becomes
//! *predictive* when its context has been seen before. When an active
//! column contains predicted cells, only those fire; an unpredicted column
//! *bursts* (all cells fire) and grows a new segment on a winner cell.
//! The per-timestep **raw anomaly score** is the fraction of active
//! columns that nobody predicted — exactly the score HTM-AD thresholds.

use crate::sdr::Sdr;

/// Temporal-memory parameters.
#[derive(Debug, Clone, Copy)]
pub struct TemporalMemoryConfig {
    /// Cells per column.
    pub cells_per_column: usize,
    /// Connected synapses onto active cells needed to activate a segment.
    pub activation_threshold: usize,
    /// Potential synapses onto active cells needed for a "matching"
    /// segment (learning candidate during bursts).
    pub min_threshold: usize,
    /// Permanence at or above which a synapse is connected.
    pub connected_threshold: f64,
    /// Initial permanence of newly grown synapses.
    pub initial_permanence: f64,
    /// Permanence increment on correct prediction.
    pub permanence_increment: f64,
    /// Permanence decrement for synapses onto inactive cells.
    pub permanence_decrement: f64,
    /// Punishment decrement for segments that predicted a silent column.
    pub predicted_decrement: f64,
    /// Maximum new synapses grown per learning step.
    pub max_new_synapses: usize,
}

impl Default for TemporalMemoryConfig {
    fn default() -> Self {
        TemporalMemoryConfig {
            cells_per_column: 8,
            activation_threshold: 6,
            min_threshold: 4,
            connected_threshold: 0.5,
            initial_permanence: 0.21,
            permanence_increment: 0.1,
            permanence_decrement: 0.02,
            predicted_decrement: 0.004,
            max_new_synapses: 12,
        }
    }
}

/// A distal segment on one cell.
#[derive(Debug, Clone)]
struct Segment {
    cell: usize,
    /// `(presynaptic cell, permanence)` pairs.
    synapses: Vec<(usize, f64)>,
}

/// Result of one temporal-memory step.
#[derive(Debug, Clone)]
pub struct TmStep {
    /// Raw anomaly score: fraction of active columns not predicted.
    pub anomaly_score: f64,
    /// Number of active columns that were predicted.
    pub predicted_columns: usize,
    /// Number of columns that burst.
    pub bursting_columns: usize,
}

/// Sequence memory over a fixed column count.
#[derive(Debug, Clone)]
pub struct TemporalMemory {
    config: TemporalMemoryConfig,
    num_columns: usize,
    segments: Vec<Segment>,
    /// Segment ids per cell.
    cell_segments: Vec<Vec<usize>>,
    /// Round-robin counter for least-used-cell selection per column.
    usage: Vec<u32>,
    prev_active_cells: Vec<usize>,
    prev_winner_cells: Vec<usize>,
    /// Cells predictive for the *next* step, with the segment that did it.
    predictive: Vec<(usize, usize)>,
}

impl TemporalMemory {
    /// Creates a temporal memory over `num_columns` columns.
    ///
    /// # Panics
    ///
    /// Panics when `cells_per_column` is zero.
    pub fn new(num_columns: usize, config: TemporalMemoryConfig) -> Self {
        assert!(config.cells_per_column > 0, "cells_per_column must be > 0");
        TemporalMemory {
            config,
            num_columns,
            segments: Vec::new(),
            cell_segments: vec![Vec::new(); num_columns * config.cells_per_column],
            usage: vec![0; num_columns * config.cells_per_column],
            prev_active_cells: Vec::new(),
            prev_winner_cells: Vec::new(),
            predictive: Vec::new(),
        }
    }

    /// Total number of distal segments grown so far.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Resets sequence state (e.g. between independent time series) while
    /// keeping learned segments.
    pub fn reset(&mut self) {
        self.prev_active_cells.clear();
        self.prev_winner_cells.clear();
        self.predictive.clear();
    }

    /// Processes one step of active columns, learning if requested.
    ///
    /// # Panics
    ///
    /// Panics when the column SDR width differs from construction.
    pub fn compute(&mut self, active_columns: &Sdr, learn: bool) -> TmStep {
        assert_eq!(
            active_columns.size(),
            self.num_columns,
            "column count mismatch"
        );
        let m = self.config.cells_per_column;
        let mut active_cells: Vec<usize> = Vec::new();
        let mut winner_cells: Vec<usize> = Vec::new();
        let mut predicted_count = 0usize;
        let mut bursting = 0usize;

        let predictive_now = self.predictive.clone();
        for &col in active_columns.active() {
            let col_pred: Vec<(usize, usize)> = predictive_now
                .iter()
                .copied()
                .filter(|&(cell, _)| cell / m == col)
                .collect();
            if !col_pred.is_empty() {
                predicted_count += 1;
                for &(cell, seg) in &col_pred {
                    active_cells.push(cell);
                    winner_cells.push(cell);
                    if learn {
                        self.reinforce(seg);
                        self.grow(seg);
                    }
                }
            } else {
                bursting += 1;
                for cell in col * m..(col + 1) * m {
                    active_cells.push(cell);
                }
                // Winner: best matching segment on any cell in the column,
                // else the least-used cell.
                let best = self.best_matching_in_column(col);
                let (winner, seg) = match best {
                    Some((cell, seg)) => (cell, Some(seg)),
                    None => (self.least_used_cell(col), None),
                };
                winner_cells.push(winner);
                self.usage[winner] += 1;
                if learn {
                    match seg {
                        Some(seg) => {
                            self.reinforce(seg);
                            self.grow(seg);
                        }
                        None => {
                            if !self.prev_winner_cells.is_empty() {
                                self.grow_segment(winner);
                            }
                        }
                    }
                }
            }
        }

        // Punish segments that predicted columns that stayed silent.
        if learn && self.config.predicted_decrement > 0.0 {
            for &(cell, seg) in &predictive_now {
                if !active_columns.contains(cell / m) {
                    let dec = self.config.predicted_decrement;
                    for (pre, perm) in &mut self.segments[seg].synapses {
                        if self.prev_active_cells.binary_search(pre).is_ok() {
                            *perm = (*perm - dec).max(0.0);
                        }
                    }
                }
            }
        }

        let total = active_columns.cardinality();
        let anomaly_score = if total == 0 {
            0.0
        } else {
            bursting as f64 / total as f64
        };

        active_cells.sort_unstable();
        active_cells.dedup();
        winner_cells.sort_unstable();
        winner_cells.dedup();

        // Compute cells predictive for the next step.
        self.predictive = self.compute_predictive(&active_cells);
        self.prev_active_cells = active_cells;
        self.prev_winner_cells = winner_cells;

        TmStep {
            anomaly_score,
            predicted_columns: predicted_count,
            bursting_columns: bursting,
        }
    }

    /// Reinforces a segment against the previous active cells.
    fn reinforce(&mut self, seg: usize) {
        let inc = self.config.permanence_increment;
        let dec = self.config.permanence_decrement;
        let prev = &self.prev_active_cells;
        for (pre, perm) in &mut self.segments[seg].synapses {
            if prev.binary_search(pre).is_ok() {
                *perm = (*perm + inc).min(1.0);
            } else {
                *perm = (*perm - dec).max(0.0);
            }
        }
    }

    /// Adds synapses from previous winner cells not already on the segment.
    fn grow(&mut self, seg: usize) {
        let existing: Vec<usize> = self.segments[seg]
            .synapses
            .iter()
            .map(|&(p, _)| p)
            .collect();
        let mut budget = self
            .config
            .max_new_synapses
            .saturating_sub(existing.len().min(self.config.max_new_synapses));
        // Collect first to end the immutable borrow of self.
        let candidates: Vec<usize> = self
            .prev_winner_cells
            .iter()
            .copied()
            .filter(|p| !existing.contains(p))
            .collect();
        for pre in candidates {
            if budget == 0 {
                break;
            }
            self.segments[seg]
                .synapses
                .push((pre, self.config.initial_permanence));
            budget -= 1;
        }
    }

    /// Creates a fresh segment on `cell` wired to the previous winners.
    fn grow_segment(&mut self, cell: usize) {
        let synapses: Vec<(usize, f64)> = self
            .prev_winner_cells
            .iter()
            .take(self.config.max_new_synapses)
            .map(|&p| (p, self.config.initial_permanence))
            .collect();
        if synapses.is_empty() {
            return;
        }
        self.segments.push(Segment { cell, synapses });
        self.cell_segments[cell].push(self.segments.len() - 1);
    }

    /// Best matching segment (by potential-synapse overlap with the
    /// previous active cells) on any cell of `col`, if any reaches the
    /// matching threshold.
    fn best_matching_in_column(&self, col: usize) -> Option<(usize, usize)> {
        let m = self.config.cells_per_column;
        let mut best: Option<(usize, usize, usize)> = None;
        for cell in col * m..(col + 1) * m {
            for &seg in &self.cell_segments[cell] {
                let count = self.segments[seg]
                    .synapses
                    .iter()
                    .filter(|(p, _)| self.prev_active_cells.binary_search(p).is_ok())
                    .count();
                if count >= self.config.min_threshold
                    && best.map(|(_, _, c)| count > c).unwrap_or(true)
                {
                    best = Some((cell, seg, count));
                }
            }
        }
        best.map(|(cell, seg, _)| (cell, seg))
    }

    /// The least-recently-chosen cell in a column (round robin).
    fn least_used_cell(&self, col: usize) -> usize {
        let m = self.config.cells_per_column;
        (col * m..(col + 1) * m)
            .min_by_key(|&c| self.usage[c])
            // envlint: allow(no-panic) — config validation rejects
            // cells_per_column = 0, so the per-column range is never empty.
            .expect("cells_per_column > 0")
    }

    /// Cells with an active segment against `active_cells`.
    fn compute_predictive(&self, active_cells: &[usize]) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (seg_id, seg) in self.segments.iter().enumerate() {
            let connected = seg
                .synapses
                .iter()
                .filter(|(p, perm)| {
                    *perm >= self.config.connected_threshold
                        && active_cells.binary_search(p).is_ok()
                })
                .count();
            if connected >= self.config.activation_threshold {
                out.push((seg.cell, seg_id));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Column SDRs standing in for spatial-pooler output: pattern `i`
    /// activates columns `10 i .. 10 i + 10`.
    fn pattern(i: usize) -> Sdr {
        Sdr::new(100, (10 * i..10 * i + 10).collect())
    }

    fn tm() -> TemporalMemory {
        TemporalMemory::new(100, TemporalMemoryConfig::default())
    }

    #[test]
    fn first_presentation_is_fully_anomalous() {
        let mut t = tm();
        let step = t.compute(&pattern(0), true);
        assert_eq!(step.anomaly_score, 1.0);
        assert_eq!(step.bursting_columns, 10);
    }

    #[test]
    fn repeated_sequence_becomes_predictable() {
        let mut t = tm();
        // Learn A → B → C for many repetitions.
        for _ in 0..40 {
            for p in 0..3 {
                t.compute(&pattern(p), true);
            }
        }
        // Replay without learning: transitions must now be predicted.
        t.compute(&pattern(0), false);
        let b = t.compute(&pattern(1), false);
        let c = t.compute(&pattern(2), false);
        assert!(
            b.anomaly_score < 0.2,
            "B after A should be predicted, score {}",
            b.anomaly_score
        );
        assert!(
            c.anomaly_score < 0.2,
            "C after B should be predicted, score {}",
            c.anomaly_score
        );
    }

    #[test]
    fn novel_pattern_scores_high_after_training() {
        let mut t = tm();
        for _ in 0..40 {
            for p in 0..3 {
                t.compute(&pattern(p), true);
            }
        }
        t.compute(&pattern(0), false);
        // Jump to a never-seen pattern: fully unpredicted.
        let step = t.compute(&pattern(7), false);
        assert_eq!(step.anomaly_score, 1.0);
    }

    #[test]
    fn broken_transition_scores_high() {
        let mut t = tm();
        for _ in 0..40 {
            for p in 0..4 {
                t.compute(&pattern(p), true);
            }
        }
        t.compute(&pattern(0), false);
        t.compute(&pattern(1), false);
        // Expected C (pattern 2), got A (pattern 0): within-alphabet but
        // out-of-order — the prediction errs on most columns.
        let step = t.compute(&pattern(3), false);
        assert!(
            step.anomaly_score > 0.5,
            "out-of-order transition should be anomalous, score {}",
            step.anomaly_score
        );
    }

    #[test]
    fn reset_clears_sequence_state_but_keeps_segments() {
        let mut t = tm();
        for _ in 0..30 {
            t.compute(&pattern(0), true);
            t.compute(&pattern(1), true);
        }
        let segments_before = t.num_segments();
        t.reset();
        assert_eq!(t.num_segments(), segments_before);
        // After reset, even the learned first element bursts again.
        let step = t.compute(&pattern(0), false);
        assert_eq!(step.anomaly_score, 1.0);
    }

    #[test]
    fn empty_input_scores_zero() {
        let mut t = tm();
        let step = t.compute(&Sdr::empty(100), true);
        assert_eq!(step.anomaly_score, 0.0);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn rejects_wrong_width() {
        let mut t = tm();
        t.compute(&Sdr::empty(50), false);
    }
}
