//! End-to-end HTM-AD pipeline.
//!
//! Wires encoder → spatial pooler → temporal memory → likelihood into the
//! single-metric streaming detector the paper benchmarks: feed it one CPU
//! reading per timestep, get back the raw anomaly score and the smoothed
//! likelihood. The paper's alarm rule ("we only considered when the
//! anomaly score is equal to 1") is [`HtmReading::alarms_at`].

use crate::encoder::ScalarEncoder;
use crate::likelihood::AnomalyLikelihood;
use crate::spatial_pooler::{SpatialPooler, SpatialPoolerConfig};
use crate::temporal_memory::{TemporalMemory, TemporalMemoryConfig};

/// Configuration for the full HTM-AD pipeline.
#[derive(Debug, Clone, Copy)]
pub struct HtmConfig {
    /// Lower bound of the expected value range.
    pub min_value: f64,
    /// Upper bound of the expected value range.
    pub max_value: f64,
    /// Encoder SDR width.
    pub encoder_size: usize,
    /// Encoder active bits.
    pub encoder_w: usize,
    /// Spatial-pooler parameters.
    pub spatial: SpatialPoolerConfig,
    /// Temporal-memory parameters.
    pub temporal: TemporalMemoryConfig,
}

impl HtmConfig {
    /// A sensible configuration for a metric in `[min, max]` (e.g. CPU
    /// utilisation percent in `[0, 100]`).
    pub fn for_range(min_value: f64, max_value: f64) -> Self {
        HtmConfig {
            min_value,
            max_value,
            encoder_size: 128,
            encoder_w: 16,
            spatial: SpatialPoolerConfig::default(),
            temporal: TemporalMemoryConfig::default(),
        }
    }
}

/// One step's output from the detector.
#[derive(Debug, Clone, Copy)]
pub struct HtmReading {
    /// Raw anomaly score: fraction of active columns not predicted.
    pub raw_score: f64,
    /// Smoothed anomaly likelihood in `[0, 1]`.
    pub likelihood: f64,
}

impl HtmReading {
    /// The paper's alarm rule: raw score at (or numerically above) the
    /// threshold. §4.2.2 uses `threshold = 1.0`.
    pub fn alarms_at(&self, threshold: f64) -> bool {
        self.raw_score >= threshold - 1e-9
    }
}

/// Streaming HTM anomaly detector over a single scalar metric.
#[derive(Debug, Clone)]
pub struct HtmAnomalyDetector {
    encoder: ScalarEncoder,
    pooler: SpatialPooler,
    memory: TemporalMemory,
    likelihood: AnomalyLikelihood,
}

impl HtmAnomalyDetector {
    /// Builds the pipeline from a configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is internally inconsistent (empty
    /// value range, zero encoder width, etc.), mirroring the component
    /// constructors.
    pub fn new(config: HtmConfig) -> Self {
        let encoder = ScalarEncoder::new(
            config.min_value,
            config.max_value,
            config.encoder_size,
            config.encoder_w,
        );
        let pooler = SpatialPooler::new(config.encoder_size, config.spatial);
        let memory = TemporalMemory::new(config.spatial.num_columns, config.temporal);
        HtmAnomalyDetector {
            encoder,
            pooler,
            memory,
            likelihood: AnomalyLikelihood::default_sizing(),
        }
    }

    /// Consumes one metric reading, learning online, and returns the
    /// anomaly scores (HTM-AD is fully unsupervised and always learns).
    pub fn process(&mut self, value: f64) -> HtmReading {
        let encoded = self.encoder.encode(value);
        let columns = self.pooler.compute(&encoded, true);
        let step = self.memory.compute(&columns, true);
        let likelihood = self.likelihood.update(step.anomaly_score);
        HtmReading {
            raw_score: step.anomaly_score,
            likelihood,
        }
    }

    /// Clears sequence state between independent time series (keeps all
    /// learned structure).
    pub fn reset_sequence(&mut self) {
        self.memory.reset();
    }

    /// Convenience: processes a whole series, returning one reading per
    /// point.
    pub fn process_series(&mut self, values: &[f64]) -> Vec<HtmReading> {
        values.iter().map(|&v| self.process(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A clean periodic signal the detector can learn.
    fn periodic(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 50.0 + 30.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
            .collect()
    }

    #[test]
    fn learns_periodic_signal() {
        let mut det = HtmAnomalyDetector::new(HtmConfig::for_range(0.0, 100.0));
        let readings = det.process_series(&periodic(600));
        // Early scores are high (everything is novel)…
        let early: f64 = readings[..24].iter().map(|r| r.raw_score).sum::<f64>() / 24.0;
        // …late scores are low (the cycle is learned).
        let late: f64 = readings[576..].iter().map(|r| r.raw_score).sum::<f64>() / 24.0;
        assert!(early > 0.8, "early mean raw score {early}");
        assert!(late < 0.3, "late mean raw score {late}");
    }

    #[test]
    fn spike_in_learned_signal_alarms() {
        let mut det = HtmAnomalyDetector::new(HtmConfig::for_range(0.0, 100.0));
        det.process_series(&periodic(600));
        // Inject an off-pattern spike.
        let r = det.process(5.0);
        assert!(r.alarms_at(1.0), "raw score {}", r.raw_score);
    }

    #[test]
    fn steady_state_does_not_alarm() {
        // Online spatial-pooler learning shifts a few columns while
        // permanences saturate, so allow the early transient and require
        // silence once the mapping is stable.
        let mut det = HtmAnomalyDetector::new(HtmConfig::for_range(0.0, 100.0));
        let readings = det.process_series(&vec![42.0; 600]);
        let alarms = readings[300..].iter().filter(|r| r.alarms_at(1.0)).count();
        assert_eq!(alarms, 0);
    }

    #[test]
    fn likelihood_stays_in_unit_interval() {
        let mut det = HtmAnomalyDetector::new(HtmConfig::for_range(0.0, 100.0));
        for i in 0..300 {
            let v = (i * 31 % 100) as f64;
            let r = det.process(v);
            assert!((0.0..=1.0).contains(&r.likelihood));
            assert!((0.0..=1.0).contains(&r.raw_score));
        }
    }

    #[test]
    fn reset_makes_next_step_novel() {
        let mut det = HtmAnomalyDetector::new(HtmConfig::for_range(0.0, 100.0));
        det.process_series(&vec![50.0; 200]);
        let settled = det.process(50.0);
        assert!(settled.raw_score < 0.5);
        det.reset_sequence();
        let after = det.process(50.0);
        assert_eq!(after.raw_score, 1.0);
    }

    #[test]
    fn alarm_threshold_edge() {
        let r = HtmReading {
            raw_score: 1.0,
            likelihood: 0.9,
        };
        assert!(r.alarms_at(1.0));
        let r2 = HtmReading {
            raw_score: 0.95,
            likelihood: 0.99,
        };
        assert!(!r2.alarms_at(1.0));
        assert!(r2.alarms_at(0.9));
    }
}
