//! Scalar-to-SDR encoder.
//!
//! The classic HTM scalar encoder: the value range is divided into
//! buckets, and a value activates a contiguous run of `w` bits starting at
//! its bucket, so nearby values share active bits in proportion to their
//! closeness. Out-of-range values clip to the ends.

use crate::sdr::Sdr;

/// Encodes scalars in `[min, max]` into `size`-bit SDRs with `w` active
/// bits.
#[derive(Debug, Clone)]
pub struct ScalarEncoder {
    min: f64,
    max: f64,
    size: usize,
    w: usize,
}

impl ScalarEncoder {
    /// Creates an encoder over the closed range `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics when `min >= max`, `w == 0`, or `w > size`.
    pub fn new(min: f64, max: f64, size: usize, w: usize) -> Self {
        assert!(min < max, "encoder range must be non-empty");
        assert!(w > 0 && w <= size, "active width must be in 1..=size");
        ScalarEncoder { min, max, size, w }
    }

    /// Output SDR width.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of active bits per encoding.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Encodes a value (clipping to the range).
    pub fn encode(&self, value: f64) -> Sdr {
        let clipped = value.clamp(self.min, self.max);
        let buckets = self.size - self.w;
        let frac = (clipped - self.min) / (self.max - self.min);
        let start = (frac * buckets as f64).round() as usize;
        Sdr::new(self.size, (start..start + self.w).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoder() -> ScalarEncoder {
        ScalarEncoder::new(0.0, 100.0, 128, 16)
    }

    #[test]
    fn fixed_cardinality() {
        let e = encoder();
        for v in [0.0, 13.7, 50.0, 99.9, 100.0] {
            assert_eq!(e.encode(v).cardinality(), 16);
        }
    }

    #[test]
    fn nearby_values_overlap_distant_do_not() {
        let e = encoder();
        let a = e.encode(50.0);
        let b = e.encode(51.0);
        let c = e.encode(90.0);
        assert!(a.overlap(&b) > 10, "near values share bits");
        assert_eq!(a.overlap(&c), 0, "far values share none");
    }

    #[test]
    fn overlap_decreases_monotonically_with_distance() {
        let e = encoder();
        let base = e.encode(40.0);
        let mut last = usize::MAX;
        for delta in [0.0, 2.0, 4.0, 8.0, 16.0] {
            let ov = base.overlap(&e.encode(40.0 + delta));
            assert!(ov <= last);
            last = ov;
        }
    }

    #[test]
    fn clipping_at_range_ends() {
        let e = encoder();
        assert_eq!(e.encode(-50.0), e.encode(0.0));
        assert_eq!(e.encode(150.0), e.encode(100.0));
        // Extremes stay within the SDR width.
        assert!(e.encode(100.0).active().iter().all(|&b| b < 128));
    }

    #[test]
    fn deterministic() {
        let e = encoder();
        assert_eq!(e.encode(42.0), e.encode(42.0));
    }

    #[test]
    #[should_panic(expected = "range must be non-empty")]
    fn rejects_inverted_range() {
        let _ = ScalarEncoder::new(10.0, 0.0, 64, 8);
    }

    #[test]
    #[should_panic(expected = "active width")]
    fn rejects_zero_width() {
        let _ = ScalarEncoder::new(0.0, 1.0, 64, 0);
    }
}
