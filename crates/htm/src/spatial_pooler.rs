//! Spatial pooler: input SDR → column SDR with online permanence learning.
//!
//! Each column holds a pool of potential synapses onto the input space,
//! each with a permanence in `[0, 1]`; a synapse is *connected* when its
//! permanence crosses a threshold. A column's overlap is its count of
//! connected synapses onto active input bits; the top `num_active` columns
//! win (global inhibition). Learning nudges the winning columns'
//! permanences toward the current input, so frequently co-occurring input
//! bits end up reliably mapped to stable columns.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::sdr::Sdr;

/// Spatial-pooler parameters.
#[derive(Debug, Clone, Copy)]
pub struct SpatialPoolerConfig {
    /// Number of columns.
    pub num_columns: usize,
    /// Number of winning columns per input (output SDR cardinality).
    pub num_active: usize,
    /// Fraction of the input space each column can potentially connect to.
    pub potential_fraction: f64,
    /// Permanence at or above which a synapse is connected.
    pub connected_threshold: f64,
    /// Permanence increment for synapses onto active input bits.
    pub permanence_increment: f64,
    /// Permanence decrement for synapses onto inactive input bits.
    pub permanence_decrement: f64,
    /// Minimum overlap for a column to compete.
    pub stimulus_threshold: usize,
    /// Boosting strength: under-used columns get their overlap multiplied
    /// by `exp(boost_strength * (target_density - duty_cycle))` so every
    /// column eventually participates (Numenta's homeostatic boosting).
    /// `0.0` disables boosting.
    pub boost_strength: f64,
    /// Exponential smoothing period for the per-column active duty cycle.
    pub duty_cycle_period: u32,
    /// RNG seed for potential-pool wiring and initial permanences.
    pub seed: u64,
}

impl Default for SpatialPoolerConfig {
    fn default() -> Self {
        SpatialPoolerConfig {
            num_columns: 256,
            num_active: 10,
            potential_fraction: 0.5,
            connected_threshold: 0.5,
            permanence_increment: 0.05,
            permanence_decrement: 0.008,
            stimulus_threshold: 1,
            boost_strength: 0.0,
            duty_cycle_period: 1000,
            seed: 0,
        }
    }
}

/// One column's potential synapses.
#[derive(Debug, Clone)]
struct Column {
    /// Input bits this column can see.
    inputs: Vec<usize>,
    /// Permanence per potential synapse, parallel to `inputs`.
    permanences: Vec<f64>,
}

/// A spatial pooler over a fixed-width input space.
#[derive(Debug, Clone)]
pub struct SpatialPooler {
    config: SpatialPoolerConfig,
    input_size: usize,
    columns: Vec<Column>,
    /// Smoothed per-column active duty cycle (fraction of recent steps the
    /// column won), driving homeostatic boosting.
    duty_cycles: Vec<f64>,
}

impl SpatialPooler {
    /// Creates a pooler for `input_size`-bit SDRs.
    ///
    /// # Panics
    ///
    /// Panics when `num_active` is zero or exceeds `num_columns`, or when
    /// the potential fraction is outside `(0, 1]`.
    pub fn new(input_size: usize, config: SpatialPoolerConfig) -> Self {
        assert!(
            config.num_active > 0 && config.num_active <= config.num_columns,
            "num_active must be in 1..=num_columns"
        );
        assert!(
            config.potential_fraction > 0.0 && config.potential_fraction <= 1.0,
            "potential_fraction must be in (0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let pool_size = ((input_size as f64 * config.potential_fraction) as usize).max(1);
        let columns = (0..config.num_columns)
            .map(|_| {
                let mut all: Vec<usize> = (0..input_size).collect();
                all.shuffle(&mut rng);
                all.truncate(pool_size);
                let permanences = (0..pool_size)
                    // Initial permanences straddle the connected threshold.
                    .map(|_| config.connected_threshold + rng.gen_range(-0.1..0.1))
                    .collect();
                Column {
                    inputs: all,
                    permanences,
                }
            })
            .collect();
        let n = config.num_columns;
        SpatialPooler {
            config,
            input_size,
            columns,
            duty_cycles: vec![0.0; n],
        }
    }

    /// The smoothed fraction of recent steps each column was active.
    pub fn duty_cycles(&self) -> &[f64] {
        &self.duty_cycles
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Computes the active columns for `input`, learning if requested.
    ///
    /// # Panics
    ///
    /// Panics when the input width differs from construction.
    pub fn compute(&mut self, input: &Sdr, learn: bool) -> Sdr {
        assert_eq!(input.size(), self.input_size, "input width mismatch");
        let raw_overlaps: Vec<usize> = self
            .columns
            .iter()
            .map(|col| {
                col.inputs
                    .iter()
                    .zip(&col.permanences)
                    .filter(|(&bit, &perm)| {
                        perm >= self.config.connected_threshold && input.contains(bit)
                    })
                    .count()
            })
            .collect();

        // Homeostatic boosting: over-used columns are handicapped,
        // under-used ones amplified, relative to the target density.
        let target = self.config.num_active as f64 / self.columns.len() as f64;
        let boosted: Vec<f64> = raw_overlaps
            .iter()
            .enumerate()
            .map(|(c, &o)| {
                if self.config.boost_strength > 0.0 {
                    let boost = (self.config.boost_strength * (target - self.duty_cycles[c])).exp();
                    o as f64 * boost
                } else {
                    o as f64
                }
            })
            .collect();

        // Global inhibition: top-k columns by (boosted) overlap, ties by
        // index.
        let mut order: Vec<usize> = (0..self.columns.len())
            .filter(|&c| raw_overlaps[c] >= self.config.stimulus_threshold)
            .collect();
        // `total_cmp` is a NaN-safe total order, so the comparator
        // cannot fail even on pathological overlap scores.
        order.sort_by(|&a, &b| boosted[b].total_cmp(&boosted[a]).then(a.cmp(&b)));
        order.truncate(self.config.num_active);

        // Duty-cycle update (learning mode only, like the reference).
        if learn {
            let alpha = 1.0 / self.config.duty_cycle_period.max(1) as f64;
            for (c, duty) in self.duty_cycles.iter_mut().enumerate() {
                let active = order.contains(&c) as u8 as f64;
                *duty += alpha * (active - *duty);
            }
        }

        if learn {
            for &c in &order {
                let col = &mut self.columns[c];
                for (bit, perm) in col.inputs.iter().zip(col.permanences.iter_mut()) {
                    if input.contains(*bit) {
                        *perm = (*perm + self.config.permanence_increment).min(1.0);
                    } else {
                        *perm = (*perm - self.config.permanence_decrement).max(0.0);
                    }
                }
            }
        }
        Sdr::new(self.columns.len(), order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::ScalarEncoder;

    fn setup() -> (ScalarEncoder, SpatialPooler) {
        let enc = ScalarEncoder::new(0.0, 100.0, 128, 16);
        let sp = SpatialPooler::new(128, SpatialPoolerConfig::default());
        (enc, sp)
    }

    #[test]
    fn output_cardinality_bounded_by_num_active() {
        let (enc, mut sp) = setup();
        let out = sp.compute(&enc.encode(50.0), false);
        assert!(out.cardinality() <= 10);
        assert!(out.cardinality() > 0);
        assert_eq!(out.size(), 256);
    }

    #[test]
    fn same_input_same_columns() {
        let (enc, mut sp) = setup();
        let a = sp.compute(&enc.encode(30.0), false);
        let b = sp.compute(&enc.encode(30.0), false);
        assert_eq!(a, b);
    }

    #[test]
    fn similar_inputs_share_columns_more_than_distant() {
        let (enc, mut sp) = setup();
        // Train on the low range so the mapping stabilises.
        for _ in 0..50 {
            for v in [20.0, 25.0, 80.0] {
                sp.compute(&enc.encode(v), true);
            }
        }
        let near_a = sp.compute(&enc.encode(20.0), false);
        let near_b = sp.compute(&enc.encode(22.0), false);
        let far = sp.compute(&enc.encode(80.0), false);
        assert!(near_a.overlap(&near_b) > near_a.overlap(&far));
    }

    #[test]
    fn learning_increases_stability() {
        let (enc, mut sp) = setup();
        let before = sp.compute(&enc.encode(60.0), false);
        for _ in 0..100 {
            sp.compute(&enc.encode(60.0), true);
        }
        let after_training = sp.compute(&enc.encode(60.0), false);
        // After training, repeated presentations keep the same columns.
        let again = sp.compute(&enc.encode(60.0), false);
        assert_eq!(after_training, again);
        // Sanity: representation exists both before and after.
        assert!(before.cardinality() > 0);
    }

    #[test]
    fn deterministic_across_instances() {
        let enc = ScalarEncoder::new(0.0, 1.0, 64, 8);
        let mut a = SpatialPooler::new(64, SpatialPoolerConfig::default());
        let mut b = SpatialPooler::new(64, SpatialPoolerConfig::default());
        assert_eq!(
            a.compute(&enc.encode(0.5), false),
            b.compute(&enc.encode(0.5), false)
        );
    }

    #[test]
    fn boosting_spreads_column_usage() {
        // Feed a narrow input distribution; with boosting, more distinct
        // columns end up participating than without.
        let enc = ScalarEncoder::new(0.0, 100.0, 128, 16);
        let run = |boost: f64| -> usize {
            let mut sp = SpatialPooler::new(
                128,
                SpatialPoolerConfig {
                    boost_strength: boost,
                    duty_cycle_period: 50,
                    ..SpatialPoolerConfig::default()
                },
            );
            let mut used = std::collections::HashSet::new();
            for i in 0..400 {
                let v = 40.0 + (i % 5) as f64; // five nearby values only
                let out = sp.compute(&enc.encode(v), true);
                used.extend(out.active().iter().copied());
            }
            used.len()
        };
        let without = run(0.0);
        let with = run(3.0);
        assert!(
            with > without,
            "boosting should recruit more columns: {with} vs {without}"
        );
    }

    #[test]
    fn duty_cycles_track_activity() {
        let enc = ScalarEncoder::new(0.0, 100.0, 128, 16);
        let mut sp = SpatialPooler::new(
            128,
            SpatialPoolerConfig {
                boost_strength: 1.0,
                duty_cycle_period: 10,
                ..SpatialPoolerConfig::default()
            },
        );
        for _ in 0..100 {
            sp.compute(&enc.encode(50.0), true);
        }
        // Boosting rotates winners, so individual duties vary; but the
        // current winners' mean duty must exceed the non-winners' mean,
        // and every duty stays a valid fraction.
        let winners = sp.compute(&enc.encode(50.0), false);
        let (mut win, mut lose) = ((0.0, 0usize), (0.0, 0usize));
        for c in 0..sp.num_columns() {
            let duty = sp.duty_cycles()[c];
            assert!((0.0..=1.0).contains(&duty));
            if winners.contains(c) {
                win = (win.0 + duty, win.1 + 1);
            } else {
                lose = (lose.0 + duty, lose.1 + 1);
            }
        }
        let win_mean = win.0 / win.1.max(1) as f64;
        let lose_mean = lose.0 / lose.1.max(1) as f64;
        assert!(
            win_mean > lose_mean,
            "winner mean duty {win_mean} vs others {lose_mean}"
        );
        // Inference mode must not move duty cycles.
        let before = sp.duty_cycles().to_vec();
        sp.compute(&enc.encode(50.0), false);
        assert_eq!(sp.duty_cycles(), &before[..]);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn rejects_wrong_input_width() {
        let (_, mut sp) = setup();
        sp.compute(&Sdr::empty(64), false);
    }
}
