//! Anomaly likelihood over raw anomaly scores.
//!
//! Raw temporal-memory scores are noisy; Ahmad et al. 2017 smooth them by
//! modelling the recent history of scores as a Gaussian and reporting the
//! tail probability of the short-term average — values near `1.0` mean
//! "the current prediction error is extremely unusual for this stream".

use std::collections::VecDeque;

/// Rolling-Gaussian anomaly likelihood (NAB reference behaviour).
#[derive(Debug, Clone)]
pub struct AnomalyLikelihood {
    window: VecDeque<f64>,
    window_len: usize,
    short_len: usize,
    /// Number of scores to observe before emitting informative output.
    learning_period: usize,
    seen: usize,
}

impl AnomalyLikelihood {
    /// Creates a likelihood estimator.
    ///
    /// `window_len` is the long-term history modelled as a Gaussian,
    /// `short_len` the short-term average that is scored against it,
    /// `learning_period` the warm-up during which `0.5` is reported.
    ///
    /// # Panics
    ///
    /// Panics when `short_len` is zero or exceeds `window_len`.
    pub fn new(window_len: usize, short_len: usize, learning_period: usize) -> Self {
        assert!(
            short_len > 0 && short_len <= window_len,
            "short_len must be in 1..=window_len"
        );
        AnomalyLikelihood {
            window: VecDeque::with_capacity(window_len),
            window_len,
            short_len,
            learning_period,
            seen: 0,
        }
    }

    /// Default NAB-like sizing for 15-minute telemetry.
    pub fn default_sizing() -> Self {
        AnomalyLikelihood::new(200, 10, 50)
    }

    /// Consumes one raw anomaly score, returning the likelihood in
    /// `[0, 1]`.
    pub fn update(&mut self, raw_score: f64) -> f64 {
        let raw_score = raw_score.clamp(0.0, 1.0);
        if self.window.len() == self.window_len {
            self.window.pop_front();
        }
        self.window.push_back(raw_score);
        self.seen += 1;
        if self.seen < self.learning_period || self.window.len() < self.short_len + 1 {
            return 0.5;
        }
        let n = self.window.len() as f64;
        let mean: f64 = self.window.iter().sum::<f64>() / n;
        let var: f64 = self
            .window
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / n;
        // Floor the deviation so constant histories do not divide by zero.
        let std = var.sqrt().max(1e-6);
        let short_mean: f64 =
            self.window.iter().rev().take(self.short_len).sum::<f64>() / self.short_len as f64;
        let z = (short_mean - mean) / std;
        // Likelihood = 1 - Q(z): probability mass below the short-term
        // average under the long-term Gaussian.
        normal_cdf(z)
    }

    /// Number of scores consumed.
    pub fn seen(&self) -> usize {
        self.seen
    }
}

/// Standard normal CDF via `erf`.
fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Error-function approximation (Abramowitz & Stegun 7.1.26).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_up_reports_half() {
        let mut al = AnomalyLikelihood::new(50, 5, 20);
        for _ in 0..10 {
            assert_eq!(al.update(0.3), 0.5);
        }
    }

    #[test]
    fn spike_after_quiet_history_is_high_likelihood() {
        let mut al = AnomalyLikelihood::new(100, 5, 30);
        for _ in 0..80 {
            al.update(0.05);
        }
        let mut last = 0.0;
        for _ in 0..5 {
            last = al.update(1.0);
        }
        assert!(last > 0.99, "likelihood after spike {last}");
    }

    #[test]
    fn noisy_history_dampens_likelihood() {
        // Same spike, but the history is already noisy: less surprising.
        let mut quiet = AnomalyLikelihood::new(100, 5, 30);
        let mut noisy = AnomalyLikelihood::new(100, 5, 30);
        for i in 0..80 {
            quiet.update(0.05);
            noisy.update(if i % 2 == 0 { 0.0 } else { 0.9 });
        }
        let mut q = 0.0;
        let mut nz = 0.0;
        for _ in 0..3 {
            q = quiet.update(1.0);
            nz = noisy.update(1.0);
        }
        assert!(q > nz, "quiet {q} should exceed noisy {nz}");
    }

    #[test]
    fn low_scores_after_high_history_is_low_likelihood() {
        let mut al = AnomalyLikelihood::new(100, 5, 30);
        for _ in 0..80 {
            al.update(0.8);
        }
        let mut last = 1.0;
        for _ in 0..5 {
            last = al.update(0.0);
        }
        assert!(last < 0.01, "likelihood {last}");
    }

    #[test]
    fn output_always_in_unit_interval() {
        let mut al = AnomalyLikelihood::default_sizing();
        for i in 0..500 {
            let raw = ((i * 37) % 100) as f64 / 100.0;
            let l = al.update(raw);
            assert!((0.0..=1.0).contains(&l), "likelihood {l}");
        }
        assert_eq!(al.seen(), 500);
    }

    #[test]
    #[should_panic(expected = "short_len")]
    fn rejects_bad_short_len() {
        let _ = AnomalyLikelihood::new(10, 0, 5);
    }
}
