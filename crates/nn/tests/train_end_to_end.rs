//! End-to-end training tests: the engine must actually fit functions.

use env2vec_linalg::Matrix;
use env2vec_nn::graph::Graph;
use env2vec_nn::layers::{Activation, Dense, Embedding, GruCell};
use env2vec_nn::loss::mse;
use env2vec_nn::optim::{Adam, Optimizer};
use env2vec_nn::params::ParamSet;
use env2vec_nn::trainer::{shuffled_batches, EarlyStopping};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Trains a one-hidden-layer FNN on a smooth nonlinear target and checks
/// the fit improves by an order of magnitude.
#[test]
fn fnn_fits_nonlinear_function() {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 200;
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| (x[0] * 2.0).sin() * 0.5 + x[1] * x[1])
        .collect();

    let mut ps = ParamSet::new();
    let hidden = Dense::new(&mut ps, &mut rng, "h", 2, 16, Activation::Sigmoid).unwrap();
    let out = Dense::new(&mut ps, &mut rng, "o", 16, 1, Activation::Linear).unwrap();
    let mut opt = Adam::new(0.01);

    let eval = |ps: &ParamSet| -> f64 {
        let mut g = Graph::new();
        let bound = ps.bind(&mut g);
        let x = g.leaf(Matrix::from_rows(&xs).unwrap());
        let h = hidden.forward(&mut g, &bound, x).unwrap();
        let o = out.forward(&mut g, &bound, h).unwrap();
        let pred: Vec<f64> = g.value(o).col(0);
        mse(&pred, &ys).unwrap()
    };

    let initial = eval(&ps);
    for epoch in 0..300 {
        for batch in shuffled_batches(n, 32, epoch) {
            let bx: Vec<Vec<f64>> = batch.iter().map(|&i| xs[i].clone()).collect();
            let by: Vec<f64> = batch.iter().map(|&i| ys[i]).collect();
            let mut g = Graph::new();
            let bound = ps.bind(&mut g);
            let x = g.leaf(Matrix::from_rows(&bx).unwrap());
            let h = hidden.forward(&mut g, &bound, x).unwrap();
            let o = out.forward(&mut g, &bound, h).unwrap();
            let t = g.leaf(Matrix::col_vector(&by));
            let loss = g.mse(o, t).unwrap();
            g.backward(loss).unwrap();
            let grads = ps.gradients(&g, &bound).unwrap();
            opt.step(&mut ps, &grads).unwrap();
        }
    }
    let fitted = eval(&ps);
    assert!(
        fitted < initial / 10.0,
        "training did not fit: initial mse {initial}, fitted {fitted}"
    );
}

/// A GRU must learn a sequence-order-dependent target that a memoryless
/// model cannot express: y = last value minus first value of the window.
#[test]
fn gru_learns_order_dependent_target() {
    let mut rng = StdRng::seed_from_u64(5);
    let n = 256;
    let window = 4;
    let seqs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..window).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let ys: Vec<f64> = seqs.iter().map(|s| s[window - 1] - s[0]).collect();

    let mut ps = ParamSet::new();
    let cell = GruCell::new(&mut ps, &mut rng, "gru", 1, 8, Activation::Tanh).unwrap();
    let head = Dense::new(&mut ps, &mut rng, "head", 8, 1, Activation::Linear).unwrap();
    let mut opt = Adam::new(0.02);

    let forward = |ps: &ParamSet, idx: &[usize]| -> (Graph, env2vec_nn::NodeId) {
        let mut g = Graph::new();
        let bound = ps.bind(&mut g);
        let steps: Vec<env2vec_nn::NodeId> = (0..window)
            .map(|t| {
                let col: Vec<f64> = idx.iter().map(|&i| seqs[i][t]).collect();
                g.leaf(Matrix::col_vector(&col))
            })
            .collect();
        let h = cell
            .run_sequence(&mut g, &bound, &steps, idx.len())
            .unwrap();
        let o = head.forward(&mut g, &bound, h).unwrap();
        (g, o)
    };

    let all: Vec<usize> = (0..n).collect();
    let eval = |ps: &ParamSet| -> f64 {
        let (g, o) = forward(ps, &all);
        mse(&g.value(o).col(0), &ys).unwrap()
    };

    let initial = eval(&ps);
    for epoch in 0..150 {
        for batch in shuffled_batches(n, 64, epoch) {
            let by: Vec<f64> = batch.iter().map(|&i| ys[i]).collect();
            let mut g = Graph::new();
            let bound = ps.bind(&mut g);
            let steps: Vec<env2vec_nn::NodeId> = (0..window)
                .map(|t| {
                    let col: Vec<f64> = batch.iter().map(|&i| seqs[i][t]).collect();
                    g.leaf(Matrix::col_vector(&col))
                })
                .collect();
            let h = cell
                .run_sequence(&mut g, &bound, &steps, batch.len())
                .unwrap();
            let o = head.forward(&mut g, &bound, h).unwrap();
            let t = g.leaf(Matrix::col_vector(&by));
            let loss = g.mse(o, t).unwrap();
            g.backward(loss).unwrap();
            let grads = ps.gradients(&g, &bound).unwrap();
            opt.step(&mut ps, &grads).unwrap();
        }
    }
    let fitted = eval(&ps);
    assert!(
        fitted < initial / 5.0,
        "GRU did not learn: initial {initial}, fitted {fitted}"
    );
    assert!(fitted < 0.02, "GRU final mse too high: {fitted}");
}

/// Embeddings must absorb a per-category offset: y = x + offset[cat].
#[test]
fn embedding_learns_category_offsets() {
    let mut rng = StdRng::seed_from_u64(9);
    let offsets = [0.0, 1.0, -1.5, 2.5];
    let n = 400;
    let cats: Vec<usize> = (0..n).map(|i| i % offsets.len()).collect();
    let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let ys: Vec<f64> = xs.iter().zip(&cats).map(|(x, &c)| x + offsets[c]).collect();

    let mut ps = ParamSet::new();
    // Encoded indices are 1-based (0 is <unk>).
    let emb = Embedding::new(&mut ps, &mut rng, "em", offsets.len(), 4).unwrap();
    let head = Dense::new(&mut ps, &mut rng, "head", 5, 1, Activation::Linear).unwrap();
    let mut opt = Adam::new(0.02);

    let run = |ps: &ParamSet, idx: &[usize]| -> (Graph, env2vec_nn::NodeId) {
        let mut g = Graph::new();
        let bound = ps.bind(&mut g);
        let x_col: Vec<f64> = idx.iter().map(|&i| xs[i]).collect();
        let enc: Vec<usize> = idx.iter().map(|&i| cats[i] + 1).collect();
        let x = g.leaf(Matrix::col_vector(&x_col));
        let e = emb.lookup(&mut g, &bound, &enc).unwrap();
        let joined = g.concat_cols(&[x, e]).unwrap();
        let o = head.forward(&mut g, &bound, joined).unwrap();
        (g, o)
    };

    let all: Vec<usize> = (0..n).collect();
    let initial = {
        let (g, o) = run(&ps, &all);
        mse(&g.value(o).col(0), &ys).unwrap()
    };

    let mut stopper = EarlyStopping::new(20, 1e-6);
    for epoch in 0..400 {
        for batch in shuffled_batches(n, 64, epoch) {
            let mut g = Graph::new();
            let bound = ps.bind(&mut g);
            let x_col: Vec<f64> = batch.iter().map(|&i| xs[i]).collect();
            let enc: Vec<usize> = batch.iter().map(|&i| cats[i] + 1).collect();
            let by: Vec<f64> = batch.iter().map(|&i| ys[i]).collect();
            let x = g.leaf(Matrix::col_vector(&x_col));
            let e = emb.lookup(&mut g, &bound, &enc).unwrap();
            let joined = g.concat_cols(&[x, e]).unwrap();
            let o = head.forward(&mut g, &bound, joined).unwrap();
            let t = g.leaf(Matrix::col_vector(&by));
            let loss = g.mse(o, t).unwrap();
            g.backward(loss).unwrap();
            let grads = ps.gradients(&g, &bound).unwrap();
            opt.step(&mut ps, &grads).unwrap();
        }
        let (g, o) = run(&ps, &all);
        let val = mse(&g.value(o).col(0), &ys).unwrap();
        if stopper.observe(val, &ps) {
            break;
        }
    }
    let best = stopper.into_best(ps);
    let (g, o) = run(&best, &all);
    let fitted = mse(&g.value(o).col(0), &ys).unwrap();
    assert!(
        fitted < initial / 50.0 && fitted < 0.01,
        "embedding model did not fit: initial {initial}, fitted {fitted}"
    );
}

/// Serialised parameters must reproduce identical predictions.
#[test]
fn serialized_model_predicts_identically() {
    let mut rng = StdRng::seed_from_u64(21);
    let mut ps = ParamSet::new();
    let layer = Dense::new(&mut ps, &mut rng, "d", 3, 2, Activation::Tanh).unwrap();
    let input = Matrix::from_vec(2, 3, vec![0.1, -0.5, 0.9, 1.1, 0.0, -0.2]).unwrap();

    let predict = |ps: &ParamSet| -> Matrix {
        let mut g = Graph::new();
        let bound = ps.bind(&mut g);
        let x = g.leaf(input.clone());
        let y = layer.forward(&mut g, &bound, x).unwrap();
        g.value(y).clone()
    };

    let before = predict(&ps);
    let restored = ParamSet::from_json(&ps.to_json()).unwrap();
    let after = predict(&restored);
    assert_eq!(before, after);
}
