//! Property-based gradient checks: randomly composed graphs must match
//! central finite differences.

use env2vec_linalg::Matrix;
use env2vec_nn::graph::{Graph, NodeId};
use proptest::prelude::*;

/// A small op palette applied in sequence to a 2x3 input.
#[derive(Debug, Clone, Copy)]
enum UnaryOp {
    Sigmoid,
    Tanh,
    Square,
    Scale,
    AddScalar,
    Softmax,
}

fn apply(graph: &mut Graph, x: NodeId, op: UnaryOp) -> NodeId {
    match op {
        UnaryOp::Sigmoid => graph.sigmoid(x),
        UnaryOp::Tanh => graph.tanh(x),
        UnaryOp::Square => graph.square(x),
        UnaryOp::Scale => graph.scale(x, 0.7),
        UnaryOp::AddScalar => graph.add_scalar(x, 0.3),
        UnaryOp::Softmax => graph.row_softmax(x),
    }
}

fn op_strategy() -> impl Strategy<Value = UnaryOp> {
    prop_oneof![
        Just(UnaryOp::Sigmoid),
        Just(UnaryOp::Tanh),
        Just(UnaryOp::Square),
        Just(UnaryOp::Scale),
        Just(UnaryOp::AddScalar),
        Just(UnaryOp::Softmax),
    ]
}

/// Builds loss = mean(chain(x)) and compares autodiff vs finite diff.
fn check_chain(data: &[f64], ops: &[UnaryOp]) -> Result<(), TestCaseError> {
    let leaf = Matrix::from_vec(2, 3, data.to_vec()).expect("sized");
    let build = |g: &mut Graph, value: Matrix| -> (NodeId, NodeId) {
        let x = g.leaf(value);
        let mut cur = x;
        for &op in ops {
            cur = apply(g, cur, op);
        }
        let loss = g.mean_all(cur).expect("non-empty");
        (x, loss)
    };

    let mut g = Graph::new();
    let (x, loss) = build(&mut g, leaf.clone());
    g.backward(loss).expect("scalar loss");
    let analytic = g.grad(x).expect("reached").clone();

    let eps = 1e-5;
    for i in 0..2 {
        for j in 0..3 {
            let mut plus = leaf.clone();
            plus.set(i, j, leaf.get(i, j) + eps);
            let mut minus = leaf.clone();
            minus.set(i, j, leaf.get(i, j) - eps);
            let mut gp = Graph::new();
            let (_, lp) = build(&mut gp, plus);
            let mut gm = Graph::new();
            let (_, lm) = build(&mut gm, minus);
            let numeric = (gp.value(lp).get(0, 0) - gm.value(lm).get(0, 0)) / (2.0 * eps);
            let got = analytic.get(i, j);
            prop_assert!(
                (numeric - got).abs() < 1e-4 * (1.0 + numeric.abs()),
                "ops {ops:?} at ({i},{j}): numeric {numeric} vs analytic {got}"
            );
        }
    }
    Ok(())
}

proptest! {
    /// Random chains of smooth unary ops gradient-check.
    #[test]
    fn random_unary_chains_gradcheck(
        data in proptest::collection::vec(-1.5f64..1.5, 6),
        ops in proptest::collection::vec(op_strategy(), 1..5),
    ) {
        check_chain(&data, &ops)?;
    }

}

/// Binary composition with a shared input — loss = mean((x ⊙ c + x)²) —
/// gradient-checked at fixed points (gradient accumulation across both
/// uses of `x` must be exact).
#[test]
fn shared_input_binary_gradcheck_concrete() {
    let cases = [
        vec![0.5, -1.0, 0.3, 0.9, -0.2, 0.1],
        vec![-0.8, 0.4, 0.0, 1.2, -1.1, 0.6],
    ];
    for data in cases {
        let leaf = Matrix::from_vec(2, 3, data).expect("sized");
        let build = |g: &mut Graph, value: Matrix| -> (NodeId, NodeId) {
            let x = g.leaf(value);
            let c = g.leaf(
                Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 1.0, 0.25, -0.75]).expect("sized"),
            );
            let prod = g.mul(x, c).expect("same shape");
            let sum = g.add(prod, x).expect("same shape");
            let sq = g.square(sum);
            let loss = g.mean_all(sq).expect("non-empty");
            (x, loss)
        };
        let mut g = Graph::new();
        let (x, loss) = build(&mut g, leaf.clone());
        g.backward(loss).expect("scalar");
        let analytic = g.grad(x).expect("reached").clone();
        let eps = 1e-5;
        for i in 0..2 {
            for j in 0..3 {
                let mut plus = leaf.clone();
                plus.set(i, j, leaf.get(i, j) + eps);
                let mut minus = leaf.clone();
                minus.set(i, j, leaf.get(i, j) - eps);
                let mut gp = Graph::new();
                let (_, lp) = build(&mut gp, plus);
                let mut gm = Graph::new();
                let (_, lm) = build(&mut gm, minus);
                let numeric = (gp.value(lp).get(0, 0) - gm.value(lm).get(0, 0)) / (2.0 * eps);
                assert!(
                    (numeric - analytic.get(i, j)).abs() < 1e-6 * (1.0 + numeric.abs()),
                    "({i},{j})"
                );
            }
        }
    }
}
