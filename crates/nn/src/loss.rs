//! Loss and accuracy metrics on plain slices.
//!
//! The graph-level MSE lives on [`crate::Graph::mse`]; these slice versions
//! are what the evaluation harness uses to score *test-set* predictions
//! (paper §4.1.2: "We use Mean Absolute Error and Mean Squared Error as
//! target evaluation metrics").

use env2vec_linalg::{Error, Result};

/// Mean squared error between predictions and targets.
///
/// Returns an error on length mismatch or empty input.
pub fn mse(pred: &[f64], target: &[f64]) -> Result<f64> {
    check(pred, target, "mse")?;
    let n = pred.len() as f64;
    Ok(pred
        .iter()
        .zip(target)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / n)
}

/// Mean absolute error between predictions and targets.
///
/// Returns an error on length mismatch or empty input.
pub fn mae(pred: &[f64], target: &[f64]) -> Result<f64> {
    check(pred, target, "mae")?;
    let n = pred.len() as f64;
    Ok(pred
        .iter()
        .zip(target)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / n)
}

/// Root mean squared error.
///
/// Returns an error on length mismatch or empty input.
pub fn rmse(pred: &[f64], target: &[f64]) -> Result<f64> {
    Ok(mse(pred, target)?.sqrt())
}

fn check(pred: &[f64], target: &[f64], op: &'static str) -> Result<()> {
    if pred.len() != target.len() {
        return Err(Error::ShapeMismatch {
            op: "loss",
            lhs: (pred.len(), 1),
            rhs: (target.len(), 1),
        });
    }
    if pred.is_empty() {
        return Err(Error::Empty { routine: op });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_and_mae_known_values() {
        let p = [1.0, 2.0, 3.0];
        let t = [1.0, 4.0, 2.0];
        assert!((mse(&p, &t).unwrap() - (0.0 + 4.0 + 1.0) / 3.0).abs() < 1e-12);
        assert!((mae(&p, &t).unwrap() - (0.0 + 2.0 + 1.0) / 3.0).abs() < 1e-12);
        assert!((rmse(&p, &t).unwrap() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn perfect_prediction_is_zero() {
        let p = [1.0, -2.0, 0.5];
        assert_eq!(mse(&p, &p).unwrap(), 0.0);
        assert_eq!(mae(&p, &p).unwrap(), 0.0);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(mse(&[1.0], &[1.0, 2.0]).is_err());
        assert!(mae(&[], &[]).is_err());
    }

    #[test]
    fn mse_dominated_by_outliers_vs_mae() {
        // One large error: MSE penalises quadratically, MAE linearly.
        let t = [0.0, 0.0, 0.0, 0.0];
        let p = [0.0, 0.0, 0.0, 10.0];
        assert_eq!(mae(&p, &t).unwrap(), 2.5);
        assert_eq!(mse(&p, &t).unwrap(), 25.0);
    }
}
