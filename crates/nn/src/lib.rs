//! Tape-based neural-network engine for the Env2Vec reproduction.
//!
//! The paper implements its deep-learning pipeline with Keras and TensorFlow
//! (§3, Figure 2). No comparably mature stack exists as an offline Rust
//! dependency, so this crate re-implements the small slice of a DL framework
//! that Env2Vec actually needs, from scratch:
//!
//! - [`graph`]: a define-by-run computation [`Graph`] with
//!   reverse-mode automatic differentiation over
//!   [`Matrix`](env2vec_linalg::Matrix) values. The op set (matmul,
//!   broadcast add, Hadamard product, sigmoid/tanh/ReLU, column
//!   concatenation, row sums, embedding row gather, dropout, mean) is
//!   exactly what the Env2Vec architecture and its neural baselines compose.
//! - [`params`]: named trainable parameters, bound into a fresh graph each
//!   step and updated from accumulated gradients.
//! - [`layers`]: `Dense`, `GruCell` (Cho et al. 2014, with the ReLU
//!   candidate activation the paper adopts in Appendix A), `Embedding`
//!   lookup tables with an `<unk>` row, and inverted dropout.
//! - [`init`]: Xavier/Glorot and He initialisers with seeded RNG.
//! - [`optim`]: SGD and Adam (Kingma & Ba 2014) — the paper trains with
//!   Adam on an MSE loss.
//! - [`loss`]: MSE/MAE on graphs and on plain slices.
//! - [`trainer`]: mini-batch shuffling and the early-stopping rule the
//!   paper uses for regularisation (Appendix A.1).
//!
//! Gradients are validated against central finite differences in the test
//! suite, so models built on this crate train with exact gradients just as
//! they would on TensorFlow.

#![warn(missing_docs)]

pub mod graph;
pub mod init;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod params;
pub mod profile;
pub mod trainer;

pub use graph::{Graph, NodeId};
pub use params::{Bound, ParamId, ParamSet};
