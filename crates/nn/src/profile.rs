//! Op-level tape profiler.
//!
//! When enabled, every [`Graph`](crate::graph::Graph) op records its
//! wall time, an estimated flop count, and an allocation estimate into a
//! process-global accumulator, attributed to the op kind, the pass
//! (forward or backward), and the **graph site** — the node's index on
//! the tape. Define-by-run training rebuilds the same tape every step,
//! so a site aggregates the same logical op across all steps and epochs.
//!
//! The profiler is strictly *observational*: it never touches values,
//! gradients, or RNG streams, so profiled and unprofiled runs produce
//! bit-identical models. When disabled (the default) the per-op cost is
//! one relaxed atomic load, so the tape stays at full speed.
//!
//! Exports:
//! - [`snapshot`] — raw per-site statistics, deterministically ordered;
//! - [`hot_op_table`] — a ranked text table of op kinds by total wall
//!   time (the "where did my training step go" view);
//! - [`collapsed_stacks`] — a flamegraph-ready collapsed-stack file
//!   (`inferno` / `flamegraph.pl` input: one `frame;frame;frame count`
//!   line per site, weighted by microseconds).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};
// Wall-clock reads live behind the opt-in profiler flag and only feed
// diagnostics, never model numerics.
use std::time::Instant;

/// Which half of the autodiff pass an op ran in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Tape construction (the op's value computation).
    Forward,
    /// The reverse sweep (the op's gradient computation).
    Backward,
}

impl Phase {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Forward => "forward",
            Phase::Backward => "backward",
        }
    }
}

/// Aggregated statistics for one `(phase, op, site)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct OpStat {
    /// Forward or backward.
    pub phase: Phase,
    /// Op kind, e.g. `MatMul`.
    pub op: &'static str,
    /// Tape index of the node (stable across steps for a fixed model).
    pub site: usize,
    /// Number of times the op ran.
    pub calls: u64,
    /// Total wall time in nanoseconds.
    pub wall_ns: u64,
    /// Estimated floating-point operations (see [`crate::graph`] cost
    /// model).
    pub flops: u64,
    /// Estimated matrix-buffer allocations.
    pub allocs: u64,
    /// Total output elements produced (an allocation-volume proxy).
    pub out_elems: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct SiteKey {
    phase: Phase,
    op: &'static str,
    site: usize,
}

#[derive(Debug, Default, Clone, Copy)]
struct Accum {
    calls: u64,
    wall_ns: u64,
    flops: u64,
    allocs: u64,
    out_elems: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn table() -> MutexGuard<'static, BTreeMap<SiteKey, Accum>> {
    static TABLE: std::sync::OnceLock<Mutex<BTreeMap<SiteKey, Accum>>> = std::sync::OnceLock::new();
    // Recover from poisoning: a panicking profiled thread must not take
    // the profiler (and every later op) down with it.
    TABLE
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Turns the profiler on (and implicitly starts attributing every op on
/// every thread).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the profiler off. Already-collected statistics are kept until
/// [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether ops are currently being attributed.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears all collected statistics.
pub fn reset() {
    table().clear();
}

/// A point-in-time copy of every `(phase, op, site)` cell, in
/// deterministic `(phase, op, site)` order.
pub fn snapshot() -> Vec<OpStat> {
    table()
        .iter()
        .map(|(k, a)| OpStat {
            phase: k.phase,
            op: k.op,
            site: k.site,
            calls: a.calls,
            wall_ns: a.wall_ns,
            flops: a.flops,
            allocs: a.allocs,
            out_elems: a.out_elems,
        })
        .collect()
}

/// RAII-free op timer: captures a start instant only when the profiler
/// is enabled, so the disabled cost is one relaxed atomic load.
#[derive(Debug)]
pub(crate) struct OpTimer(Option<Instant>);

impl OpTimer {
    /// Starts timing if the profiler is on.
    #[inline]
    pub(crate) fn start() -> Self {
        if is_enabled() {
            // envlint: allow(wall-clock) — opt-in profiler timing; reads
            // the clock for diagnostics only, never feeds results.
            OpTimer(Some(Instant::now()))
        } else {
            OpTimer(None)
        }
    }

    /// Whether this timer is live (profiler was on at start).
    #[inline]
    pub(crate) fn armed(&self) -> bool {
        self.0.is_some()
    }

    /// Records the elapsed time against `(phase, op, site)`.
    pub(crate) fn finish(self, phase: Phase, op: &'static str, site: usize, cost: OpCost) {
        let Some(t0) = self.0 else { return };
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let mut tab = table();
        let a = tab.entry(SiteKey { phase, op, site }).or_default();
        a.calls += 1;
        a.wall_ns += wall_ns;
        a.flops += cost.flops;
        a.allocs += cost.allocs;
        a.out_elems += cost.out_elems;
    }
}

/// Static cost estimate attached to one op execution.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct OpCost {
    pub(crate) flops: u64,
    pub(crate) allocs: u64,
    pub(crate) out_elems: u64,
}

/// One row of the aggregated (per op kind × phase) view.
#[derive(Debug, Clone)]
pub struct OpKindRow {
    /// Op kind, e.g. `MatMul`.
    pub op: &'static str,
    /// Forward or backward.
    pub phase: Phase,
    /// Total invocations.
    pub calls: u64,
    /// Total wall nanoseconds.
    pub wall_ns: u64,
    /// Total estimated flops.
    pub flops: u64,
    /// Total estimated allocations.
    pub allocs: u64,
    /// Number of distinct tape sites this kind appeared at.
    pub sites: usize,
}

/// Aggregates a snapshot by `(op, phase)`, ranked by total wall time
/// (descending; ties broken by name for determinism).
pub fn aggregate_by_kind(stats: &[OpStat]) -> Vec<OpKindRow> {
    let mut by_kind: BTreeMap<(&'static str, Phase), OpKindRow> = BTreeMap::new();
    for s in stats {
        let row = by_kind.entry((s.op, s.phase)).or_insert(OpKindRow {
            op: s.op,
            phase: s.phase,
            calls: 0,
            wall_ns: 0,
            flops: 0,
            allocs: 0,
            sites: 0,
        });
        row.calls += s.calls;
        row.wall_ns += s.wall_ns;
        row.flops += s.flops;
        row.allocs += s.allocs;
        row.sites += 1;
    }
    let mut rows: Vec<OpKindRow> = by_kind.into_values().collect();
    rows.sort_by(|a, b| {
        b.wall_ns
            .cmp(&a.wall_ns)
            .then(a.op.cmp(b.op))
            .then(a.phase.cmp(&b.phase))
    });
    rows
}

/// Renders the ranked hot-op table: the top `limit` `(op, phase)` rows
/// by total wall time, with call counts, mean latency, estimated
/// GFLOP/s, and share of the total profiled time.
pub fn hot_op_table(stats: &[OpStat], limit: usize) -> String {
    let rows = aggregate_by_kind(stats);
    let total_ns: u64 = rows.iter().map(|r| r.wall_ns).sum();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>8} {:>9} {:>10} {:>9} {:>9} {:>7} {:>6}\n",
        "op (phase)", "calls", "sites", "total ms", "mean us", "GFLOP", "GF/s", "share"
    ));
    for r in rows.iter().take(limit) {
        let ms = r.wall_ns as f64 / 1e6;
        let mean_us = if r.calls > 0 {
            r.wall_ns as f64 / 1e3 / r.calls as f64
        } else {
            0.0
        };
        let gflop = r.flops as f64 / 1e9;
        let gfps = if r.wall_ns > 0 {
            r.flops as f64 / r.wall_ns as f64
        } else {
            0.0
        };
        let share = if total_ns > 0 {
            100.0 * r.wall_ns as f64 / total_ns as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<16} {:>8} {:>9} {:>10.3} {:>9.2} {:>9.3} {:>7.2} {:>5.1}%\n",
            format!("{} ({})", r.op, r.phase.name()),
            r.calls,
            r.sites,
            ms,
            mean_us,
            gflop,
            gfps,
            share
        ));
    }
    out
}

/// Renders the snapshot as a flamegraph-ready collapsed-stack file: one
/// `env2vec;<phase>;<op>;site_<idx> <microseconds>` line per cell.
/// Feed it to `inferno-flamegraph` or `flamegraph.pl` directly.
pub fn collapsed_stacks(stats: &[OpStat]) -> String {
    let mut out = String::new();
    for s in stats {
        let us = s.wall_ns / 1_000;
        if us == 0 {
            continue;
        }
        out.push_str(&format!(
            "env2vec;{};{};site_{} {}\n",
            s.phase.name(),
            s.op,
            s.site,
            us
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global profiler is process-wide state shared with other tests;
    // these tests only assert on cells their own ops created (unique op
    // strings are impossible — ops are 'static — so they run the real
    // tape in graph::tests instead; here we exercise the pure renderers).

    fn stat(op: &'static str, phase: Phase, site: usize, wall_ns: u64, flops: u64) -> OpStat {
        OpStat {
            phase,
            op,
            site,
            calls: 2,
            wall_ns,
            flops,
            allocs: 2,
            out_elems: 8,
        }
    }

    #[test]
    fn aggregate_ranks_by_wall_time() {
        let stats = vec![
            stat("MatMul", Phase::Forward, 3, 5_000, 4_000),
            stat("MatMul", Phase::Forward, 7, 6_000, 4_000),
            stat("Sigmoid", Phase::Forward, 4, 2_000, 100),
            stat("MatMul", Phase::Backward, 3, 20_000, 8_000),
        ];
        let rows = aggregate_by_kind(&stats);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].op, "MatMul");
        assert_eq!(rows[0].phase, Phase::Backward);
        assert_eq!(rows[1].op, "MatMul");
        assert_eq!(rows[1].phase, Phase::Forward);
        assert_eq!(rows[1].calls, 4);
        assert_eq!(rows[1].sites, 2);
        assert_eq!(rows[1].wall_ns, 11_000);
        assert_eq!(rows[2].op, "Sigmoid");
    }

    #[test]
    fn hot_op_table_renders_and_ranks() {
        let stats = vec![
            stat("MatMul", Phase::Forward, 1, 9_000_000, 1_000_000),
            stat("Tanh", Phase::Forward, 2, 1_000_000, 1_000),
        ];
        let t = hot_op_table(&stats, 10);
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].contains("op (phase)"));
        assert!(lines[1].contains("MatMul (forward)"));
        assert!(lines[2].contains("Tanh (forward)"));
        // share column sums to 100.
        assert!(lines[1].contains("90.0%"));
        assert!(lines[2].contains("10.0%"));
    }

    #[test]
    fn collapsed_stacks_are_flamegraph_shaped() {
        let stats = vec![
            stat("MatMul", Phase::Forward, 5, 3_000_000, 0),
            stat("Relu", Phase::Backward, 9, 500, 0), // < 1 us: dropped
        ];
        let c = collapsed_stacks(&stats);
        assert_eq!(c, "env2vec;forward;MatMul;site_5 3000\n");
        for line in c.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("weight separator");
            assert!(stack.starts_with("env2vec;"));
            assert!(count.parse::<u64>().is_ok());
        }
    }

    #[test]
    fn disabled_timer_is_inert() {
        disable();
        let t = OpTimer::start();
        assert!(!t.armed());
        // Finishing an unarmed timer must not create cells.
        let before = snapshot().len();
        t.finish(Phase::Forward, "MatMul", 0, OpCost::default());
        assert_eq!(snapshot().len(), before);
    }
}
