//! Named trainable parameters.
//!
//! A [`ParamSet`] owns the persistent weights of a model. Each training
//! step *binds* the set into a fresh [`Graph`] — producing a
//! [`Bound`] mapping of parameter to leaf node — runs forward/backward, and
//! then reads the leaf gradients back out for the optimiser.
//!
//! The paper stores its trained model as "a file containing the environment
//! embeddings and the DL model" (§6); [`ParamSet`] round-trips through
//! serde for the same purpose.

use env2vec_linalg::{Error, Matrix, Result};
use serde::{Deserialize, Serialize};

use crate::graph::{Graph, NodeId};

/// Identifier of a parameter within one [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(usize);

impl ParamId {
    /// Raw index of the parameter.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A collection of named trainable matrices.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParamSet {
    names: Vec<String>,
    values: Vec<Matrix>,
}

impl ParamSet {
    /// Creates an empty parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter, returning its id.
    ///
    /// Names are for diagnostics and serialisation sanity; duplicates are
    /// rejected so serialised models stay unambiguous.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> Result<ParamId> {
        let name = name.into();
        if self.names.contains(&name) {
            return Err(Error::InvalidArgument {
                what: "duplicate parameter name",
            });
        }
        self.names.push(name);
        self.values.push(value);
        Ok(ParamId(self.values.len() - 1))
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_weights(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    /// Immutable view of a parameter's current value.
    ///
    /// # Panics
    ///
    /// Panics when `id` does not belong to this set.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable view of a parameter's current value.
    ///
    /// # Panics
    ///
    /// Panics when `id` does not belong to this set.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// Name of a parameter.
    ///
    /// # Panics
    ///
    /// Panics when `id` does not belong to this set.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Looks a parameter up by name.
    pub fn find(&self, name: &str) -> Option<ParamId> {
        self.names.iter().position(|n| n == name).map(ParamId)
    }

    /// Iterates over `(id, name, value)` triples in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Matrix)> {
        self.names
            .iter()
            .zip(&self.values)
            .enumerate()
            .map(|(i, (n, v))| (ParamId(i), n.as_str(), v))
    }

    /// Binds every parameter into `graph` as a leaf, returning the mapping.
    /// The leaf copies draw their storage from the graph's scratch arena,
    /// so re-binding into a [`Graph::reset`] graph allocates nothing once
    /// the arena is warm.
    pub fn bind(&self, graph: &mut Graph) -> Bound {
        let ids = self.values.iter().map(|v| graph.leaf_from(v)).collect();
        Bound { ids }
    }

    /// Collects the gradient of every parameter from a graph after
    /// [`Graph::backward`]; parameters the loss does not reach get zeros.
    ///
    /// Returns an error when `bound` does not match this set's size.
    pub fn gradients(&self, graph: &Graph, bound: &Bound) -> Result<Vec<Matrix>> {
        if bound.ids.len() != self.values.len() {
            return Err(Error::ShapeMismatch {
                op: "gradients",
                lhs: (self.values.len(), 1),
                rhs: (bound.ids.len(), 1),
            });
        }
        Ok(self
            .values
            .iter()
            .zip(&bound.ids)
            .map(|(v, &id)| {
                graph
                    .grad(id)
                    .cloned()
                    .unwrap_or_else(|| Matrix::zeros(v.rows(), v.cols()))
            })
            .collect())
    }

    /// Serialises the set to JSON (the model file format of this repo).
    pub fn to_json(&self) -> String {
        // envlint: allow(no-panic) — the vendored serializer has no error
        // paths for these plain data structures.
        serde_json::to_string(self).expect("ParamSet serialises infallibly")
    }

    /// Deserialises a set previously written by [`ParamSet::to_json`].
    ///
    /// Returns an error when the JSON is malformed.
    pub fn from_json(s: &str) -> Result<Self> {
        serde_json::from_str(s).map_err(|_| Error::InvalidArgument {
            what: "malformed ParamSet JSON",
        })
    }
}

/// Parameter-to-leaf mapping produced by [`ParamSet::bind`].
#[derive(Debug, Clone)]
pub struct Bound {
    ids: Vec<NodeId>,
}

impl Bound {
    /// Graph node bound to the given parameter.
    ///
    /// # Panics
    ///
    /// Panics when `id` does not belong to the originating set.
    pub fn node(&self, id: ParamId) -> NodeId {
        self.ids[id.0]
    }

    /// Number of bound parameters.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no parameters are bound.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_find_and_duplicate_rejection() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Matrix::zeros(2, 3)).unwrap();
        assert_eq!(ps.name(w), "w");
        assert_eq!(ps.find("w"), Some(w));
        assert_eq!(ps.find("missing"), None);
        assert!(ps.add("w", Matrix::zeros(1, 1)).is_err());
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.num_weights(), 6);
    }

    #[test]
    fn bind_and_collect_gradients() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Matrix::filled(1, 2, 2.0)).unwrap();
        let unused = ps.add("unused", Matrix::zeros(3, 3)).unwrap();

        let mut g = Graph::new();
        let bound = ps.bind(&mut g);
        let sq = g.square(bound.node(w));
        let loss = g.mean_all(sq).unwrap();
        g.backward(loss).unwrap();

        let grads = ps.gradients(&g, &bound).unwrap();
        // d/dw mean(w²) = 2w / n = 2·2/2 = 2.
        assert_eq!(grads[w.index()].as_slice(), &[2.0, 2.0]);
        // Unused parameter gets explicit zeros.
        assert_eq!(grads[unused.index()], Matrix::zeros(3, 3));
    }

    #[test]
    fn json_round_trip() {
        let mut ps = ParamSet::new();
        ps.add("a", Matrix::from_vec(1, 2, vec![1.5, -2.5]).unwrap())
            .unwrap();
        ps.add("b", Matrix::identity(2)).unwrap();
        let json = ps.to_json();
        let back = ParamSet::from_json(&json).unwrap();
        assert_eq!(back.len(), 2);
        let a = back.find("a").unwrap();
        assert_eq!(back.value(a).as_slice(), &[1.5, -2.5]);
        assert!(ParamSet::from_json("not json").is_err());
    }

    #[test]
    fn iter_preserves_order() {
        let mut ps = ParamSet::new();
        ps.add("first", Matrix::zeros(1, 1)).unwrap();
        ps.add("second", Matrix::zeros(1, 1)).unwrap();
        let names: Vec<&str> = ps.iter().map(|(_, n, _)| n).collect();
        assert_eq!(names, vec!["first", "second"]);
    }

    #[test]
    fn gradients_rejects_foreign_bound() {
        let mut ps = ParamSet::new();
        ps.add("w", Matrix::zeros(1, 1)).unwrap();
        let g = Graph::new();
        let foreign = Bound { ids: vec![] };
        assert!(ps.gradients(&g, &foreign).is_err());
    }
}
