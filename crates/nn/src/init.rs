//! Weight initialisers.
//!
//! Xavier/Glorot uniform for sigmoid/tanh layers, He for ReLU layers, and a
//! small-uniform initialiser for embedding tables (the paper initialises
//! the dimension-10 embeddings randomly before training, §3.1). All take an
//! explicit RNG so experiments are reproducible run-to-run.

use env2vec_linalg::Matrix;
use rand::Rng;

/// Xavier/Glorot uniform initialisation: `U(-l, l)` with
/// `l = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-limit..limit))
}

/// He (Kaiming) uniform initialisation for ReLU layers: `U(-l, l)` with
/// `l = sqrt(6 / fan_in)`.
pub fn he_uniform(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Matrix {
    let limit = (6.0 / fan_in as f64).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-limit..limit))
}

/// Small uniform initialisation `U(-scale, scale)`, used for embedding
/// tables.
pub fn uniform(rng: &mut impl Rng, rows: usize, cols: usize, scale: f64) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-scale..scale))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_limit_and_shape() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = xavier_uniform(&mut rng, 8, 4);
        assert_eq!(w.shape(), (8, 4));
        let limit = (6.0 / 12.0f64).sqrt();
        assert!(w.as_slice().iter().all(|x| x.abs() < limit));
    }

    #[test]
    fn he_limit_wider_than_xavier_for_same_fans() {
        let mut rng = StdRng::seed_from_u64(7);
        let _ = rng.gen::<f64>();
        let he_limit = (6.0 / 8.0f64).sqrt();
        let w = he_uniform(&mut rng, 8, 4);
        assert!(w.as_slice().iter().all(|x| x.abs() < he_limit));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = xavier_uniform(&mut StdRng::seed_from_u64(42), 3, 3);
        let b = xavier_uniform(&mut StdRng::seed_from_u64(42), 3, 3);
        assert_eq!(a, b);
        let c = xavier_uniform(&mut StdRng::seed_from_u64(43), 3, 3);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_scale_bounds() {
        let w = uniform(&mut StdRng::seed_from_u64(1), 5, 10, 0.05);
        assert!(w.as_slice().iter().all(|x| x.abs() < 0.05));
        // Not all zero: the initialiser must actually randomise.
        assert!(w.as_slice().iter().any(|&x| x != 0.0));
    }
}
