//! Define-by-run computation graph with reverse-mode autodiff.
//!
//! A [`Graph`] is a tape: every operation appends a node holding its forward
//! value and the identity of its inputs. Because an op can only reference
//! nodes created before it, the insertion order is already a topological
//! order, and [`Graph::backward`] is a single reverse sweep accumulating
//! gradients.
//!
//! Graphs are cheap and short-lived: a training step builds one, runs
//! backward, pulls out the parameter gradients, and drops it.

use env2vec_linalg::{Error, Matrix, Result};

use crate::profile::{OpCost, OpTimer, Phase};

/// Identifier of a node within one [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// Raw index of the node in its graph's tape.
    pub fn index(self) -> usize {
        self.0
    }
}

/// The operation that produced a node.
#[derive(Debug, Clone)]
enum Op {
    /// A leaf value (input or bound parameter).
    Leaf,
    /// Matrix product `a * b`.
    MatMul(NodeId, NodeId),
    /// Element-wise sum of two same-shape nodes.
    Add(NodeId, NodeId),
    /// Adds a `1 x C` row to every row of an `R x C` node.
    AddRowBroadcast(NodeId, NodeId),
    /// Element-wise difference `a - b`.
    Sub(NodeId, NodeId),
    /// Element-wise (Hadamard) product.
    Mul(NodeId, NodeId),
    /// Scalar multiple `alpha * a`.
    Scale(NodeId, f64),
    /// Element-wise `a + alpha`.
    AddScalar(NodeId),
    /// Element-wise logistic sigmoid.
    Sigmoid(NodeId),
    /// Element-wise hyperbolic tangent.
    Tanh(NodeId),
    /// Element-wise rectified linear unit.
    Relu(NodeId),
    /// Element-wise square.
    Square(NodeId),
    /// Column-wise concatenation of same-row-count nodes.
    ConcatCols(Vec<NodeId>),
    /// Gathers the listed rows of a table node (embedding lookup).
    GatherRows { table: NodeId, indices: Vec<usize> },
    /// Sums each row to produce an `R x 1` column.
    RowSums(NodeId),
    /// Mean over all elements, producing a `1 x 1` scalar node.
    MeanAll(NodeId),
    /// Element-wise product with a fixed (inverted-dropout) mask.
    DropoutMask { input: NodeId, mask: Matrix },
    /// Row-wise softmax (used by attention pooling).
    RowSoftmax(NodeId),
    /// Contiguous column slice `[start, start + len)`.
    SliceCols {
        input: NodeId,
        start: usize,
        len: usize,
    },
}

impl Op {
    /// The op's name for profiler attribution and sanitizer diagnostics.
    fn name(&self) -> &'static str {
        match self {
            Op::Leaf => "Leaf",
            Op::MatMul(..) => "MatMul",
            Op::Add(..) => "Add",
            Op::AddRowBroadcast(..) => "AddRowBroadcast",
            Op::Sub(..) => "Sub",
            Op::Mul(..) => "Mul",
            Op::Scale(..) => "Scale",
            Op::AddScalar(..) => "AddScalar",
            Op::Sigmoid(..) => "Sigmoid",
            Op::Tanh(..) => "Tanh",
            Op::Relu(..) => "Relu",
            Op::Square(..) => "Square",
            Op::ConcatCols(..) => "ConcatCols",
            Op::GatherRows { .. } => "GatherRows",
            Op::RowSums(..) => "RowSums",
            Op::MeanAll(..) => "MeanAll",
            Op::DropoutMask { .. } => "DropoutMask",
            Op::RowSoftmax(..) => "RowSoftmax",
            Op::SliceCols { .. } => "SliceCols",
        }
    }
}

/// One tape entry.
#[derive(Debug, Clone)]
struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
}

/// A define-by-run computation tape.
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    /// Scratch arena: spent value/gradient buffers harvested by
    /// [`Graph::reset`], handed back out to ops that build fresh
    /// matrices. After the first step of a training loop that reuses its
    /// graph, forward MatMuls, backward MatMuls and gradient clones all
    /// draw from here instead of the allocator (`--profile-ops` alloc
    /// counters measure exactly this).
    arena: Vec<Vec<f64>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Clears the tape for the next step while keeping every node's
    /// value and gradient storage in the scratch arena, so a training
    /// loop that holds one `Graph` across steps stops allocating once
    /// warm.
    pub fn reset(&mut self) {
        for node in self.nodes.drain(..) {
            let buf = node.value.into_vec();
            if buf.capacity() > 0 {
                self.arena.push(buf);
            }
            if let Some(grad) = node.grad {
                let buf = grad.into_vec();
                if buf.capacity() > 0 {
                    self.arena.push(buf);
                }
            }
        }
        // Backstop: a steady-state step takes roughly as many buffers as
        // reset harvests, but an unusually large step (e.g. a one-off
        // validation pass) must not leave its high-water mark pinned in
        // the pool forever.
        const ARENA_CAP: usize = 1024;
        self.arena.truncate(ARENA_CAP);
    }

    /// Pops a spent buffer from the scratch arena (empty when the arena
    /// is cold; the `*_with` constructors resize as needed).
    fn take_buf(&mut self) -> Vec<f64> {
        self.arena.pop().unwrap_or_default()
    }

    /// Returns a spent buffer to the scratch arena.
    fn give_buf(&mut self, buf: Vec<f64>) {
        if buf.capacity() > 0 {
            self.arena.push(buf);
        }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Matrix, op: Op, timer: OpTimer) -> NodeId {
        #[cfg(feature = "numeric-sanitizer")]
        assert!(
            value.is_finite(),
            "numeric-sanitizer: non-finite forward value out of op `{}` (node {})",
            op.name(),
            self.nodes.len()
        );
        let site = self.nodes.len();
        if timer.armed() {
            let name = op.name();
            let cost = self.forward_cost(&op, &value);
            self.nodes.push(Node {
                value,
                grad: None,
                op,
            });
            timer.finish(Phase::Forward, name, site, cost);
        } else {
            self.nodes.push(Node {
                value,
                grad: None,
                op,
            });
        }
        NodeId(site)
    }

    /// Estimated flop/allocation cost of one forward op execution. These
    /// are static estimates from the op's shapes (MatMul `2·m·k·n`,
    /// transcendentals a small multiple of the element count, pure data
    /// movement zero), not measurements.
    fn forward_cost(&self, op: &Op, out: &Matrix) -> OpCost {
        let n = out.len() as u64;
        let (flops, allocs) = match op {
            Op::Leaf => (0, 0),
            Op::MatMul(a, b) => {
                let av = &self.nodes[a.0].value;
                let cols = self.nodes[b.0].value.cols();
                ((2 * av.rows() * av.cols() * cols) as u64, 1)
            }
            Op::Add(..)
            | Op::AddRowBroadcast(..)
            | Op::Sub(..)
            | Op::Mul(..)
            | Op::Scale(..)
            | Op::AddScalar(..)
            | Op::Relu(..)
            | Op::Square(..)
            | Op::DropoutMask { .. } => (n, 1),
            // exp-based activations: a few flops per element.
            Op::Sigmoid(..) | Op::Tanh(..) => (4 * n, 1),
            Op::RowSums(a) | Op::MeanAll(a) => (self.nodes[a.0].value.len() as u64, 1),
            // max + exp + normalise per element.
            Op::RowSoftmax(..) => (5 * n, 1),
            // Pure data movement.
            Op::ConcatCols(parts) => (0, parts.len() as u64),
            Op::GatherRows { .. } | Op::SliceCols { .. } => (0, 1),
        };
        OpCost {
            flops,
            allocs,
            out_elems: n,
        }
    }

    /// Estimated cost of one backward step through `op`, given the
    /// output gradient flowing into it.
    fn backward_cost(&self, op: &Op, out_grad: &Matrix) -> OpCost {
        let n = out_grad.len() as u64;
        let (flops, allocs) = match op {
            Op::Leaf => (0, 0),
            // dA = dY·Bᵀ (2·m·n·k) and dB = Aᵀ·dY (2·k·m·n) through the
            // transposed GEMM entry points: `4·|dY|·k` flops total and
            // two output buffers — no transposed copies.
            Op::MatMul(_, b) => {
                let k = self.nodes[b.0].value.rows() as u64;
                (4 * n * k, 2)
            }
            Op::Add(..) | Op::Sub(..) => (n, 2),
            Op::AddRowBroadcast(..) | Op::Mul(..) => (2 * n, 2),
            Op::Scale(..) | Op::AddScalar(..) => (n, 1),
            // Local derivative from the cached activation (2 flops per
            // element) plus the Hadamard with the output gradient.
            Op::Sigmoid(..) | Op::Tanh(..) => (3 * n, 2),
            Op::Relu(..) | Op::Square(..) | Op::DropoutMask { .. } => (2 * n, 2),
            Op::ConcatCols(parts) => (0, parts.len() as u64),
            Op::GatherRows { .. } | Op::SliceCols { .. } => (n, 1),
            Op::RowSums(a) | Op::MeanAll(a) => (self.nodes[a.0].value.len() as u64, 1),
            Op::RowSoftmax(..) => (4 * n, 1),
        };
        OpCost {
            flops,
            allocs,
            out_elems: 0,
        }
    }

    /// Adds a leaf node holding `value` (an input or a bound parameter).
    pub fn leaf(&mut self, value: Matrix) -> NodeId {
        let timer = OpTimer::start();
        self.push(value, Op::Leaf, timer)
    }

    /// Adds a leaf node holding a copy of `value`, drawing the copy's
    /// storage from the scratch arena (the zero-allocation counterpart
    /// of `leaf(value.clone())` for graphs reused via [`Graph::reset`]).
    pub fn leaf_from(&mut self, value: &Matrix) -> NodeId {
        let timer = OpTimer::start();
        let buf = self.take_buf();
        self.push(value.clone_with(buf), Op::Leaf, timer)
    }

    /// Forward value of a node.
    ///
    /// # Panics
    ///
    /// Panics when `id` does not belong to this graph.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// Gradient of the loss with respect to a node, if backward has reached
    /// it.
    ///
    /// # Panics
    ///
    /// Panics when `id` does not belong to this graph.
    pub fn grad(&self, id: NodeId) -> Option<&Matrix> {
        self.nodes[id.0].grad.as_ref()
    }

    /// Matrix product node.
    ///
    /// Returns an error on inner-dimension mismatch.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> Result<NodeId> {
        let timer = OpTimer::start();
        let buf = self.take_buf();
        let v = self.nodes[a.0]
            .value
            .matmul_with(&self.nodes[b.0].value, buf)?;
        Ok(self.push(v, Op::MatMul(a, b), timer))
    }

    /// Element-wise sum node.
    ///
    /// Returns an error on shape mismatch.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> Result<NodeId> {
        let timer = OpTimer::start();
        let buf = self.take_buf();
        let v = self.nodes[a.0]
            .value
            .add_with(&self.nodes[b.0].value, buf)?;
        Ok(self.push(v, Op::Add(a, b), timer))
    }

    /// Adds the `1 x C` row `bias` to every row of `a`.
    ///
    /// Returns an error when `bias` is not a single row of matching width.
    pub fn add_row_broadcast(&mut self, a: NodeId, bias: NodeId) -> Result<NodeId> {
        let timer = OpTimer::start();
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[bias.0].value;
        if bv.rows() != 1 || bv.cols() != av.cols() {
            return Err(Error::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: av.shape(),
                rhs: bv.shape(),
            });
        }
        let buf = self.take_buf();
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[bias.0].value;
        let mut v = av.clone_with(buf);
        for i in 0..v.rows() {
            for (x, &b) in v.row_mut(i).iter_mut().zip(bv.row(0)) {
                *x += b;
            }
        }
        Ok(self.push(v, Op::AddRowBroadcast(a, bias), timer))
    }

    /// Element-wise difference node.
    ///
    /// Returns an error on shape mismatch.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> Result<NodeId> {
        let timer = OpTimer::start();
        let buf = self.take_buf();
        let v = self.nodes[a.0]
            .value
            .sub_with(&self.nodes[b.0].value, buf)?;
        Ok(self.push(v, Op::Sub(a, b), timer))
    }

    /// Element-wise product node.
    ///
    /// Returns an error on shape mismatch.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> Result<NodeId> {
        let timer = OpTimer::start();
        let buf = self.take_buf();
        let v = self.nodes[a.0]
            .value
            .hadamard_with(&self.nodes[b.0].value, buf)?;
        Ok(self.push(v, Op::Mul(a, b), timer))
    }

    /// Scalar multiple node.
    pub fn scale(&mut self, a: NodeId, alpha: f64) -> NodeId {
        let timer = OpTimer::start();
        let buf = self.take_buf();
        let v = self.nodes[a.0].value.scale_with(alpha, buf);
        self.push(v, Op::Scale(a, alpha), timer)
    }

    /// Element-wise `a + alpha` node.
    pub fn add_scalar(&mut self, a: NodeId, alpha: f64) -> NodeId {
        let timer = OpTimer::start();
        let buf = self.take_buf();
        let v = self.nodes[a.0].value.map_with(buf, |x| x + alpha);
        self.push(v, Op::AddScalar(a), timer)
    }

    /// `1 - a`, the complement used by the GRU interpolation gate.
    pub fn one_minus(&mut self, a: NodeId) -> NodeId {
        let neg = self.scale(a, -1.0);
        self.add_scalar(neg, 1.0)
    }

    /// Logistic-sigmoid node.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let timer = OpTimer::start();
        let buf = self.take_buf();
        let v = self.nodes[a.0]
            .value
            .map_with(buf, |x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a), timer)
    }

    /// Hyperbolic-tangent node.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let timer = OpTimer::start();
        let buf = self.take_buf();
        let v = self.nodes[a.0].value.map_with(buf, f64::tanh);
        self.push(v, Op::Tanh(a), timer)
    }

    /// ReLU node.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let timer = OpTimer::start();
        let buf = self.take_buf();
        let v = self.nodes[a.0].value.map_with(buf, |x| x.max(0.0));
        self.push(v, Op::Relu(a), timer)
    }

    /// Element-wise square node.
    pub fn square(&mut self, a: NodeId) -> NodeId {
        let timer = OpTimer::start();
        let buf = self.take_buf();
        let v = self.nodes[a.0].value.map_with(buf, |x| x * x);
        self.push(v, Op::Square(a), timer)
    }

    /// Column-wise concatenation of nodes with equal row counts.
    ///
    /// Returns an error for an empty list or mismatched row counts.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> Result<NodeId> {
        let timer = OpTimer::start();
        if parts.is_empty() {
            return Err(Error::Empty {
                routine: "concat_cols",
            });
        }
        let rows = self.nodes[parts[0].0].value.rows();
        let mut cols = 0;
        for &p in parts {
            let pv = &self.nodes[p.0].value;
            if pv.rows() != rows {
                return Err(Error::ShapeMismatch {
                    op: "concat_cols",
                    lhs: (rows, cols),
                    rhs: pv.shape(),
                });
            }
            cols += pv.cols();
        }
        // Single gather into one arena buffer instead of the old
        // clone-then-repeated-hstack cascade (quadratic allocation).
        let mut buf = self.take_buf();
        buf.clear();
        buf.reserve(rows * cols);
        for r in 0..rows {
            for &p in parts {
                buf.extend_from_slice(self.nodes[p.0].value.row(r));
            }
        }
        let v = Matrix::from_vec(rows, cols, buf)?;
        Ok(self.push(v, Op::ConcatCols(parts.to_vec()), timer))
    }

    /// Gathers `indices` rows of `table` (an embedding lookup).
    ///
    /// Returns an error when an index is out of range.
    pub fn gather_rows(&mut self, table: NodeId, indices: &[usize]) -> Result<NodeId> {
        let timer = OpTimer::start();
        let buf = self.take_buf();
        let v = self.nodes[table.0].value.select_rows_with(indices, buf)?;
        Ok(self.push(
            v,
            Op::GatherRows {
                table,
                indices: indices.to_vec(),
            },
            timer,
        ))
    }

    /// Sums each row, producing an `R x 1` node — the `Σ v_d ⊙ C`
    /// reduction of the paper's Equation 2.
    pub fn row_sums(&mut self, a: NodeId) -> NodeId {
        let timer = OpTimer::start();
        let buf = self.take_buf();
        let av = &self.nodes[a.0].value;
        let v = Matrix::from_fn_with(av.rows(), 1, buf, |i, _| av.row(i).iter().sum());
        self.push(v, Op::RowSums(a), timer)
    }

    /// Mean over all elements, producing a `1 x 1` scalar node.
    ///
    /// Returns an error for an empty input.
    pub fn mean_all(&mut self, a: NodeId) -> Result<NodeId> {
        let timer = OpTimer::start();
        let av = &self.nodes[a.0].value;
        if av.is_empty() {
            return Err(Error::Empty {
                routine: "mean_all",
            });
        }
        let v = Matrix::filled(1, 1, av.sum() / av.len() as f64);
        Ok(self.push(v, Op::MeanAll(a), timer))
    }

    /// Applies a precomputed inverted-dropout mask (entries `0` or
    /// `1 / keep_prob`).
    ///
    /// Returns an error on shape mismatch. Callers build masks with
    /// [`crate::layers::dropout_mask`]; at inference time no mask op is
    /// recorded at all.
    pub fn dropout(&mut self, a: NodeId, mask: Matrix) -> Result<NodeId> {
        let timer = OpTimer::start();
        let buf = self.take_buf();
        let v = self.nodes[a.0].value.hadamard_with(&mask, buf)?;
        Ok(self.push(v, Op::DropoutMask { input: a, mask }, timer))
    }

    /// Contiguous column slice `[start, start + len)` of a node.
    ///
    /// Returns an error when the slice exceeds the node's width.
    pub fn slice_cols(&mut self, a: NodeId, start: usize, len: usize) -> Result<NodeId> {
        let timer = OpTimer::start();
        let av = &self.nodes[a.0].value;
        if start + len > av.cols() || len == 0 {
            return Err(Error::InvalidArgument {
                what: "slice_cols out of range or empty",
            });
        }
        let buf = self.take_buf();
        let av = &self.nodes[a.0].value;
        let v = Matrix::from_fn_with(av.rows(), len, buf, |i, j| av.get(i, start + j));
        Ok(self.push(
            v,
            Op::SliceCols {
                input: a,
                start,
                len,
            },
            timer,
        ))
    }

    /// Row-wise softmax node: each row becomes a probability
    /// distribution. Numerically stabilised by subtracting the row max.
    pub fn row_softmax(&mut self, a: NodeId) -> NodeId {
        let timer = OpTimer::start();
        let buf = self.take_buf();
        let av = &self.nodes[a.0].value;
        let mut v = av.clone_with(buf);
        for i in 0..v.rows() {
            let row = v.row_mut(i);
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
        self.push(v, Op::RowSoftmax(a), timer)
    }

    /// Convenience: mean-squared-error node between prediction and target.
    ///
    /// Returns an error on shape mismatch.
    pub fn mse(&mut self, pred: NodeId, target: NodeId) -> Result<NodeId> {
        let diff = self.sub(pred, target)?;
        let sq = self.square(diff);
        self.mean_all(sq)
    }

    /// Runs reverse-mode differentiation from `loss`, accumulating
    /// gradients into every reachable node.
    ///
    /// Returns an error when `loss` is not a `1 x 1` scalar node.
    pub fn backward(&mut self, loss: NodeId) -> Result<()> {
        if self.nodes[loss.0].value.shape() != (1, 1) {
            return Err(Error::InvalidArgument {
                what: "backward requires a 1x1 scalar loss node",
            });
        }
        for i in 0..self.nodes.len() {
            if let Some(g) = self.nodes[i].grad.take() {
                self.give_buf(g.into_vec());
            }
        }
        self.nodes[loss.0].grad = Some(Matrix::filled(1, 1, 1.0));

        for i in (0..=loss.0).rev() {
            // Take the gradient out of the tape for the duration of this
            // node's step (restored below) — ops only read it, so no
            // per-node clone is needed.
            let Some(out_grad) = self.nodes[i].grad.take() else {
                continue;
            };
            // Clone the op descriptor to release the borrow on self.nodes.
            let op = self.nodes[i].op.clone();
            let timer = OpTimer::start();
            let profiled = if timer.armed() {
                Some((op.name(), self.backward_cost(&op, &out_grad)))
            } else {
                None
            };
            match op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    // dA = dY·Bᵀ and dB = Aᵀ·dY via the transposed GEMM
                    // entry points: no transposed copy of A or B is ever
                    // materialised, and the results are bit-identical to
                    // the transpose-then-matmul formulation.
                    let buf = self.take_buf();
                    let da = out_grad.matmul_nt_with(&self.nodes[b.0].value, buf)?;
                    let buf = self.take_buf();
                    let db = self.nodes[a.0].value.matmul_tn_with(&out_grad, buf)?;
                    self.accumulate(a, da)?;
                    self.accumulate(b, db)?;
                }
                Op::Add(a, b) => {
                    let g = self.pooled_clone(&out_grad);
                    self.accumulate(a, g)?;
                    let g = self.pooled_clone(&out_grad);
                    self.accumulate(b, g)?;
                }
                Op::AddRowBroadcast(a, bias) => {
                    // Bias gradient is the column-sum of the output grad.
                    let cols = out_grad.cols();
                    let buf = self.take_buf();
                    let mut bias_grad = Matrix::zeros_with(1, cols, buf);
                    for r in 0..out_grad.rows() {
                        for (bg, &g) in bias_grad.row_mut(0).iter_mut().zip(out_grad.row(r)) {
                            *bg += g;
                        }
                    }
                    let g = self.pooled_clone(&out_grad);
                    self.accumulate(a, g)?;
                    self.accumulate(bias, bias_grad)?;
                }
                Op::Sub(a, b) => {
                    let g = self.pooled_clone(&out_grad);
                    self.accumulate(a, g)?;
                    let buf = self.take_buf();
                    let g = out_grad.scale_with(-1.0, buf);
                    self.accumulate(b, g)?;
                }
                Op::Mul(a, b) => {
                    let buf = self.take_buf();
                    let da = out_grad.hadamard_with(&self.nodes[b.0].value, buf)?;
                    let buf = self.take_buf();
                    let db = out_grad.hadamard_with(&self.nodes[a.0].value, buf)?;
                    self.accumulate(a, da)?;
                    self.accumulate(b, db)?;
                }
                Op::Scale(a, alpha) => {
                    let buf = self.take_buf();
                    let g = out_grad.scale_with(alpha, buf);
                    self.accumulate(a, g)?;
                }
                Op::AddScalar(a) => {
                    let g = self.pooled_clone(&out_grad);
                    self.accumulate(a, g)?;
                }
                Op::Sigmoid(a) => {
                    // dσ = σ (1 - σ), where σ is this node's forward value.
                    let buf = self.take_buf();
                    let local = self.nodes[i].value.map_with(buf, |x| x * (1.0 - x));
                    let buf = self.take_buf();
                    let g = out_grad.hadamard_with(&local, buf)?;
                    self.give_buf(local.into_vec());
                    self.accumulate(a, g)?;
                }
                Op::Tanh(a) => {
                    let buf = self.take_buf();
                    let local = self.nodes[i].value.map_with(buf, |x| 1.0 - x * x);
                    let buf = self.take_buf();
                    let g = out_grad.hadamard_with(&local, buf)?;
                    self.give_buf(local.into_vec());
                    self.accumulate(a, g)?;
                }
                Op::Relu(a) => {
                    let buf = self.take_buf();
                    let local =
                        self.nodes[a.0]
                            .value
                            .map_with(buf, |x| if x > 0.0 { 1.0 } else { 0.0 });
                    let buf = self.take_buf();
                    let g = out_grad.hadamard_with(&local, buf)?;
                    self.give_buf(local.into_vec());
                    self.accumulate(a, g)?;
                }
                Op::Square(a) => {
                    let buf = self.take_buf();
                    let local = self.nodes[a.0].value.scale_with(2.0, buf);
                    let buf = self.take_buf();
                    let g = out_grad.hadamard_with(&local, buf)?;
                    self.give_buf(local.into_vec());
                    self.accumulate(a, g)?;
                }
                Op::ConcatCols(parts) => {
                    let mut offset = 0;
                    for p in parts {
                        let w = self.nodes[p.0].value.cols();
                        let rows = out_grad.rows();
                        let buf = self.take_buf();
                        let slice =
                            Matrix::from_fn_with(rows, w, buf, |r, c| out_grad.get(r, offset + c));
                        self.accumulate(p, slice)?;
                        offset += w;
                    }
                }
                Op::GatherRows { table, indices } => {
                    let tv = self.nodes[table.0].value.shape();
                    let buf = self.take_buf();
                    let mut tg = Matrix::zeros_with(tv.0, tv.1, buf);
                    for (out_row, &idx) in indices.iter().enumerate() {
                        for (g, &og) in tg.row_mut(idx).iter_mut().zip(out_grad.row(out_row)) {
                            *g += og;
                        }
                    }
                    self.accumulate(table, tg)?;
                }
                Op::RowSums(a) => {
                    let shape = self.nodes[a.0].value.shape();
                    let buf = self.take_buf();
                    let da = Matrix::from_fn_with(shape.0, shape.1, buf, |r, _| out_grad.get(r, 0));
                    self.accumulate(a, da)?;
                }
                Op::MeanAll(a) => {
                    let shape = self.nodes[a.0].value.shape();
                    let g = out_grad.get(0, 0) / (shape.0 * shape.1) as f64;
                    let buf = self.take_buf();
                    let da = Matrix::from_fn_with(shape.0, shape.1, buf, |_, _| g);
                    self.accumulate(a, da)?;
                }
                Op::DropoutMask { input, mask } => {
                    let buf = self.take_buf();
                    let g = out_grad.hadamard_with(&mask, buf)?;
                    self.accumulate(input, g)?;
                }
                Op::SliceCols { input, start, len } => {
                    let shape = self.nodes[input.0].value.shape();
                    let buf = self.take_buf();
                    let mut da = Matrix::zeros_with(shape.0, shape.1, buf);
                    for r in 0..out_grad.rows() {
                        for jj in 0..len {
                            da.set(r, start + jj, out_grad.get(r, jj));
                        }
                    }
                    self.accumulate(input, da)?;
                }
                Op::RowSoftmax(a) => {
                    // dX_i = p_i ⊙ (dY_i − (dY_i · p_i) 1), per row.
                    let buf = self.take_buf();
                    let p = &self.nodes[i].value;
                    let mut da = Matrix::zeros_with(p.rows(), p.cols(), buf);
                    for r in 0..p.rows() {
                        let dot: f64 = out_grad
                            .row(r)
                            .iter()
                            .zip(p.row(r))
                            .map(|(g, q)| g * q)
                            .sum();
                        for ((d, &g), &q) in
                            da.row_mut(r).iter_mut().zip(out_grad.row(r)).zip(p.row(r))
                        {
                            *d = q * (g - dot);
                        }
                    }
                    self.accumulate(a, da)?;
                }
            }
            self.nodes[i].grad = Some(out_grad);
            if let Some((name, cost)) = profiled {
                timer.finish(Phase::Backward, name, i, cost);
            }
        }
        Ok(())
    }

    /// Copy of `m` backed by an arena buffer.
    fn pooled_clone(&mut self, m: &Matrix) -> Matrix {
        let buf = self.take_buf();
        m.clone_with(buf)
    }

    fn accumulate(&mut self, id: NodeId, grad: Matrix) -> Result<()> {
        #[cfg(feature = "numeric-sanitizer")]
        assert!(
            grad.is_finite(),
            "numeric-sanitizer: non-finite gradient flowing into op `{}` (node {})",
            self.nodes[id.0].op.name(),
            id.0
        );
        match self.nodes[id.0].grad.as_mut() {
            Some(existing) => existing.axpy(1.0, &grad)?,
            None => {
                self.nodes[id.0].grad = Some(grad);
                return Ok(());
            }
        }
        // The summed-in gradient's storage goes back to the arena.
        self.give_buf(grad.into_vec());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile;

    /// Central finite-difference check of `d loss / d leaf`.
    ///
    /// `build` constructs the graph from the leaf value and returns
    /// `(leaf_id, loss_id)`.
    fn grad_check(leaf: Matrix, build: impl Fn(&mut Graph, Matrix) -> (NodeId, NodeId)) {
        let mut g = Graph::new();
        let (leaf_id, loss_id) = build(&mut g, leaf.clone());
        g.backward(loss_id).unwrap();
        let analytic = g.grad(leaf_id).expect("leaf reached by backward").clone();

        let eps = 1e-5;
        for i in 0..leaf.rows() {
            for j in 0..leaf.cols() {
                let mut plus = leaf.clone();
                plus.set(i, j, leaf.get(i, j) + eps);
                let mut minus = leaf.clone();
                minus.set(i, j, leaf.get(i, j) - eps);
                let mut gp = Graph::new();
                let (_, lp) = build(&mut gp, plus);
                let mut gm = Graph::new();
                let (_, lm) = build(&mut gm, minus);
                let numeric = (gp.value(lp).get(0, 0) - gm.value(lm).get(0, 0)) / (2.0 * eps);
                let got = analytic.get(i, j);
                assert!(
                    (numeric - got).abs() < 1e-4 * (1.0 + numeric.abs()),
                    "grad mismatch at ({i},{j}): numeric {numeric}, analytic {got}"
                );
            }
        }
    }

    fn leaf_2x3() -> Matrix {
        Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 1.5, 0.1, -0.3]).unwrap()
    }

    #[test]
    fn grad_matmul_mean() {
        grad_check(leaf_2x3(), |g, x| {
            let x_id = g.leaf(x);
            let w = g.leaf(Matrix::from_vec(3, 2, vec![0.2, -0.4, 1.0, 0.3, -0.7, 0.9]).unwrap());
            let y = g.matmul(x_id, w).unwrap();
            let loss = g.mean_all(y).unwrap();
            (x_id, loss)
        });
    }

    #[test]
    fn grad_matmul_right_operand() {
        let w = Matrix::from_vec(3, 2, vec![0.2, -0.4, 1.0, 0.3, -0.7, 0.9]).unwrap();
        grad_check(w, |g, w_val| {
            let x = g.leaf(leaf_2x3());
            let w_id = g.leaf(w_val);
            let y = g.matmul(x, w_id).unwrap();
            let sq = g.square(y);
            let loss = g.mean_all(sq).unwrap();
            (w_id, loss)
        });
    }

    #[test]
    fn grad_sigmoid_chain() {
        grad_check(leaf_2x3(), |g, x| {
            let x_id = g.leaf(x);
            let s = g.sigmoid(x_id);
            let sq = g.square(s);
            let loss = g.mean_all(sq).unwrap();
            (x_id, loss)
        });
    }

    #[test]
    fn grad_tanh_chain() {
        grad_check(leaf_2x3(), |g, x| {
            let x_id = g.leaf(x);
            let t = g.tanh(x_id);
            let loss = g.mean_all(t).unwrap();
            (x_id, loss)
        });
    }

    #[test]
    fn grad_relu_chain() {
        // Avoid points exactly at zero where ReLU is non-differentiable.
        grad_check(leaf_2x3(), |g, x| {
            let x_id = g.leaf(x);
            let r = g.relu(x_id);
            let sq = g.square(r);
            let loss = g.mean_all(sq).unwrap();
            (x_id, loss)
        });
    }

    #[test]
    fn grad_hadamard_and_broadcast_bias() {
        grad_check(leaf_2x3(), |g, x| {
            let x_id = g.leaf(x);
            let other =
                g.leaf(Matrix::from_vec(2, 3, vec![1.0, 2.0, -1.0, 0.5, 0.5, 3.0]).unwrap());
            let prod = g.mul(x_id, other).unwrap();
            let bias = g.leaf(Matrix::row_vector(&[0.1, -0.2, 0.3]));
            let shifted = g.add_row_broadcast(prod, bias).unwrap();
            let loss = g.mean_all(shifted).unwrap();
            (x_id, loss)
        });
    }

    #[test]
    fn grad_bias_itself() {
        let bias = Matrix::row_vector(&[0.1, -0.2, 0.3]);
        grad_check(bias, |g, b| {
            let x = g.leaf(leaf_2x3());
            let b_id = g.leaf(b);
            let shifted = g.add_row_broadcast(x, b_id).unwrap();
            let sq = g.square(shifted);
            let loss = g.mean_all(sq).unwrap();
            (b_id, loss)
        });
    }

    #[test]
    fn grad_concat_and_row_sums() {
        grad_check(leaf_2x3(), |g, x| {
            let x_id = g.leaf(x);
            let other = g.leaf(Matrix::filled(2, 2, 0.7));
            let cat = g.concat_cols(&[x_id, other]).unwrap();
            let rs = g.row_sums(cat);
            let sq = g.square(rs);
            let loss = g.mean_all(sq).unwrap();
            (x_id, loss)
        });
    }

    #[test]
    fn grad_gather_rows_scatter_adds() {
        let table = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        grad_check(table, |g, t| {
            let t_id = g.leaf(t);
            // Row 1 gathered twice: its gradient must be the sum of both uses.
            let picked = g.gather_rows(t_id, &[1, 1, 0]).unwrap();
            let sq = g.square(picked);
            let loss = g.mean_all(sq).unwrap();
            (t_id, loss)
        });
    }

    #[test]
    fn grad_mse_composition() {
        grad_check(leaf_2x3(), |g, x| {
            let x_id = g.leaf(x);
            let target = g.leaf(Matrix::filled(2, 3, 0.25));
            let loss = g.mse(x_id, target).unwrap();
            (x_id, loss)
        });
    }

    #[test]
    fn grad_one_minus_and_scale() {
        grad_check(leaf_2x3(), |g, x| {
            let x_id = g.leaf(x);
            let om = g.one_minus(x_id);
            let scaled = g.scale(om, 3.0);
            let sq = g.square(scaled);
            let loss = g.mean_all(sq).unwrap();
            (x_id, loss)
        });
    }

    #[test]
    fn grad_sub_both_sides() {
        grad_check(leaf_2x3(), |g, x| {
            let x_id = g.leaf(x);
            let c = g.leaf(Matrix::filled(2, 3, 0.4));
            let d = g.sub(c, x_id).unwrap();
            let sq = g.square(d);
            let loss = g.mean_all(sq).unwrap();
            (x_id, loss)
        });
    }

    #[test]
    fn grad_through_shared_node() {
        // x used twice: y = x ⊙ x; gradient must accumulate both paths.
        grad_check(leaf_2x3(), |g, x| {
            let x_id = g.leaf(x);
            let prod = g.mul(x_id, x_id).unwrap();
            let loss = g.mean_all(prod).unwrap();
            (x_id, loss)
        });
    }

    #[test]
    fn grad_slice_cols() {
        grad_check(leaf_2x3(), |g, x| {
            let x_id = g.leaf(x);
            let mid = g.slice_cols(x_id, 1, 2).unwrap();
            let sq = g.square(mid);
            let loss = g.mean_all(sq).unwrap();
            (x_id, loss)
        });
    }

    #[test]
    fn slice_cols_bounds_and_values() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap());
        let s = g.slice_cols(x, 1, 2).unwrap();
        assert_eq!(g.value(s).as_slice(), &[2.0, 3.0, 5.0, 6.0]);
        assert!(g.slice_cols(x, 2, 2).is_err());
        assert!(g.slice_cols(x, 0, 0).is_err());
    }

    #[test]
    fn grad_row_softmax() {
        grad_check(leaf_2x3(), |g, x| {
            let x_id = g.leaf(x);
            let sm = g.row_softmax(x_id);
            let weights =
                g.leaf(Matrix::from_vec(2, 3, vec![1.0, -2.0, 0.5, 0.3, 2.0, -1.0]).unwrap());
            let weighted = g.mul(sm, weights).unwrap();
            let loss = g.mean_all(weighted).unwrap();
            (x_id, loss)
        });
    }

    #[test]
    fn row_softmax_rows_are_distributions() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0]).unwrap());
        let sm = g.row_softmax(x);
        let v = g.value(sm);
        for r in 0..2 {
            let sum: f64 = v.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(v.row(r).iter().all(|&p| p > 0.0));
        }
        // Larger logits get larger mass.
        assert!(v.get(0, 2) > v.get(0, 1));
        // Extreme logits are handled without overflow.
        let mut g2 = Graph::new();
        let x2 = g2.leaf(Matrix::row_vector(&[1000.0, 999.0]));
        let sm2 = g2.row_softmax(x2);
        assert!(g2.value(sm2).is_finite());
    }

    #[test]
    fn dropout_mask_scales_forward_and_backward() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::filled(2, 2, 3.0));
        let mask = Matrix::from_vec(2, 2, vec![2.0, 0.0, 2.0, 0.0]).unwrap();
        let d = g.dropout(x, mask).unwrap();
        assert_eq!(g.value(d).as_slice(), &[6.0, 0.0, 6.0, 0.0]);
        let loss = g.mean_all(d).unwrap();
        g.backward(loss).unwrap();
        let grad = g.grad(x).unwrap();
        assert_eq!(grad.as_slice(), &[0.5, 0.0, 0.5, 0.0]);
    }

    #[test]
    fn backward_rejects_non_scalar_loss() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::filled(2, 2, 1.0));
        assert!(g.backward(x).is_err());
    }

    #[test]
    fn unreached_nodes_have_no_grad() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::filled(1, 1, 1.0));
        let unrelated = g.leaf(Matrix::filled(1, 1, 5.0));
        let loss = g.mean_all(x).unwrap();
        g.backward(loss).unwrap();
        assert!(g.grad(unrelated).is_none());
        assert!(g.grad(x).is_some());
    }

    #[test]
    fn concat_rejects_empty_and_mismatched() {
        let mut g = Graph::new();
        assert!(g.concat_cols(&[]).is_err());
        let a = g.leaf(Matrix::zeros(2, 2));
        let b = g.leaf(Matrix::zeros(3, 2));
        assert!(g.concat_cols(&[a, b]).is_err());
    }

    #[cfg(feature = "numeric-sanitizer")]
    #[test]
    #[should_panic(expected = "numeric-sanitizer: non-finite forward value out of op `Scale`")]
    fn sanitizer_catches_nan_forward_and_names_the_op() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::filled(2, 2, 1.0));
        let _ = g.scale(x, f64::NAN);
    }

    #[cfg(feature = "numeric-sanitizer")]
    #[test]
    #[should_panic(expected = "numeric-sanitizer: non-finite forward value out of op `Leaf`")]
    fn sanitizer_catches_nan_leaf() {
        let mut g = Graph::new();
        let _ = g.leaf(Matrix::filled(1, 1, f64::NAN));
    }

    #[cfg(feature = "numeric-sanitizer")]
    #[test]
    #[should_panic(expected = "numeric-sanitizer: non-finite gradient flowing into op `Leaf`")]
    fn sanitizer_catches_overflowing_gradient_in_backward() {
        // Forward stays finite (1e-300 · 1e200 · 1e200 = 1e100), but the
        // chain rule multiplies the two scale factors: the gradient at the
        // leaf is 1e400 = +inf, caught during the reverse sweep.
        let mut g = Graph::new();
        let x = g.leaf(Matrix::filled(1, 1, 1e-300));
        let a = g.scale(x, 1e200);
        let b = g.scale(a, 1e200);
        let loss = g.mean_all(b).unwrap();
        let _ = g.backward(loss);
    }

    #[cfg(feature = "numeric-sanitizer")]
    #[test]
    fn sanitizer_is_silent_on_finite_graphs() {
        let mut g = Graph::new();
        let x = g.leaf(leaf_2x3());
        let s = g.sigmoid(x);
        let loss = g.mean_all(s).unwrap();
        g.backward(loss).unwrap();
        assert!(g.grad(x).is_some());
    }

    #[test]
    fn profiler_attributes_forward_and_backward_ops() {
        // The profiler table is process-global and other tests may run
        // concurrently, so assert only on presence and lower bounds of
        // the cells this graph creates — never on absence or totals.
        profile::enable();
        let mut g = Graph::new();
        let x = g.leaf(leaf_2x3());
        let w = g.leaf(Matrix::from_vec(3, 2, vec![0.2, -0.4, 1.0, 0.3, -0.7, 0.9]).unwrap());
        let y = g.matmul(x, w).unwrap();
        let s = g.sigmoid(y);
        let loss = g.mean_all(s).unwrap();
        let matmul_site = y.index();
        g.backward(loss).unwrap();
        profile::disable();

        let stats = profile::snapshot();
        let fwd = stats
            .iter()
            .find(|s| {
                s.phase == profile::Phase::Forward && s.op == "MatMul" && s.site == matmul_site
            })
            .expect("forward MatMul cell recorded");
        assert!(fwd.calls >= 1);
        // 2 * 2 * 3 * 2 flops per call.
        assert!(fwd.flops >= 24);
        assert!(fwd.out_elems >= 4);
        let bwd = stats
            .iter()
            .find(|s| {
                s.phase == profile::Phase::Backward && s.op == "MatMul" && s.site == matmul_site
            })
            .expect("backward MatMul cell recorded");
        assert!(bwd.calls >= 1);
        assert!(bwd.flops >= 48);

        // The renderers accept the live snapshot.
        let table = profile::hot_op_table(&stats, 5);
        assert!(table.contains("MatMul"));
        let collapsed = profile::collapsed_stacks(&stats);
        for line in collapsed.lines() {
            assert!(line.starts_with("env2vec;"));
        }
    }

    #[test]
    fn profiler_disabled_records_nothing_and_is_numerics_inert() {
        // Identical graphs with the profiler on and off must produce
        // bit-identical values and gradients.
        let build = |g: &mut Graph| {
            let x = g.leaf(leaf_2x3());
            let s = g.sigmoid(x);
            let sq = g.square(s);
            let loss = g.mean_all(sq).unwrap();
            (x, loss)
        };
        profile::disable();
        let mut g_off = Graph::new();
        let (x_off, loss_off) = build(&mut g_off);
        g_off.backward(loss_off).unwrap();

        profile::enable();
        let mut g_on = Graph::new();
        let (x_on, loss_on) = build(&mut g_on);
        g_on.backward(loss_on).unwrap();
        profile::disable();

        assert_eq!(g_off.value(loss_off), g_on.value(loss_on));
        assert_eq!(g_off.grad(x_off), g_on.grad(x_on));
    }

    #[test]
    fn repeated_backward_resets_gradients() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::filled(1, 2, 2.0));
        let sq = g.square(x);
        let loss = g.mean_all(sq).unwrap();
        g.backward(loss).unwrap();
        let first = g.grad(x).unwrap().clone();
        g.backward(loss).unwrap();
        assert_eq!(g.grad(x).unwrap(), &first);
    }
}
