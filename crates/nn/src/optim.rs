//! Gradient-descent optimisers.
//!
//! The paper trains Env2Vec with the Adam update rule (Kingma & Ba 2014,
//! its reference \[25\]) on an MSE loss (Appendix A.1). Plain SGD is kept as
//! a simple, dependable fallback and for tests.

use env2vec_linalg::{Error, Matrix, Result};

use crate::params::ParamSet;

/// An optimiser consumes per-parameter gradients and updates a
/// [`ParamSet`] in place.
pub trait Optimizer {
    /// Applies one update step.
    ///
    /// `grads` must be parallel to the parameter set (one matrix per
    /// parameter, matching shapes); returns an error otherwise.
    fn step(&mut self, params: &mut ParamSet, grads: &[Matrix]) -> Result<()>;
}

fn check_grads(params: &ParamSet, grads: &[Matrix]) -> Result<()> {
    if grads.len() != params.len() {
        return Err(Error::ShapeMismatch {
            op: "optimizer step",
            lhs: (params.len(), 1),
            rhs: (grads.len(), 1),
        });
    }
    for ((_, _, value), grad) in params.iter().zip(grads) {
        if value.shape() != grad.shape() {
            return Err(Error::ShapeMismatch {
                op: "optimizer step",
                lhs: value.shape(),
                rhs: grad.shape(),
            });
        }
    }
    Ok(())
}

/// Stochastic gradient descent with a fixed learning rate.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f64,
}

impl Sgd {
    /// Creates an SGD optimiser.
    pub fn new(learning_rate: f64) -> Self {
        Sgd { learning_rate }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamSet, grads: &[Matrix]) -> Result<()> {
        check_grads(params, grads)?;
        let ids: Vec<_> = params.iter().map(|(id, _, _)| id).collect();
        for (id, grad) in ids.into_iter().zip(grads) {
            params.value_mut(id).axpy(-self.learning_rate, grad)?;
        }
        Ok(())
    }
}

/// Adam optimiser (Kingma & Ba 2014) with bias-corrected moment estimates.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (`α`), default `1e-3`.
    pub learning_rate: f64,
    /// First-moment decay (`β₁`), default `0.9`.
    pub beta1: f64,
    /// Second-moment decay (`β₂`), default `0.999`.
    pub beta2: f64,
    /// Numerical-stability constant (`ε`), default `1e-8`.
    pub epsilon: f64,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    /// Identity of the parameter set the moments belong to: one
    /// `(name, shape)` per parameter, in registration order. Moments are
    /// meaningless for any other set, so a mismatch resets the state.
    sig: Vec<(String, (usize, usize))>,
}

impl Adam {
    /// Creates an Adam optimiser with the canonical defaults and the given
    /// learning rate.
    pub fn new(learning_rate: f64) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
            sig: Vec::new(),
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    fn ensure_state(&mut self, params: &ParamSet) {
        // Key the moment buffers on parameter identity (names + shapes),
        // not just the count: a rebuilt set with the same length but
        // different parameters would otherwise silently reuse stale
        // moments — and a stale `t` would under-correct the bias of the
        // fresh ones.
        let matches = self.sig.len() == params.len()
            && params
                .iter()
                .zip(&self.sig)
                .all(|((_, name, value), (sig_name, sig_shape))| {
                    name == sig_name && value.shape() == *sig_shape
                });
        if !matches {
            self.m = params
                .iter()
                .map(|(_, _, v)| Matrix::zeros(v.rows(), v.cols()))
                .collect();
            self.v = self.m.clone();
            self.sig = params
                .iter()
                .map(|(_, name, value)| (name.to_string(), value.shape()))
                .collect();
            self.t = 0;
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamSet, grads: &[Matrix]) -> Result<()> {
        check_grads(params, grads)?;
        self.ensure_state(params);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let ids: Vec<_> = params.iter().map(|(id, _, _)| id).collect();
        for ((id, grad), (m, v)) in ids
            .into_iter()
            .zip(grads)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            let value = params.value_mut(id);
            for ((w, &g), (mi, vi)) in value
                .as_mut_slice()
                .iter_mut()
                .zip(grad.as_slice())
                .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice().iter_mut()))
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *w -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quadratic bowl: loss = Σ (w - target)², gradient = 2 (w - target).
    fn quad_grad(params: &ParamSet, target: f64) -> Vec<Matrix> {
        params
            .iter()
            .map(|(_, _, v)| v.map(|x| 2.0 * (x - target)))
            .collect()
    }

    fn bowl_params() -> ParamSet {
        let mut ps = ParamSet::new();
        ps.add("w", Matrix::filled(2, 2, 5.0)).unwrap();
        ps
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut ps = bowl_params();
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            let grads = quad_grad(&ps, 1.0);
            opt.step(&mut ps, &grads).unwrap();
        }
        let id = ps.find("w").unwrap();
        assert!((ps.value(id).get(0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut ps = bowl_params();
        let mut opt = Adam::new(0.05);
        for _ in 0..2000 {
            let grads = quad_grad(&ps, -2.0);
            opt.step(&mut ps, &grads).unwrap();
        }
        let id = ps.find("w").unwrap();
        assert!((ps.value(id).get(1, 1) + 2.0).abs() < 1e-3);
        assert_eq!(opt.steps(), 2000);
    }

    #[test]
    fn adam_first_step_size_is_learning_rate() {
        // With bias correction, the very first Adam step has magnitude ≈ α
        // regardless of gradient scale.
        let mut ps = bowl_params();
        let before = ps.value(ps.find("w").unwrap()).get(0, 0);
        let mut opt = Adam::new(0.01);
        let grads = quad_grad(&ps, 0.0);
        opt.step(&mut ps, &grads).unwrap();
        let after = ps.value(ps.find("w").unwrap()).get(0, 0);
        assert!(((before - after) - 0.01).abs() < 1e-6);
    }

    #[test]
    fn rebuilt_param_set_resets_adam_state() {
        // Regression: state was keyed on parameter *count* only, so a
        // rebuilt set with the same length but different shapes (here
        // even the same element count, so nothing tripped a shape check)
        // silently reused stale moments and a stale step counter.
        let mut opt = Adam::new(0.01);
        let mut ps = bowl_params(); // one (2,2) parameter "w"
        for _ in 0..5 {
            let grads = quad_grad(&ps, 0.0);
            opt.step(&mut ps, &grads).unwrap();
        }
        assert_eq!(opt.steps(), 5);

        // Same param count, same element count, different shape.
        let mut rebuilt = ParamSet::new();
        rebuilt.add("w", Matrix::filled(1, 4, 5.0)).unwrap();
        let before = rebuilt.value(rebuilt.find("w").unwrap()).clone();
        let grads = quad_grad(&rebuilt, 0.0);
        opt.step(&mut rebuilt, &grads).unwrap();
        let after = rebuilt.value(rebuilt.find("w").unwrap());
        // A fresh (reset) Adam's first bias-corrected step has magnitude
        // ≈ α for every element; stale moments/t break that.
        for (b, a) in before.as_slice().iter().zip(after.as_slice()) {
            assert!(
                ((b - a) - 0.01).abs() < 1e-6,
                "stale Adam state reused across rebuilt ParamSet: step {}",
                b - a
            );
        }
        assert_eq!(opt.steps(), 1, "step counter must reset with the moments");
    }

    #[test]
    fn renamed_param_set_resets_adam_state() {
        let mut opt = Adam::new(0.01);
        let mut ps = bowl_params();
        for _ in 0..3 {
            let grads = quad_grad(&ps, 0.0);
            opt.step(&mut ps, &grads).unwrap();
        }
        // Same shape, different parameter name: still a different model.
        let mut other = ParamSet::new();
        other.add("embedding", Matrix::filled(2, 2, 5.0)).unwrap();
        let grads = quad_grad(&other, 0.0);
        opt.step(&mut other, &grads).unwrap();
        assert_eq!(opt.steps(), 1);
        // Unchanged set keeps accumulating instead of resetting.
        let grads = quad_grad(&other, 0.0);
        opt.step(&mut other, &grads).unwrap();
        assert_eq!(opt.steps(), 2);
    }

    #[test]
    fn step_rejects_mismatched_grads() {
        let mut ps = bowl_params();
        let mut sgd = Sgd::new(0.1);
        assert!(sgd.step(&mut ps, &[]).is_err());
        assert!(sgd.step(&mut ps, &[Matrix::zeros(1, 1)]).is_err());
        let mut adam = Adam::new(0.1);
        assert!(adam.step(&mut ps, &[Matrix::zeros(3, 3)]).is_err());
    }

    #[test]
    fn zero_gradient_is_a_fixed_point_for_sgd() {
        let mut ps = bowl_params();
        let before = ps.value(ps.find("w").unwrap()).clone();
        let mut opt = Sgd::new(0.5);
        opt.step(&mut ps, &[Matrix::zeros(2, 2)]).unwrap();
        assert_eq!(ps.value(ps.find("w").unwrap()), &before);
    }
}
