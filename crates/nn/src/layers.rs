//! Neural-network layers used by the Env2Vec architecture.
//!
//! The paper's model (§3.1, Appendix A) combines three kinds of layers:
//! a one-hidden-layer sigmoid FNN over the contextual features, a GRU over
//! the resource-usage history, and per-EM-feature embedding lookup tables.
//! Each layer here registers its weights in a [`ParamSet`] at construction
//! and emits graph ops at forward time, so the same layer object serves
//! both training (fresh graph per step) and inference.

use env2vec_linalg::{Error, Matrix, Result};
use rand::Rng;

use crate::graph::{Graph, NodeId};
use crate::init;
use crate::params::{Bound, ParamId, ParamSet};

/// Element-wise activation applied after a dense transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// No activation (identity).
    Linear,
    /// Logistic sigmoid — the paper's FNN hidden activation (Appendix A).
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit — the paper's GRU candidate activation.
    Relu,
}

/// Applies an [`Activation`] to a node.
pub fn activate(graph: &mut Graph, x: NodeId, activation: Activation) -> NodeId {
    match activation {
        Activation::Linear => x,
        Activation::Sigmoid => graph.sigmoid(x),
        Activation::Tanh => graph.tanh(x),
        Activation::Relu => graph.relu(x),
    }
}

/// Fully-connected layer `act(x W + b)`.
#[derive(Debug, Clone)]
pub struct Dense {
    w: ParamId,
    b: ParamId,
    activation: Activation,
    in_dim: usize,
    out_dim: usize,
}

impl Dense {
    /// Creates a dense layer, registering `W` (`in_dim x out_dim`) and `b`
    /// (`1 x out_dim`) under `prefix` in `params`.
    ///
    /// Weights use Xavier initialisation for sigmoid/tanh/linear and He for
    /// ReLU. Returns an error when the prefix collides with existing
    /// parameter names.
    pub fn new(
        params: &mut ParamSet,
        rng: &mut impl Rng,
        prefix: &str,
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
    ) -> Result<Self> {
        let w_init = match activation {
            Activation::Relu => init::he_uniform(rng, in_dim, out_dim),
            _ => init::xavier_uniform(rng, in_dim, out_dim),
        };
        let w = params.add(format!("{prefix}.w"), w_init)?;
        let b = params.add(format!("{prefix}.b"), Matrix::zeros(1, out_dim))?;
        Ok(Dense {
            w,
            b,
            activation,
            in_dim,
            out_dim,
        })
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Emits the layer's ops for a batch `x` (`B x in_dim`).
    ///
    /// Returns an error on shape mismatch.
    pub fn forward(&self, graph: &mut Graph, bound: &Bound, x: NodeId) -> Result<NodeId> {
        let wx = graph.matmul(x, bound.node(self.w))?;
        let z = graph.add_row_broadcast(wx, bound.node(self.b))?;
        Ok(activate(graph, z, self.activation))
    }
}

/// Gated recurrent unit (Cho et al. 2014) as formalised in the paper's
/// Appendix A.
///
/// Gates:
/// `z_t = σ(y_t W_z + h_{t-1} U_z + b_z)`,
/// `r_t = σ(y_t W_r + h_{t-1} U_r + b_r)`,
/// candidate `h'_t = f(y_t W_h + (r_t ⊙ h_{t-1}) U_h + b_h)` with `f`
/// configurable (the paper empirically adopts ReLU),
/// state `h_t = (1 - z_t) ⊙ h'_t + z_t ⊙ h_{t-1}`.
#[derive(Debug, Clone)]
pub struct GruCell {
    w_z: ParamId,
    u_z: ParamId,
    b_z: ParamId,
    w_r: ParamId,
    u_r: ParamId,
    b_r: ParamId,
    w_h: ParamId,
    u_h: ParamId,
    b_h: ParamId,
    in_dim: usize,
    hidden: usize,
    candidate: Activation,
}

impl GruCell {
    /// Creates a GRU cell, registering its nine weight matrices under
    /// `prefix`.
    ///
    /// Returns an error when the prefix collides with existing names.
    pub fn new(
        params: &mut ParamSet,
        rng: &mut impl Rng,
        prefix: &str,
        in_dim: usize,
        hidden: usize,
        candidate: Activation,
    ) -> Result<Self> {
        fn gate<R: Rng>(
            params: &mut ParamSet,
            rng: &mut R,
            prefix: &str,
            name: &str,
            in_dim: usize,
            hidden: usize,
        ) -> Result<(ParamId, ParamId, ParamId)> {
            let w = params.add(
                format!("{prefix}.w_{name}"),
                init::xavier_uniform(rng, in_dim, hidden),
            )?;
            let u = params.add(
                format!("{prefix}.u_{name}"),
                init::xavier_uniform(rng, hidden, hidden),
            )?;
            let b = params.add(format!("{prefix}.b_{name}"), Matrix::zeros(1, hidden))?;
            Ok((w, u, b))
        }
        let (w_z, u_z, b_z) = gate(params, rng, prefix, "z", in_dim, hidden)?;
        let (w_r, u_r, b_r) = gate(params, rng, prefix, "r", in_dim, hidden)?;
        let (w_h, u_h, b_h) = gate(params, rng, prefix, "h", in_dim, hidden)?;
        Ok(GruCell {
            w_z,
            u_z,
            b_z,
            w_r,
            u_r,
            b_r,
            w_h,
            u_h,
            b_h,
            in_dim,
            hidden,
            candidate,
        })
    }

    /// Hidden-state width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input width per timestep.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// One recurrence step: `x` is `B x in_dim`, `h` is `B x hidden`.
    ///
    /// Returns the new hidden state node, or an error on shape mismatch.
    pub fn step(&self, graph: &mut Graph, bound: &Bound, x: NodeId, h: NodeId) -> Result<NodeId> {
        let gate = |graph: &mut Graph, w, u, b| -> Result<NodeId> {
            let xw = graph.matmul(x, bound.node(w))?;
            let hu = graph.matmul(h, bound.node(u))?;
            let sum = graph.add(xw, hu)?;
            graph.add_row_broadcast(sum, bound.node(b))
        };
        let z_pre = gate(graph, self.w_z, self.u_z, self.b_z)?;
        let z = graph.sigmoid(z_pre);
        let r_pre = gate(graph, self.w_r, self.u_r, self.b_r)?;
        let r = graph.sigmoid(r_pre);

        // Candidate: f(x W_h + (r ⊙ h) U_h + b_h).
        let xw = graph.matmul(x, bound.node(self.w_h))?;
        let rh = graph.mul(r, h)?;
        let rhu = graph.matmul(rh, bound.node(self.u_h))?;
        let pre = graph.add(xw, rhu)?;
        let pre = graph.add_row_broadcast(pre, bound.node(self.b_h))?;
        let cand = activate(graph, pre, self.candidate);

        // h_t = (1 - z) ⊙ h' + z ⊙ h_{t-1}.
        let one_minus_z = graph.one_minus(z);
        let a = graph.mul(one_minus_z, cand)?;
        let b = graph.mul(z, h)?;
        graph.add(a, b)
    }

    /// Unrolls the cell over a sequence of `B x in_dim` nodes (oldest
    /// first), starting from a zero hidden state, and returns the final
    /// hidden state (`v_ts` in the paper's Figure 2).
    ///
    /// Returns an error for an empty sequence or shape mismatch.
    pub fn run_sequence(
        &self,
        graph: &mut Graph,
        bound: &Bound,
        steps: &[NodeId],
        batch: usize,
    ) -> Result<NodeId> {
        Ok(*self
            .run_sequence_all(graph, bound, steps, batch)?
            .last()
            // envlint: allow(no-panic) — run_sequence_all errors on an empty
            // unroll, so the returned state list is never empty.
            .expect("non-empty sequence yields states"))
    }

    /// Unrolls the cell and returns *every* hidden state, oldest first —
    /// the input to attention pooling.
    ///
    /// Returns an error for an empty sequence or shape mismatch.
    pub fn run_sequence_all(
        &self,
        graph: &mut Graph,
        bound: &Bound,
        steps: &[NodeId],
        batch: usize,
    ) -> Result<Vec<NodeId>> {
        if steps.is_empty() {
            return Err(Error::Empty {
                routine: "gru run_sequence",
            });
        }
        let mut h = graph.leaf(Matrix::zeros(batch, self.hidden));
        let mut states = Vec::with_capacity(steps.len());
        for &x in steps {
            h = self.step(graph, bound, x, h)?;
            states.push(h);
        }
        Ok(states)
    }
}

/// Additive attention pooling over a sequence of hidden states.
///
/// The paper's §6 names attention as the natural extension for learning
/// "relationships between metric values from previous timesteps": instead
/// of keeping only the last GRU state, score every state with a learned
/// vector, softmax the scores over time, and return the weighted sum.
#[derive(Debug, Clone)]
pub struct AttentionPool {
    w: ParamId,
    b: ParamId,
    hidden: usize,
}

impl AttentionPool {
    /// Creates an attention pool over `hidden`-wide states, registering
    /// its score vector under `prefix`.
    ///
    /// Returns an error when the prefix collides with existing names.
    pub fn new(
        params: &mut ParamSet,
        rng: &mut impl Rng,
        prefix: &str,
        hidden: usize,
    ) -> Result<Self> {
        let w = params.add(format!("{prefix}.w"), init::xavier_uniform(rng, hidden, 1))?;
        let b = params.add(format!("{prefix}.b"), Matrix::zeros(1, 1))?;
        Ok(AttentionPool { w, b, hidden })
    }

    /// Pools a sequence of `B x hidden` states into one `B x hidden`
    /// summary: `Σ_t softmax_t(h_t w + b) h_t`.
    ///
    /// Returns an error for an empty sequence or width mismatch.
    pub fn forward(&self, graph: &mut Graph, bound: &Bound, states: &[NodeId]) -> Result<NodeId> {
        if states.is_empty() {
            return Err(Error::Empty {
                routine: "attention forward",
            });
        }
        // Scores per timestep, concatenated into B x T.
        let scores: Vec<NodeId> = states
            .iter()
            .map(|&h| {
                let s = graph.matmul(h, bound.node(self.w))?;
                graph.add_row_broadcast(s, bound.node(self.b))
            })
            .collect::<Result<Vec<_>>>()?;
        let stacked = graph.concat_cols(&scores)?;
        let alpha = graph.row_softmax(stacked);

        // Weighted sum: broadcast each alpha column across the state width.
        let ones = graph.leaf(Matrix::filled(1, self.hidden, 1.0));
        let mut pooled: Option<NodeId> = None;
        for (t, &h) in states.iter().enumerate() {
            let a_col = graph.slice_cols(alpha, t, 1)?;
            let a_wide = graph.matmul(a_col, ones)?;
            let weighted = graph.mul(a_wide, h)?;
            pooled = Some(match pooled {
                None => weighted,
                Some(acc) => graph.add(acc, weighted)?,
            });
        }
        // envlint: allow(no-panic) — run_sequence_all errors on an empty
        // unroll, so the loop above executed at least once.
        Ok(pooled.expect("at least one state"))
    }
}

/// Embedding lookup table with a reserved `<unk>` row.
///
/// Row `0` is the unknown-value embedding the paper uses for environment
/// values never seen in training (§3.1: "the lookup table also contains an
/// additional unknown vector/embedding"); known values occupy rows
/// `1..=vocab`.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Index of the `<unk>` row.
    pub const UNK: usize = 0;

    /// Creates an embedding table of `vocab + 1` rows (`<unk>` + known
    /// values), each of width `dim`, initialised `U(-0.05, 0.05)`.
    ///
    /// Returns an error when `name` collides with existing parameters.
    pub fn new(
        params: &mut ParamSet,
        rng: &mut impl Rng,
        name: &str,
        vocab: usize,
        dim: usize,
    ) -> Result<Self> {
        let table = params.add(name, init::uniform(rng, vocab + 1, dim, 0.05))?;
        Ok(Embedding { table, vocab, dim })
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of known values (excluding `<unk>`).
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Parameter id of the underlying table.
    pub fn table(&self) -> ParamId {
        self.table
    }

    /// Looks up a batch of row indices, producing a `B x dim` node.
    ///
    /// Indices must already be encoded (0 for `<unk>`, `1..=vocab`
    /// otherwise); out-of-range indices are an error.
    pub fn lookup(&self, graph: &mut Graph, bound: &Bound, indices: &[usize]) -> Result<NodeId> {
        for &i in indices {
            if i > self.vocab {
                return Err(Error::IndexOutOfBounds {
                    index: i,
                    len: self.vocab + 1,
                });
            }
        }
        graph.gather_rows(bound.node(self.table), indices)
    }

    /// Reads the current embedding vector for an encoded index, outside any
    /// graph.
    ///
    /// Returns an error for an out-of-range index.
    pub fn vector<'p>(&self, params: &'p ParamSet, index: usize) -> Result<&'p [f64]> {
        if index > self.vocab {
            return Err(Error::IndexOutOfBounds {
                index,
                len: self.vocab + 1,
            });
        }
        Ok(params.value(self.table).row(index))
    }
}

/// Builds an inverted-dropout mask: each element is `0` with probability
/// `rate`, else `1 / (1 - rate)`.
///
/// Returns an error when `rate` is outside `[0, 1)`. A rate of `0` yields
/// an all-ones mask.
pub fn dropout_mask(rng: &mut impl Rng, rows: usize, cols: usize, rate: f64) -> Result<Matrix> {
    if !(0.0..1.0).contains(&rate) {
        return Err(Error::InvalidArgument {
            what: "dropout rate must be in [0, 1)",
        });
    }
    // envlint: allow(float-cmp) — exact fast path: only a rate of
    // bitwise 0.0 may skip mask sampling without changing results.
    if rate == 0.0 {
        return Ok(Matrix::filled(rows, cols, 1.0));
    }
    let keep = 1.0 - rate;
    Ok(Matrix::from_fn(rows, cols, |_, _| {
        if rng.gen::<f64>() < rate {
            0.0
        } else {
            1.0 / keep
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn dense_forward_shape_and_activation() {
        let mut ps = ParamSet::new();
        let layer = Dense::new(&mut ps, &mut rng(), "fnn", 3, 4, Activation::Sigmoid).unwrap();
        assert_eq!(layer.in_dim(), 3);
        assert_eq!(layer.out_dim(), 4);

        let mut g = Graph::new();
        let bound = ps.bind(&mut g);
        let x = g.leaf(Matrix::filled(2, 3, 0.5));
        let y = layer.forward(&mut g, &bound, x).unwrap();
        assert_eq!(g.value(y).shape(), (2, 4));
        // Sigmoid output strictly within (0, 1).
        assert!(g.value(y).as_slice().iter().all(|&v| v > 0.0 && v < 1.0));
    }

    #[test]
    fn dense_linear_matches_manual_matmul() {
        let mut ps = ParamSet::new();
        let layer = Dense::new(&mut ps, &mut rng(), "lin", 2, 2, Activation::Linear).unwrap();
        let w = ps.value(ps.find("lin.w").unwrap()).clone();
        let mut g = Graph::new();
        let bound = ps.bind(&mut g);
        let xv = Matrix::from_vec(1, 2, vec![1.0, -2.0]).unwrap();
        let x = g.leaf(xv.clone());
        let y = layer.forward(&mut g, &bound, x).unwrap();
        let expect = xv.matmul(&w).unwrap();
        for (a, b) in g.value(y).as_slice().iter().zip(expect.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn gru_step_and_sequence_shapes() {
        let mut ps = ParamSet::new();
        let cell = GruCell::new(&mut ps, &mut rng(), "gru", 1, 5, Activation::Relu).unwrap();
        assert_eq!(cell.hidden(), 5);

        let mut g = Graph::new();
        let bound = ps.bind(&mut g);
        let steps: Vec<NodeId> = (0..3)
            .map(|i| g.leaf(Matrix::filled(2, 1, i as f64 * 0.1)))
            .collect();
        let h = cell.run_sequence(&mut g, &bound, &steps, 2).unwrap();
        assert_eq!(g.value(h).shape(), (2, 5));
        assert!(g.value(h).is_finite());
    }

    #[test]
    fn gru_rejects_empty_sequence() {
        let mut ps = ParamSet::new();
        let cell = GruCell::new(&mut ps, &mut rng(), "gru", 1, 3, Activation::Tanh).unwrap();
        let mut g = Graph::new();
        let bound = ps.bind(&mut g);
        assert!(cell.run_sequence(&mut g, &bound, &[], 2).is_err());
    }

    #[test]
    fn gru_state_depends_on_input_history() {
        let mut ps = ParamSet::new();
        let cell = GruCell::new(&mut ps, &mut rng(), "gru", 1, 4, Activation::Relu).unwrap();
        let run = |vals: &[f64]| -> Matrix {
            let mut g = Graph::new();
            let bound = ps.bind(&mut g);
            let steps: Vec<NodeId> = vals
                .iter()
                .map(|&v| g.leaf(Matrix::filled(1, 1, v)))
                .collect();
            let h = cell.run_sequence(&mut g, &bound, &steps, 1).unwrap();
            g.value(h).clone()
        };
        // Mixed-sign inputs: with a ReLU candidate and uniform init, an
        // all-positive sequence can leave every hidden unit dead (state
        // pinned at zero) for an unlucky draw, which would vacuously pass
        // the inequality below.
        let a = run(&[0.4, -0.2, 0.3]);
        let b = run(&[0.3, -0.2, 0.4]);
        // Same multiset of inputs, different order → different state.
        assert_ne!(a, b);
    }

    #[test]
    fn gru_gradients_flow_to_all_parameters() {
        let mut ps = ParamSet::new();
        let cell = GruCell::new(&mut ps, &mut rng(), "gru", 1, 3, Activation::Relu).unwrap();
        let mut g = Graph::new();
        let bound = ps.bind(&mut g);
        let steps: Vec<NodeId> = (0..4)
            .map(|i| g.leaf(Matrix::filled(2, 1, 0.3 + 0.1 * i as f64)))
            .collect();
        let h = cell.run_sequence(&mut g, &bound, &steps, 2).unwrap();
        let target = g.leaf(Matrix::filled(2, 3, 0.5));
        let loss = g.mse(h, target).unwrap();
        g.backward(loss).unwrap();
        let grads = ps.gradients(&g, &bound).unwrap();
        // Every GRU weight matrix participates, so every grad is non-zero.
        for ((_, name, _), grad) in ps.iter().zip(&grads) {
            assert!(grad.max_abs() > 0.0, "parameter {name} got a zero gradient");
        }
    }

    #[test]
    fn embedding_lookup_unknown_and_bounds() {
        let mut ps = ParamSet::new();
        let emb = Embedding::new(&mut ps, &mut rng(), "em.testbed", 3, 10).unwrap();
        assert_eq!(emb.dim(), 10);
        assert_eq!(emb.vocab(), 3);

        let mut g = Graph::new();
        let bound = ps.bind(&mut g);
        let looked = emb.lookup(&mut g, &bound, &[0, 1, 3]).unwrap();
        let out = g.value(looked).clone();
        assert_eq!(out.shape(), (3, 10));
        // Row 0 of the output is the <unk> vector.
        assert_eq!(out.row(0), emb.vector(&ps, Embedding::UNK).unwrap());

        let mut g2 = Graph::new();
        let bound2 = ps.bind(&mut g2);
        assert!(emb.lookup(&mut g2, &bound2, &[4]).is_err());
        assert!(emb.vector(&ps, 4).is_err());
    }

    #[test]
    fn embedding_gradient_only_touches_looked_up_rows() {
        let mut ps = ParamSet::new();
        let emb = Embedding::new(&mut ps, &mut rng(), "em", 4, 3).unwrap();
        let mut g = Graph::new();
        let bound = ps.bind(&mut g);
        let looked = emb.lookup(&mut g, &bound, &[2, 2]).unwrap();
        let sq = g.square(looked);
        let loss = g.mean_all(sq).unwrap();
        g.backward(loss).unwrap();
        let grad = ps
            .gradients(&g, &bound)
            .unwrap()
            .remove(emb.table().index());
        for row in 0..grad.rows() {
            let nz = grad.row(row).iter().any(|&x| x != 0.0);
            assert_eq!(nz, row == 2, "row {row}");
        }
    }

    #[test]
    fn attention_pool_shapes_and_weighted_sum() {
        let mut ps = ParamSet::new();
        let cell = GruCell::new(&mut ps, &mut rng(), "gru", 1, 4, Activation::Tanh).unwrap();
        let pool = AttentionPool::new(&mut ps, &mut rng(), "attn", 4).unwrap();
        let mut g = Graph::new();
        let bound = ps.bind(&mut g);
        let steps: Vec<NodeId> = (0..5)
            .map(|i| g.leaf(Matrix::filled(3, 1, 0.1 * i as f64)))
            .collect();
        let states = cell.run_sequence_all(&mut g, &bound, &steps, 3).unwrap();
        assert_eq!(states.len(), 5);
        let pooled = pool.forward(&mut g, &bound, &states).unwrap();
        assert_eq!(g.value(pooled).shape(), (3, 4));
        assert!(g.value(pooled).is_finite());
        // The pooled state is a convex combination of hidden states, so
        // each element lies within the per-element min/max across time.
        let vals: Vec<&Matrix> = states.iter().map(|&s| g.value(s)).collect();
        for r in 0..3 {
            for c in 0..4 {
                let lo = vals
                    .iter()
                    .map(|m| m.get(r, c))
                    .fold(f64::INFINITY, f64::min);
                let hi = vals
                    .iter()
                    .map(|m| m.get(r, c))
                    .fold(f64::NEG_INFINITY, f64::max);
                let p = g.value(pooled).get(r, c);
                assert!(
                    p >= lo - 1e-9 && p <= hi + 1e-9,
                    "({r},{c}): {p} not in [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    fn attention_gradients_reach_score_vector() {
        let mut ps = ParamSet::new();
        let cell = GruCell::new(&mut ps, &mut rng(), "gru", 1, 3, Activation::Tanh).unwrap();
        let pool = AttentionPool::new(&mut ps, &mut rng(), "attn", 3).unwrap();
        let mut g = Graph::new();
        let bound = ps.bind(&mut g);
        let steps: Vec<NodeId> = (0..4)
            .map(|i| g.leaf(Matrix::filled(2, 1, 0.2 + 0.3 * i as f64)))
            .collect();
        let states = cell.run_sequence_all(&mut g, &bound, &steps, 2).unwrap();
        let pooled = pool.forward(&mut g, &bound, &states).unwrap();
        let target = g.leaf(Matrix::filled(2, 3, 0.4));
        let loss = g.mse(pooled, target).unwrap();
        g.backward(loss).unwrap();
        let grads = ps.gradients(&g, &bound).unwrap();
        let attn_w = ps.find("attn.w").unwrap();
        assert!(
            grads[attn_w.index()].max_abs() > 0.0,
            "score vector got no gradient"
        );
    }

    #[test]
    fn attention_rejects_empty_sequence() {
        let mut ps = ParamSet::new();
        let pool = AttentionPool::new(&mut ps, &mut rng(), "attn", 3).unwrap();
        let mut g = Graph::new();
        let bound = ps.bind(&mut g);
        assert!(pool.forward(&mut g, &bound, &[]).is_err());
    }

    #[test]
    fn dropout_mask_properties() {
        let mask = dropout_mask(&mut rng(), 50, 50, 0.4).unwrap();
        let keep = 1.0 / 0.6;
        let mut zeros = 0usize;
        for &v in mask.as_slice() {
            assert!(v == 0.0 || (v - keep).abs() < 1e-12);
            if v == 0.0 {
                zeros += 1;
            }
        }
        let frac = zeros as f64 / 2500.0;
        assert!((frac - 0.4).abs() < 0.05, "dropout fraction {frac}");
        assert_eq!(
            dropout_mask(&mut rng(), 2, 2, 0.0).unwrap(),
            Matrix::filled(2, 2, 1.0)
        );
        assert!(dropout_mask(&mut rng(), 2, 2, 1.0).is_err());
        assert!(dropout_mask(&mut rng(), 2, 2, -0.1).is_err());
    }
}
