//! Mini-batching and early stopping.
//!
//! The paper regularises with dropout plus "an early stopping strategy,
//! which stops the training if there is no improvement on a validation
//! set" (Appendix A.1). [`EarlyStopping`] implements that rule with a
//! patience window and best-weights restoration; [`shuffled_batches`]
//! provides seeded mini-batch index sets so training is reproducible.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use env2vec_linalg::Matrix;

use crate::params::ParamSet;

/// Per-epoch training-health statistics handed to
/// [`TrainObserver::on_epoch_stats`].
///
/// Everything here is *derived* from values the loop computes anyway —
/// collecting the struct reads parameters and gradients but never writes
/// them, so stats collection cannot perturb training.
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Validation loss after this epoch's updates.
    pub val_loss: f64,
    /// Global L2 norm of the last mini-batch's gradients.
    pub grad_norm: f64,
    /// Global L2 norm of all parameters after the epoch.
    pub param_norm: f64,
    /// Global L2 norm of `params_after − params_before` for the epoch.
    pub update_norm: f64,
    /// `update_norm / param_norm` — the classic "how fast are we moving
    /// relative to where we are" learning-rate health signal (0 when the
    /// parameter norm is 0).
    pub update_ratio: f64,
    /// L2 distance of embedding-table parameters from their values at the
    /// start of training (0 when the model has no embedding tables).
    pub embedding_drift: f64,
    /// `val_loss − previous val_loss` (0 at the first epoch).
    pub val_loss_delta: f64,
    /// Best validation loss seen so far, including this epoch.
    pub best_val_loss: f64,
}

/// Read-only hooks into a training loop.
///
/// Implementations receive values the loop already computes — they must
/// not (and cannot, through this interface) influence batching, RNG
/// streams, or parameter updates, so an observed run is numerically
/// identical to an unobserved one.
pub trait TrainObserver {
    /// One epoch finished. `grad_norm` is the global L2 norm of the last
    /// mini-batch's gradients (a cheap divergence/vanishing signal).
    fn on_epoch(&mut self, epoch: usize, val_loss: f64, grad_norm: f64) {
        let _ = (epoch, val_loss, grad_norm);
    }

    /// Whether this observer wants [`TrainObserver::on_epoch_stats`].
    /// Collecting [`EpochStats`] clones the parameter set once per epoch,
    /// so loops only pay that when an observer opts in (the default is
    /// `false`).
    fn wants_epoch_stats(&self) -> bool {
        false
    }

    /// Richer per-epoch statistics (norms, update ratio, embedding
    /// drift). Fires right after [`TrainObserver::on_epoch`] for the same
    /// epoch when [`TrainObserver::wants_epoch_stats`] returns `true`;
    /// the default does nothing so existing observers are unaffected.
    fn on_epoch_stats(&mut self, stats: &EpochStats) {
        let _ = stats;
    }

    /// Early stopping fired after `epoch`.
    fn on_early_stop(&mut self, epoch: usize) {
        let _ = epoch;
    }

    /// Training finished; `best_epoch` indexes the kept parameters.
    fn on_complete(&mut self, best_epoch: usize, stopped_early: bool) {
        let _ = (best_epoch, stopped_early);
    }
}

/// The do-nothing observer used by un-instrumented training entry points.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl TrainObserver for NullObserver {}

/// Global L2 norm across a gradient set (the scalar observers receive).
pub fn grad_norm(grads: &[Matrix]) -> f64 {
    grads
        .iter()
        .flat_map(|g| g.as_slice())
        .map(|&v| v * v)
        .sum::<f64>()
        .sqrt()
}

/// Global L2 norm over every weight in a parameter set.
pub fn param_norm(params: &ParamSet) -> f64 {
    params
        .iter()
        .flat_map(|(_, _, v)| v.as_slice())
        .map(|&x| x * x)
        .sum::<f64>()
        .sqrt()
}

/// Global L2 distance between two snapshots of the *same* parameter-set
/// layout, restricted to parameters whose name satisfies `keep`.
///
/// Entries whose names or shapes disagree between the snapshots are
/// skipped, so comparing unrelated sets degrades to 0 instead of
/// panicking.
pub fn param_distance_filtered(
    before: &ParamSet,
    after: &ParamSet,
    keep: impl Fn(&str) -> bool,
) -> f64 {
    let mut sum = 0.0;
    for ((_, name_b, vb), (_, name_a, va)) in before.iter().zip(after.iter()) {
        if name_b != name_a || vb.shape() != va.shape() || !keep(name_b) {
            continue;
        }
        sum += vb
            .as_slice()
            .iter()
            .zip(va.as_slice())
            .map(|(&x, &y)| (x - y) * (x - y))
            .sum::<f64>();
    }
    sum.sqrt()
}

/// Global L2 distance between two snapshots of the same parameter-set
/// layout (see [`param_distance_filtered`]).
pub fn param_distance(before: &ParamSet, after: &ParamSet) -> f64 {
    param_distance_filtered(before, after, |_| true)
}

/// Splits `0..n` into shuffled mini-batches of at most `batch_size`.
///
/// An empty dataset yields no batches; `batch_size == 0` is treated as one
/// full batch.
pub fn shuffled_batches(n: usize, batch_size: usize, seed: u64) -> Vec<Vec<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let batch_size = if batch_size == 0 { n } else { batch_size };
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    idx.chunks(batch_size).map(<[usize]>::to_vec).collect()
}

/// Early-stopping monitor with best-weights checkpointing.
#[derive(Debug, Clone)]
pub struct EarlyStopping {
    patience: usize,
    min_delta: f64,
    best_loss: f64,
    best_params: Option<ParamSet>,
    epochs_without_improvement: usize,
}

impl EarlyStopping {
    /// Creates a monitor that stops after `patience` consecutive epochs
    /// without the validation loss improving by at least `min_delta`.
    pub fn new(patience: usize, min_delta: f64) -> Self {
        EarlyStopping {
            patience,
            min_delta,
            best_loss: f64::INFINITY,
            best_params: None,
            epochs_without_improvement: 0,
        }
    }

    /// Records one epoch's validation loss; returns `true` when training
    /// should stop.
    ///
    /// The parameter snapshot accompanying the best loss so far is kept for
    /// [`EarlyStopping::best`].
    pub fn observe(&mut self, val_loss: f64, params: &ParamSet) -> bool {
        if val_loss < self.best_loss - self.min_delta {
            self.best_loss = val_loss;
            self.best_params = Some(params.clone());
            self.epochs_without_improvement = 0;
        } else {
            self.epochs_without_improvement += 1;
        }
        self.epochs_without_improvement >= self.patience
    }

    /// Best validation loss seen so far (`+inf` before the first epoch).
    pub fn best_loss(&self) -> f64 {
        self.best_loss
    }

    /// The parameter snapshot from the best epoch, if any epoch has been
    /// observed.
    pub fn best(&self) -> Option<&ParamSet> {
        self.best_params.as_ref()
    }

    /// Consumes the monitor, returning the best snapshot (falling back to
    /// `current` when no epoch was observed).
    pub fn into_best(self, current: ParamSet) -> ParamSet {
        self.best_params.unwrap_or(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use env2vec_linalg::Matrix;

    #[test]
    fn batches_cover_all_indices_exactly_once() {
        let batches = shuffled_batches(10, 3, 42);
        assert_eq!(batches.len(), 4);
        let mut all: Vec<usize> = batches.concat();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        // Last batch is the remainder.
        assert_eq!(batches.last().unwrap().len(), 1);
    }

    #[test]
    fn batches_deterministic_per_seed() {
        assert_eq!(shuffled_batches(20, 4, 7), shuffled_batches(20, 4, 7));
        assert_ne!(shuffled_batches(20, 4, 7), shuffled_batches(20, 4, 8));
    }

    #[test]
    fn zero_batch_size_is_full_batch_and_empty_is_empty() {
        let b = shuffled_batches(5, 0, 1);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].len(), 5);
        assert!(shuffled_batches(0, 4, 1).is_empty());
    }

    fn params_with(v: f64) -> ParamSet {
        let mut ps = ParamSet::new();
        ps.add("w", Matrix::filled(1, 1, v)).unwrap();
        ps
    }

    #[test]
    fn stops_after_patience_and_restores_best() {
        let mut es = EarlyStopping::new(2, 0.0);
        assert!(!es.observe(1.0, &params_with(1.0)));
        assert!(!es.observe(0.5, &params_with(2.0))); // best epoch
        assert!(!es.observe(0.6, &params_with(3.0))); // 1 bad epoch
        assert!(es.observe(0.7, &params_with(4.0))); // 2 bad epochs → stop
        assert_eq!(es.best_loss(), 0.5);
        let best = es.into_best(params_with(99.0));
        assert_eq!(best.value(best.find("w").unwrap()).get(0, 0), 2.0);
    }

    #[test]
    fn min_delta_requires_meaningful_improvement() {
        let mut es = EarlyStopping::new(1, 0.1);
        assert!(!es.observe(1.0, &params_with(1.0)));
        // 0.95 improves by less than min_delta → counts as no improvement.
        assert!(es.observe(0.95, &params_with(2.0)));
        assert_eq!(es.best_loss(), 1.0);
    }

    #[test]
    fn grad_norm_is_global_l2() {
        let grads = vec![Matrix::filled(1, 2, 3.0), Matrix::filled(1, 1, 4.0)];
        // sqrt(9 + 9 + 16) = sqrt(34)
        assert!((grad_norm(&grads) - 34f64.sqrt()).abs() < 1e-12);
        assert_eq!(grad_norm(&[]), 0.0);
    }

    #[test]
    fn null_observer_accepts_all_hooks() {
        let mut obs = NullObserver;
        obs.on_epoch(0, 1.0, 0.5);
        obs.on_epoch_stats(&EpochStats {
            epoch: 0,
            val_loss: 1.0,
            grad_norm: 0.5,
            param_norm: 2.0,
            update_norm: 0.1,
            update_ratio: 0.05,
            embedding_drift: 0.0,
            val_loss_delta: 0.0,
            best_val_loss: 1.0,
        });
        obs.on_early_stop(3);
        obs.on_complete(2, true);
    }

    #[test]
    fn param_norm_and_distance_are_global_l2() {
        let mut a = ParamSet::new();
        a.add("em.vnf", Matrix::filled(1, 2, 3.0)).unwrap();
        a.add("dense.w", Matrix::filled(1, 1, 4.0)).unwrap();
        // sqrt(9 + 9 + 16) = sqrt(34)
        assert!((param_norm(&a) - 34f64.sqrt()).abs() < 1e-12);

        let mut b = ParamSet::new();
        b.add("em.vnf", Matrix::filled(1, 2, 3.0)).unwrap();
        b.add("dense.w", Matrix::filled(1, 1, 1.0)).unwrap();
        // Only dense.w moved, by 3.
        assert!((param_distance(&a, &b) - 3.0).abs() < 1e-12);
        // Restricting to embedding tables sees no movement.
        assert_eq!(
            param_distance_filtered(&a, &b, |n| n.starts_with("em.")),
            0.0
        );
    }

    #[test]
    fn param_distance_skips_mismatched_layouts() {
        let mut a = ParamSet::new();
        a.add("w", Matrix::filled(1, 1, 1.0)).unwrap();
        let mut b = ParamSet::new();
        b.add("other", Matrix::filled(1, 1, 9.0)).unwrap();
        assert_eq!(param_distance(&a, &b), 0.0);
        let mut c = ParamSet::new();
        c.add("w", Matrix::filled(2, 2, 1.0)).unwrap();
        assert_eq!(param_distance(&a, &c), 0.0);
    }

    #[test]
    fn into_best_falls_back_to_current() {
        let es = EarlyStopping::new(3, 0.0);
        let fallback = es.into_best(params_with(7.0));
        assert_eq!(fallback.value(fallback.find("w").unwrap()).get(0, 0), 7.0);
    }
}
