//! Mini-batching and early stopping.
//!
//! The paper regularises with dropout plus "an early stopping strategy,
//! which stops the training if there is no improvement on a validation
//! set" (Appendix A.1). [`EarlyStopping`] implements that rule with a
//! patience window and best-weights restoration; [`shuffled_batches`]
//! provides seeded mini-batch index sets so training is reproducible.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use env2vec_linalg::Matrix;

use crate::params::ParamSet;

/// Read-only hooks into a training loop.
///
/// Implementations receive values the loop already computes — they must
/// not (and cannot, through this interface) influence batching, RNG
/// streams, or parameter updates, so an observed run is numerically
/// identical to an unobserved one.
pub trait TrainObserver {
    /// One epoch finished. `grad_norm` is the global L2 norm of the last
    /// mini-batch's gradients (a cheap divergence/vanishing signal).
    fn on_epoch(&mut self, epoch: usize, val_loss: f64, grad_norm: f64) {
        let _ = (epoch, val_loss, grad_norm);
    }

    /// Early stopping fired after `epoch`.
    fn on_early_stop(&mut self, epoch: usize) {
        let _ = epoch;
    }

    /// Training finished; `best_epoch` indexes the kept parameters.
    fn on_complete(&mut self, best_epoch: usize, stopped_early: bool) {
        let _ = (best_epoch, stopped_early);
    }
}

/// The do-nothing observer used by un-instrumented training entry points.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl TrainObserver for NullObserver {}

/// Global L2 norm across a gradient set (the scalar observers receive).
pub fn grad_norm(grads: &[Matrix]) -> f64 {
    grads
        .iter()
        .flat_map(|g| g.as_slice())
        .map(|&v| v * v)
        .sum::<f64>()
        .sqrt()
}

/// Splits `0..n` into shuffled mini-batches of at most `batch_size`.
///
/// An empty dataset yields no batches; `batch_size == 0` is treated as one
/// full batch.
pub fn shuffled_batches(n: usize, batch_size: usize, seed: u64) -> Vec<Vec<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let batch_size = if batch_size == 0 { n } else { batch_size };
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    idx.chunks(batch_size).map(<[usize]>::to_vec).collect()
}

/// Early-stopping monitor with best-weights checkpointing.
#[derive(Debug, Clone)]
pub struct EarlyStopping {
    patience: usize,
    min_delta: f64,
    best_loss: f64,
    best_params: Option<ParamSet>,
    epochs_without_improvement: usize,
}

impl EarlyStopping {
    /// Creates a monitor that stops after `patience` consecutive epochs
    /// without the validation loss improving by at least `min_delta`.
    pub fn new(patience: usize, min_delta: f64) -> Self {
        EarlyStopping {
            patience,
            min_delta,
            best_loss: f64::INFINITY,
            best_params: None,
            epochs_without_improvement: 0,
        }
    }

    /// Records one epoch's validation loss; returns `true` when training
    /// should stop.
    ///
    /// The parameter snapshot accompanying the best loss so far is kept for
    /// [`EarlyStopping::best`].
    pub fn observe(&mut self, val_loss: f64, params: &ParamSet) -> bool {
        if val_loss < self.best_loss - self.min_delta {
            self.best_loss = val_loss;
            self.best_params = Some(params.clone());
            self.epochs_without_improvement = 0;
        } else {
            self.epochs_without_improvement += 1;
        }
        self.epochs_without_improvement >= self.patience
    }

    /// Best validation loss seen so far (`+inf` before the first epoch).
    pub fn best_loss(&self) -> f64 {
        self.best_loss
    }

    /// The parameter snapshot from the best epoch, if any epoch has been
    /// observed.
    pub fn best(&self) -> Option<&ParamSet> {
        self.best_params.as_ref()
    }

    /// Consumes the monitor, returning the best snapshot (falling back to
    /// `current` when no epoch was observed).
    pub fn into_best(self, current: ParamSet) -> ParamSet {
        self.best_params.unwrap_or(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use env2vec_linalg::Matrix;

    #[test]
    fn batches_cover_all_indices_exactly_once() {
        let batches = shuffled_batches(10, 3, 42);
        assert_eq!(batches.len(), 4);
        let mut all: Vec<usize> = batches.concat();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        // Last batch is the remainder.
        assert_eq!(batches.last().unwrap().len(), 1);
    }

    #[test]
    fn batches_deterministic_per_seed() {
        assert_eq!(shuffled_batches(20, 4, 7), shuffled_batches(20, 4, 7));
        assert_ne!(shuffled_batches(20, 4, 7), shuffled_batches(20, 4, 8));
    }

    #[test]
    fn zero_batch_size_is_full_batch_and_empty_is_empty() {
        let b = shuffled_batches(5, 0, 1);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].len(), 5);
        assert!(shuffled_batches(0, 4, 1).is_empty());
    }

    fn params_with(v: f64) -> ParamSet {
        let mut ps = ParamSet::new();
        ps.add("w", Matrix::filled(1, 1, v)).unwrap();
        ps
    }

    #[test]
    fn stops_after_patience_and_restores_best() {
        let mut es = EarlyStopping::new(2, 0.0);
        assert!(!es.observe(1.0, &params_with(1.0)));
        assert!(!es.observe(0.5, &params_with(2.0))); // best epoch
        assert!(!es.observe(0.6, &params_with(3.0))); // 1 bad epoch
        assert!(es.observe(0.7, &params_with(4.0))); // 2 bad epochs → stop
        assert_eq!(es.best_loss(), 0.5);
        let best = es.into_best(params_with(99.0));
        assert_eq!(best.value(best.find("w").unwrap()).get(0, 0), 2.0);
    }

    #[test]
    fn min_delta_requires_meaningful_improvement() {
        let mut es = EarlyStopping::new(1, 0.1);
        assert!(!es.observe(1.0, &params_with(1.0)));
        // 0.95 improves by less than min_delta → counts as no improvement.
        assert!(es.observe(0.95, &params_with(2.0)));
        assert_eq!(es.best_loss(), 1.0);
    }

    #[test]
    fn grad_norm_is_global_l2() {
        let grads = vec![Matrix::filled(1, 2, 3.0), Matrix::filled(1, 1, 4.0)];
        // sqrt(9 + 9 + 16) = sqrt(34)
        assert!((grad_norm(&grads) - 34f64.sqrt()).abs() < 1e-12);
        assert_eq!(grad_norm(&[]), 0.0);
    }

    #[test]
    fn null_observer_accepts_all_hooks() {
        let mut obs = NullObserver;
        obs.on_epoch(0, 1.0, 0.5);
        obs.on_early_stop(3);
        obs.on_complete(2, true);
    }

    #[test]
    fn into_best_falls_back_to_current() {
        let es = EarlyStopping::new(3, 0.0);
        let fallback = es.into_best(params_with(7.0));
        assert_eq!(fallback.value(fallback.find("w").unwrap()).get(0, 0), 7.0);
    }
}
