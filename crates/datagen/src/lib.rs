//! Synthetic dataset generators for the Env2Vec reproduction.
//!
//! Neither of the paper's data sources is available: the KDN benchmark
//! traces (knowledgedefinednetworking.org) are no longer distributed in
//! the form the paper used, and the telecom testing dataset is Nokia
//! proprietary. Per the substitution policy in `DESIGN.md`, this crate
//! generates synthetic equivalents that exercise the same code paths and
//! preserve the *relative* behaviour the paper's evaluation measures:
//!
//! - [`kdn`]: three VNF datasets (Snort, SDN-firewall, SDN-switch) with 86
//!   correlated traffic features in 20-second batches and per-VNF
//!   nonlinear CPU-response models, matching the paper's Table 3 split
//!   sizes and the reported CPU mean/σ of each dataset. Snort and the
//!   firewall respond nonlinearly (so neural models win, Table 4) while
//!   the switch is near-linear with strong temporal carry-over (so
//!   `Ridge_ts` wins on it, as in the paper).
//! - [`telecom`]: a carrier-grade testing universe — testbeds, systems
//!   under test, test cases and build types per the paper's Table 1 —
//!   producing 125 build chains of contextual time series whose response
//!   functions *factorise over the EM labels*, the property that makes
//!   environment embeddings learnable. A fault injector adds labelled CPU
//!   anomalies (spikes, level shifts, drifts, saturations) standing in for
//!   the engineer-labelled problems of §4.2.2.
//! - [`process`]: small stochastic-process helpers (AR(1) noise, diurnal
//!   and bursty workload curves) shared by both generators.
//!
//! Everything is seeded and deterministic.

#![warn(missing_docs)]

pub mod kdn;
pub mod process;
pub mod telecom;
