//! Stochastic-process helpers shared by the generators.

use rand::Rng;

/// First-order autoregressive noise: `x_t = φ x_{t-1} + σ ε_t` with
/// `ε_t ~ U(-1, 1)` (bounded innovations keep synthetic CPU in range).
///
/// Returns `n` samples starting from `x_0 = 0`.
pub fn ar1(rng: &mut impl Rng, n: usize, phi: f64, sigma: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    let mut x = 0.0;
    for _ in 0..n {
        x = phi * x + sigma * rng.gen_range(-1.0..1.0);
        out.push(x);
    }
    out
}

/// A diurnal (daily) load curve sampled every `step_minutes`, in `[0, 1]`:
/// low at night, peaking mid-day, with a secondary evening bump.
pub fn diurnal(n: usize, step_minutes: f64, phase_minutes: f64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let minutes = i as f64 * step_minutes + phase_minutes;
            let day_frac = (minutes / (24.0 * 60.0)).fract();
            let main = (std::f64::consts::TAU * (day_frac - 0.25)).sin().max(0.0);
            let evening = 0.4
                * (std::f64::consts::TAU * 2.0 * (day_frac - 0.35))
                    .sin()
                    .max(0.0);
            (0.15 + 0.7 * main + evening).min(1.0)
        })
        .collect()
}

/// Self-similar bursty traffic in `[0, 1]`: superposition of on/off bursts
/// at several timescales, the classic heavy-tailed traffic approximation.
pub fn bursty(rng: &mut impl Rng, n: usize) -> Vec<f64> {
    let mut out: Vec<f64> = vec![0.2; n];
    for scale in [4usize, 16, 64] {
        let mut level = 0.0;
        let mut remaining = 0usize;
        for x in out.iter_mut() {
            if remaining == 0 {
                remaining = rng.gen_range(1..=scale);
                level = if rng.gen_bool(0.4) {
                    rng.gen_range(0.1..0.4)
                } else {
                    0.0
                };
            }
            remaining -= 1;
            *x += level;
        }
    }
    for x in &mut out {
        *x = (*x).min(1.0);
    }
    out
}

/// A surge profile in `[0, 1]`: baseline load with one steep ramp-up and
/// decay, as in form-factor "surge" test cases.
pub fn surge(n: usize, peak_at: usize, width: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let d = i as f64 - peak_at as f64;
            let w = width.max(1) as f64;
            0.2 + 0.8 * (-0.5 * (d / w) * (d / w)).exp()
        })
        .collect()
}

/// A step-load profile in `[0, 1]`: load increases in `steps` plateaus, as
/// in capacity/load test cases.
pub fn step_load(n: usize, steps: usize) -> Vec<f64> {
    let steps = steps.max(1);
    (0..n)
        .map(|i| {
            let stage = (i * steps) / n.max(1);
            0.2 + 0.8 * (stage as f64 + 1.0) / steps as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn ar1_is_bounded_and_autocorrelated() {
        let xs = ar1(&mut rng(), 2000, 0.9, 1.0);
        // Stationary bound: |x| <= σ/(1-φ).
        assert!(xs.iter().all(|x| x.abs() <= 10.0 + 1e-9));
        // Lag-1 autocorrelation near φ.
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
        let cov: f64 = xs.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum();
        let rho = cov / var;
        assert!((rho - 0.9).abs() < 0.1, "autocorrelation {rho}");
    }

    #[test]
    fn diurnal_period_is_one_day() {
        // 15-minute cadence → 96 samples per day.
        let two_days = diurnal(192, 15.0, 0.0);
        for i in 0..96 {
            assert!((two_days[i] - two_days[i + 96]).abs() < 1e-9);
        }
        assert!(two_days.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // There is real day/night contrast.
        let max = two_days.iter().cloned().fold(0.0f64, f64::max);
        let min = two_days.iter().cloned().fold(1.0f64, f64::min);
        assert!(max - min > 0.5);
    }

    #[test]
    fn diurnal_phase_shifts_curve() {
        let a = diurnal(96, 15.0, 0.0);
        let b = diurnal(96, 15.0, 6.0 * 60.0);
        assert_ne!(a, b);
        // Phase of 24 h is identity.
        let c = diurnal(96, 15.0, 24.0 * 60.0);
        for (x, y) in a.iter().zip(&c) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn bursty_in_range_with_variance() {
        let xs = bursty(&mut rng(), 1000);
        assert!(xs.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(var > 0.005, "bursty variance {var}");
    }

    #[test]
    fn surge_peaks_at_requested_position() {
        let xs = surge(100, 60, 10);
        let peak = xs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 60);
        assert!(xs.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn step_load_is_monotone_nondecreasing() {
        let xs = step_load(100, 5);
        assert!(xs.windows(2).all(|w| w[1] >= w[0] - 1e-12));
        assert!(xs[0] < xs[99]);
    }
}
