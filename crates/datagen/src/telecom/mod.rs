//! Synthetic carrier-grade VNF testing dataset.
//!
//! Stands in for the paper's proprietary telecom data (§4.2.1): "125 build
//! chains for multiple combinations of testbed, build type, SUT, and test
//! case, ... about 400,000 timesteps/data points measured at 15 minute
//! intervals". Each build chain fixes a `(testbed, SUT, test case)`
//! environment and runs successive software builds through it; every
//! execution produces a contextual time series (workload + performance
//! metrics) and the CPU usage of the network function.
//!
//! The generator's key property is that the CPU response **factorises over
//! the environment-metadata labels**: a per-SUT nonlinear response, scaled
//! by a per-testbed capacity, shaped by the test case's workload profile,
//! and multiplied by a per-build-type cost factor. Environments sharing
//! labels therefore behave similarly — exactly the structure environment
//! embeddings exist to exploit, and the reason Figure 6's clusters are
//! organised by build type (the dominant factor here, as in the paper).
//!
//! Ground-truth performance problems come from [`faults`]: CPU-only
//! perturbations (spikes, level shifts, drifts, saturations) that no
//! contextual feature explains, standing in for the engineer-labelled
//! problems of §4.2.2.

pub mod faults;
pub mod generator;
pub mod metadata;
pub mod workload;

pub use faults::{FaultKind, FaultWindow};
pub use generator::{BuildChain, Execution, TelecomConfig, TelecomDataset};
pub use metadata::{BuildType, EmLabels, Universe};
pub use workload::{ContextualFeatures, NUM_CF};
