//! Workload and performance metrics (the contextual features).
//!
//! The paper's dataframe (Table 2) feeds the model workload metrics (WMs:
//! client UEs, burst period, demand) and performance metrics (PMs: success
//! ratios, error response codes, packet counters). This module produces a
//! per-timestep [`ContextualFeatures`] matrix from a test case's load
//! profile: the test case determines the *shape* of the offered load, the
//! WMs describe it, and the PMs react to the (clean) CPU level so the
//! feature set is realistically interdependent.

use env2vec_linalg::Matrix;
use rand::Rng;

use crate::process;

/// Number of contextual features per timestep.
pub const NUM_CF: usize = 14;

/// Names of the contextual features, in column order.
pub const CF_NAMES: [&str; NUM_CF] = [
    "client_ue",
    "burst_period",
    "demand_mbps",
    "session_rate",
    "active_sessions",
    "handover_rate",
    "success_ratio",
    "response_code_50x",
    "packet_tx",
    "packet_rx",
    "latency_ms",
    "retransmissions",
    "cpu_steal",
    "io_wait",
];

/// The latent offered-load series plus the observable CF matrix.
#[derive(Debug, Clone)]
pub struct ContextualFeatures {
    /// Normalised offered load per timestep, in `[0, 1]`.
    pub load: Vec<f64>,
    /// Burstiness level per timestep, in `[0, 1]`.
    pub burstiness: Vec<f64>,
    /// `steps x NUM_CF` observable feature matrix.
    pub matrix: Matrix,
}

/// Builds the offered-load profile for a test case.
///
/// Unknown test-case names get the endurance (constant) profile.
pub fn load_profile(rng: &mut impl Rng, testcase: &str, steps: usize) -> Vec<f64> {
    let kind = testcase.strip_prefix("Testcase_").unwrap_or(testcase);
    match kind {
        "Endurance" => vec![0.6; steps],
        "Load" => process::step_load(steps, 5),
        "Regression" => process::diurnal(steps, 15.0, 0.0),
        "Volume" => process::surge(steps, steps * 2 / 3, steps / 10),
        "Stress" => vec![0.9; steps],
        "Spike" => process::surge(steps, steps / 2, (steps / 40).max(1)),
        "Capacity" => process::step_load(steps, 8),
        "Failover" => {
            // Load halves mid-run (node failover) then recovers.
            (0..steps)
                .map(|i| {
                    if i > steps / 2 && i < steps / 2 + steps / 8 {
                        0.35
                    } else {
                        0.7
                    }
                })
                .collect()
        }
        _ => vec![0.6; steps],
    }
    .into_iter()
    .zip(process::ar1(rng, steps, 0.8, 0.02))
    .map(|(base, jitter)| (base + jitter).clamp(0.02, 1.0))
    .collect()
}

/// Generates the full CF matrix given the load profile and the *clean* CPU
/// series (PMs degrade as CPU saturates).
pub fn contextual_features(
    rng: &mut impl Rng,
    load: &[f64],
    clean_cpu: &[f64],
) -> ContextualFeatures {
    let steps = load.len();
    assert_eq!(steps, clean_cpu.len(), "load/cpu length mismatch");
    let burst = process::bursty(rng, steps);
    let mut rows = Vec::with_capacity(steps);
    for t in 0..steps {
        let l = load[t];
        let b = burst[t];
        let cpu = clean_cpu[t];
        let jitter = |mut rng: &mut dyn rand::RngCore, scale: f64| {
            1.0 + scale * (rng.gen_range(0.0..2.0) - 1.0)
        };
        // Congestion factor: PMs degrade smoothly above ~80% CPU.
        let congestion = ((cpu - 80.0) / 20.0).clamp(0.0, 1.0);
        let row = vec![
            (5000.0 * l * jitter(rng, 0.02)).round(),        // client_ue
            2.0 + 8.0 * b * jitter(rng, 0.03),               // burst_period
            900.0 * l * (1.0 + 0.3 * b) * jitter(rng, 0.02), // demand_mbps
            120.0 * l * jitter(rng, 0.03),                   // session_rate
            (20000.0 * l * jitter(rng, 0.02)).round(),       // active_sessions
            15.0 * l * b * jitter(rng, 0.05),                // handover_rate
            (0.999 - 0.05 * congestion) * jitter(rng, 0.001), // success_ratio
            (40.0 * congestion + 0.5) * jitter(rng, 0.3),    // response_code_50x
            (2.0e6 * l * jitter(rng, 0.015)).round(),        // packet_tx
            (1.9e6 * l * jitter(rng, 0.015)).round(),        // packet_rx
            8.0 + 30.0 * congestion + 4.0 * b,               // latency_ms
            (500.0 * congestion + 20.0 * b) * jitter(rng, 0.2), // retransmissions
            2.0 * rng.gen_range(0.0..1.0),                   // cpu_steal
            1.0 + 3.0 * congestion * jitter(rng, 0.2),       // io_wait
        ];
        rows.push(row);
    }
    ContextualFeatures {
        load: load.to_vec(),
        burstiness: burst,
        // envlint: allow(no-panic) — every row above is the same fixed-size
        // array literal, so the widths cannot disagree.
        matrix: Matrix::from_rows(&rows).expect("fixed-width rows"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(4)
    }

    #[test]
    fn profiles_are_bounded_and_shaped() {
        let mut r = rng();
        for tc in crate::telecom::metadata::TESTCASE_KINDS {
            let p = load_profile(&mut r, &format!("Testcase_{tc}"), 200);
            assert_eq!(p.len(), 200);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)), "{tc}");
        }
        // Load profile is increasing on average; endurance is flat.
        let load = load_profile(&mut r, "Testcase_Load", 200);
        let endurance = load_profile(&mut r, "Testcase_Endurance", 200);
        let first_half = |p: &[f64]| p[..100].iter().sum::<f64>() / 100.0;
        let second_half = |p: &[f64]| p[100..].iter().sum::<f64>() / 100.0;
        assert!(second_half(&load) - first_half(&load) > 0.2);
        assert!((second_half(&endurance) - first_half(&endurance)).abs() < 0.1);
    }

    #[test]
    fn unknown_testcase_falls_back_to_endurance_shape() {
        let p = load_profile(&mut rng(), "Testcase_Mystery", 100);
        let mean: f64 = p.iter().sum::<f64>() / 100.0;
        assert!((mean - 0.6).abs() < 0.1);
    }

    #[test]
    fn cf_matrix_shape_and_names_agree() {
        let mut r = rng();
        let load = load_profile(&mut r, "Testcase_Regression", 96);
        let cpu = vec![50.0; 96];
        let cf = contextual_features(&mut r, &load, &cpu);
        assert_eq!(cf.matrix.shape(), (96, NUM_CF));
        assert_eq!(CF_NAMES.len(), NUM_CF);
        assert!(cf.matrix.is_finite());
    }

    #[test]
    fn demand_tracks_load() {
        let mut r = rng();
        let load = load_profile(&mut r, "Testcase_Load", 300);
        let cpu = vec![40.0; 300];
        let cf = contextual_features(&mut r, &load, &cpu);
        let demand = cf.matrix.col(2);
        let corr = env2vec_linalg::stats::pearson(&demand, &load).unwrap();
        assert!(corr > 0.9, "demand/load correlation {corr}");
    }

    #[test]
    fn congestion_degrades_pms() {
        let mut r = rng();
        let load = vec![0.6; 200];
        let low_cpu = vec![40.0; 200];
        let high_cpu = vec![95.0; 200];
        let low = contextual_features(&mut r, &load, &low_cpu);
        let high = contextual_features(&mut r, &load, &high_cpu);
        let mean = |m: &Matrix, col: usize| m.col(col).iter().sum::<f64>() / 200.0;
        // success_ratio drops, 50x codes and latency rise.
        assert!(mean(&high.matrix, 6) < mean(&low.matrix, 6));
        assert!(mean(&high.matrix, 7) > mean(&low.matrix, 7));
        assert!(mean(&high.matrix, 10) > mean(&low.matrix, 10));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut r = rng();
        contextual_features(&mut r, &[0.5; 10], &[50.0; 5]);
    }
}
