//! Environment-metadata universe.
//!
//! Models Table 1 of the paper: every testbed carries hardware,
//! virtualisation and OS metadata; systems under test and test cases come
//! from fixed catalogues; builds are a type letter plus a version number
//! (`S08`, `D02`, ...). An environment, as in §3.1, is the tuple
//! `<Testbed_ID, SUT_Mod, Testcase_ID, Build_vers>`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Build type letter, the dominant behavioural factor (Figure 6 clusters
/// by it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BuildType {
    /// Debug build: instrumentation overhead, highest CPU cost.
    Debug,
    /// Test build: assertions enabled.
    Test,
    /// Beta build.
    Beta,
    /// Stable build: the reference cost.
    Stable,
    /// Release candidate: mildest cost.
    Rc,
}

impl BuildType {
    /// All build types.
    pub const ALL: [BuildType; 5] = [
        BuildType::Debug,
        BuildType::Test,
        BuildType::Beta,
        BuildType::Stable,
        BuildType::Rc,
    ];

    /// Single-letter code used in build labels (`S08`, `D02`, ...).
    pub fn letter(self) -> char {
        match self {
            BuildType::Debug => 'D',
            BuildType::Test => 'T',
            BuildType::Beta => 'B',
            BuildType::Stable => 'S',
            BuildType::Rc => 'R',
        }
    }

    /// Parses the leading letter of a build label.
    pub fn from_letter(c: char) -> Option<BuildType> {
        match c {
            'D' => Some(BuildType::Debug),
            'T' => Some(BuildType::Test),
            'B' => Some(BuildType::Beta),
            'S' => Some(BuildType::Stable),
            'R' => Some(BuildType::Rc),
            _ => None,
        }
    }

    /// CPU-cost multiplier relative to a stable build.
    pub fn cost_multiplier(self) -> f64 {
        match self {
            BuildType::Debug => 1.45,
            BuildType::Test => 1.2,
            BuildType::Beta => 1.08,
            BuildType::Stable => 1.0,
            BuildType::Rc => 0.93,
        }
    }

    /// Formats a build label such as `S08`.
    pub fn label(self, version: u32) -> String {
        format!("{}{version:02}", self.letter())
    }
}

/// The four EM values identifying one environment (§3.1's representative
/// tuple).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EmLabels {
    /// Testbed identifier, e.g. `Testbed_13`.
    pub testbed: String,
    /// System under test, e.g. `SUT_DB`.
    pub sut: String,
    /// Test case, e.g. `Testcase_Endurance`.
    pub testcase: String,
    /// Build label, e.g. `S08`.
    pub build: String,
}

impl EmLabels {
    /// Build type parsed from the build label, if recognisable.
    pub fn build_type(&self) -> Option<BuildType> {
        self.build.chars().next().and_then(BuildType::from_letter)
    }

    /// The four values in feature order `(testbed, sut, testcase, build)`.
    pub fn values(&self) -> [&str; 4] {
        [&self.testbed, &self.sut, &self.testcase, &self.build]
    }
}

/// Hardware/stack description of one testbed (a row of the paper's
/// Table 1 columns 1–3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Testbed {
    /// Identifier, e.g. `Testbed_07`.
    pub id: String,
    /// CPU clock in GHz.
    pub cpu_ghz: f64,
    /// Core count.
    pub cores: u32,
    /// RAM in GB.
    pub ram_gb: u32,
    /// Whether DPDK fast-path is enabled.
    pub dpdk: bool,
    /// Whether SR-IOV is enabled.
    pub sriov: bool,
    /// Whether CPU pinning is configured.
    pub cpu_pinning: bool,
    /// Hypervisor name and version.
    pub hypervisor: String,
    /// Kernel version string.
    pub kernel: String,
    /// Effective capacity multiplier derived from the hardware (higher
    /// capacity → lower CPU utilisation for the same load).
    pub capacity: f64,
}

/// Catalogue of testbeds, SUTs and test cases from which environments are
/// drawn.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Universe {
    /// Available testbeds with their metadata.
    pub testbeds: Vec<Testbed>,
    /// System-under-test module names.
    pub suts: Vec<String>,
    /// Test-case names.
    pub testcases: Vec<String>,
}

/// The SUT catalogue (module kinds with distinct response shapes).
pub const SUT_KINDS: [&str; 6] = ["DB", "FW", "LB", "MEDIA", "SIG", "AN"];

/// The test-case catalogue (workload shapes per §2/Table 1's last column).
pub const TESTCASE_KINDS: [&str; 8] = [
    "Endurance",
    "Load",
    "Regression",
    "Volume",
    "Stress",
    "Spike",
    "Capacity",
    "Failover",
];

impl Universe {
    /// Generates a universe of `num_testbeds` testbeds with randomised but
    /// plausible hardware metadata.
    pub fn generate(num_testbeds: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let hypervisors = ["ESXi 6.5", "ESXi 6.7", "KVM 4.2", "KVM 5.0"];
        let kernels = ["Linux 4.15", "Linux 5.3.7", "Linux 5.4.2"];
        let testbeds = (0..num_testbeds)
            .map(|i| {
                let cpu_ghz = [2.1, 2.4, 2.6, 3.0, 3.4, 4.0][rng.gen_range(0..6)];
                let cores = [8u32, 16, 24, 32, 48][rng.gen_range(0..5)];
                let ram_gb = [32u32, 64, 128, 256][rng.gen_range(0..4)];
                let dpdk = rng.gen_bool(0.5);
                let sriov = rng.gen_bool(0.4);
                let cpu_pinning = rng.gen_bool(0.5);
                // Capacity grows with clock/cores and fast-path features.
                let capacity = (cpu_ghz / 2.6)
                    * (cores as f64 / 24.0).powf(0.35)
                    * if dpdk { 1.15 } else { 1.0 }
                    * if sriov { 1.05 } else { 1.0 }
                    * if cpu_pinning { 1.08 } else { 1.0 };
                Testbed {
                    id: format!("Testbed_{i:02}"),
                    cpu_ghz,
                    cores,
                    ram_gb,
                    dpdk,
                    sriov,
                    cpu_pinning,
                    hypervisor: hypervisors[rng.gen_range(0..hypervisors.len())].to_string(),
                    kernel: kernels[rng.gen_range(0..kernels.len())].to_string(),
                    capacity,
                }
            })
            .collect();
        Universe {
            testbeds,
            suts: SUT_KINDS.iter().map(|s| format!("SUT_{s}")).collect(),
            testcases: TESTCASE_KINDS
                .iter()
                .map(|t| format!("Testcase_{t}"))
                .collect(),
        }
    }

    /// Looks up a testbed by id.
    pub fn testbed(&self, id: &str) -> Option<&Testbed> {
        self.testbeds.iter().find(|t| t.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_labels_round_trip() {
        for bt in BuildType::ALL {
            let label = bt.label(8);
            assert_eq!(label.len(), 3);
            assert_eq!(BuildType::from_letter(bt.letter()), Some(bt));
        }
        assert_eq!(BuildType::Stable.label(8), "S08");
        assert_eq!(BuildType::from_letter('X'), None);
    }

    #[test]
    fn debug_costs_more_than_stable_and_rc() {
        assert!(BuildType::Debug.cost_multiplier() > BuildType::Stable.cost_multiplier());
        assert!(BuildType::Stable.cost_multiplier() > BuildType::Rc.cost_multiplier());
    }

    #[test]
    fn em_labels_expose_build_type_and_values() {
        let em = EmLabels {
            testbed: "Testbed_13".into(),
            sut: "SUT_FW".into(),
            testcase: "Testcase_Endurance".into(),
            build: "D02".into(),
        };
        assert_eq!(em.build_type(), Some(BuildType::Debug));
        assert_eq!(em.values()[0], "Testbed_13");
        assert_eq!(em.values()[3], "D02");
    }

    #[test]
    fn universe_has_requested_shape() {
        let u = Universe::generate(20, 3);
        assert_eq!(u.testbeds.len(), 20);
        assert_eq!(u.suts.len(), 6);
        assert_eq!(u.testcases.len(), 8);
        assert!(u.testbed("Testbed_05").is_some());
        assert!(u.testbed("Testbed_99").is_none());
    }

    #[test]
    fn universe_deterministic_and_capacity_positive() {
        let a = Universe::generate(10, 9);
        let b = Universe::generate(10, 9);
        for (x, y) in a.testbeds.iter().zip(&b.testbeds) {
            assert_eq!(x.capacity, y.capacity);
            assert!(x.capacity > 0.3 && x.capacity < 3.0);
        }
    }

    #[test]
    fn dpdk_testbeds_have_higher_capacity_all_else_equal() {
        // Construct two identical testbeds differing only in DPDK.
        let base = Testbed {
            id: "t".into(),
            cpu_ghz: 2.6,
            cores: 24,
            ram_gb: 64,
            dpdk: false,
            sriov: false,
            cpu_pinning: false,
            hypervisor: "KVM 5.0".into(),
            kernel: "Linux 5.3.7".into(),
            capacity: 1.0,
        };
        // The capacity formula multiplies 1.15 for DPDK; verify the
        // documented relationship via Universe samples.
        let u = Universe::generate(200, 1);
        let avg = |flag: bool| {
            let xs: Vec<f64> = u
                .testbeds
                .iter()
                .filter(|t| t.dpdk == flag)
                .map(|t| {
                    t.capacity
                        / ((t.cpu_ghz / 2.6)
                            * (t.cores as f64 / 24.0).powf(0.35)
                            * if t.sriov { 1.05 } else { 1.0 }
                            * if t.cpu_pinning { 1.08 } else { 1.0 })
                })
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(avg(true) > avg(false));
        let _ = base;
    }
}
