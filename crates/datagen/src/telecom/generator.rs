//! Build-chain and execution generation.
//!
//! Assembles the pieces: sample `(testbed, SUT, test case)` combinations
//! into build chains, run a sequence of builds through each, and produce
//! per-execution contextual time series with a factorised CPU response:
//!
//! `cpu = 100 · clamp(base + shape_SUT(load, burst) · mult_build ·
//! factor_testcase / capacity_testbed) + AR noise`
//!
//! Faults are injected only into (a configurable fraction of) each chain's
//! *final* execution — the "new build" a testing engineer would be
//! screening — with ground-truth windows recorded on the execution.

use env2vec_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use super::faults::{self, FaultWindow};
use super::metadata::{BuildType, EmLabels, Universe};
use super::workload;
use crate::process;

/// Generation parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TelecomConfig {
    /// Number of distinct testbeds in the universe.
    pub num_testbeds: usize,
    /// Number of build chains (the paper has 125).
    pub num_chains: usize,
    /// Builds per chain (successive executions).
    pub builds_per_chain: usize,
    /// Timesteps per execution (15-minute cadence).
    pub steps_per_execution: usize,
    /// Fraction of final-build executions that receive injected faults.
    pub fault_fraction: f64,
    /// Faults attempted per faulty execution.
    pub faults_per_execution: usize,
    /// Injected magnitudes in CPU percentage points `(lo, hi)`.
    pub fault_magnitude: (f64, f64),
    /// Reserve the last testbed for chain 0 only, making it severely
    /// under-represented in training data — the situation behind the
    /// paper's Table 7, where the worst-screening execution ran on a
    /// testbed with almost no training coverage.
    pub rare_testbed: bool,
    /// Master seed.
    pub seed: u64,
}

impl TelecomConfig {
    /// The paper-scale dataset: 125 chains × 5 builds × 640 steps =
    /// 400,000 timesteps.
    pub fn paper() -> Self {
        TelecomConfig {
            num_testbeds: 20,
            num_chains: 125,
            builds_per_chain: 5,
            steps_per_execution: 640,
            fault_fraction: 0.5,
            faults_per_execution: 3,
            fault_magnitude: (7.0, 28.0),
            rare_testbed: true,
            seed: 2020,
        }
    }

    /// A reduced dataset with the same structure, for tests and the quick
    /// benchmark mode.
    pub fn small() -> Self {
        TelecomConfig {
            num_testbeds: 8,
            num_chains: 16,
            builds_per_chain: 3,
            steps_per_execution: 96,
            fault_fraction: 0.5,
            faults_per_execution: 2,
            fault_magnitude: (8.0, 25.0),
            rare_testbed: true,
            seed: 7,
        }
    }

    /// A mid-size dataset for the default benchmark harness: the full 125
    /// chains of the paper at a reduced per-execution length.
    pub fn medium() -> Self {
        TelecomConfig {
            num_chains: 125,
            steps_per_execution: 160,
            builds_per_chain: 4,
            ..TelecomConfig::paper()
        }
    }
}

/// One build's test execution within a chain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Execution {
    /// The full environment tuple for this execution.
    pub labels: EmLabels,
    /// Chain the execution belongs to.
    pub chain_id: usize,
    /// Position within the chain (0 = oldest build).
    pub build_seq: usize,
    /// `steps x NUM_CF` contextual features.
    pub cf: Matrix,
    /// Observed CPU per timestep (faults applied).
    pub cpu: Vec<f64>,
    /// CPU before fault injection (for diagnostics and tests).
    pub clean_cpu: Vec<f64>,
    /// Observed memory utilisation per timestep (§4.2 notes the approach
    /// covers "many types of resources such as CPU, memory and disk";
    /// memory carries its own fault channel, typically leak-style drifts).
    pub mem: Vec<f64>,
    /// Memory before fault injection.
    pub clean_mem: Vec<f64>,
    /// Ground-truth injected CPU problems (empty for healthy executions).
    pub faults: Vec<FaultWindow>,
    /// Ground-truth injected memory problems.
    pub mem_faults: Vec<FaultWindow>,
}

impl Execution {
    /// Number of timesteps.
    pub fn len(&self) -> usize {
        self.cpu.len()
    }

    /// Whether the execution is empty.
    pub fn is_empty(&self) -> bool {
        self.cpu.is_empty()
    }

    /// Whether this execution contains any injected problem.
    pub fn has_faults(&self) -> bool {
        !self.faults.is_empty()
    }
}

/// A build chain: fixed `(testbed, SUT, test case)` plus successive builds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BuildChain {
    /// Chain identifier (0-based).
    pub id: usize,
    /// Testbed id shared by every execution.
    pub testbed: String,
    /// SUT shared by every execution.
    pub sut: String,
    /// Test case shared by every execution.
    pub testcase: String,
    /// Build type tested by this chain.
    pub build_type: BuildType,
    /// Executions, oldest build first; the last one is the "new build".
    pub executions: Vec<Execution>,
}

impl BuildChain {
    /// The chain's most recent execution (the build under test).
    ///
    /// # Panics
    ///
    /// Panics when the chain has no executions (generation always creates
    /// at least one).
    pub fn current(&self) -> &Execution {
        // envlint: allow(no-panic) — documented `# Panics` contract:
        // generation always creates at least one execution.
        self.executions.last().expect("chains are non-empty")
    }

    /// The historical executions (everything but the current build).
    pub fn history(&self) -> &[Execution] {
        &self.executions[..self.executions.len() - 1]
    }
}

/// The generated dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TelecomDataset {
    /// EM universe the chains were drawn from.
    pub universe: Universe,
    /// All build chains.
    pub chains: Vec<BuildChain>,
    /// The configuration used.
    pub config: TelecomConfig,
}

impl TelecomDataset {
    /// Generates the dataset described by `config`.
    pub fn generate(config: TelecomConfig) -> Self {
        let universe = Universe::generate(config.num_testbeds, config.seed);
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x5851_f42d));
        let mut chains = Vec::with_capacity(config.num_chains);
        for id in 0..config.num_chains {
            // With `rare_testbed`, the last testbed belongs to chain 0
            // alone; every other chain draws from the remaining pool.
            let n_testbeds = universe.testbeds.len();
            let testbed = if config.rare_testbed && id == 0 {
                universe.testbeds[n_testbeds - 1].id.clone()
            } else {
                let pool = if config.rare_testbed {
                    n_testbeds - 1
                } else {
                    n_testbeds
                };
                universe.testbeds[rng.gen_range(0..pool)].id.clone()
            };
            let sut = universe.suts[rng.gen_range(0..universe.suts.len())].clone();
            let testcase = universe.testcases[rng.gen_range(0..universe.testcases.len())].clone();
            // Build-type mix: mostly stable chains, per real release flow.
            let build_type = match rng.gen_range(0..100) {
                0..=49 => BuildType::Stable,
                50..=64 => BuildType::Beta,
                65..=79 => BuildType::Debug,
                80..=89 => BuildType::Test,
                _ => BuildType::Rc,
            };
            let first_version = rng.gen_range(1..=8u32);
            // Chain 0 (the rare-testbed chain) is always screened with a
            // problem so the Table 7 analysis has its under-covered case.
            let faulty = (config.rare_testbed && id == 0) || rng.gen_bool(config.fault_fraction);
            let executions = (0..config.builds_per_chain)
                .map(|b| {
                    let labels = EmLabels {
                        testbed: testbed.clone(),
                        sut: sut.clone(),
                        testcase: testcase.clone(),
                        build: build_type.label(first_version + b as u32),
                    };
                    let inject = faulty && b + 1 == config.builds_per_chain;
                    generate_execution(&universe, &config, id, b, labels, inject)
                })
                .collect();
            chains.push(BuildChain {
                id,
                testbed,
                sut,
                testcase,
                build_type,
                executions,
            });
        }
        TelecomDataset {
            universe,
            chains,
            config,
        }
    }

    /// Total timesteps across all executions.
    pub fn total_timesteps(&self) -> usize {
        self.chains
            .iter()
            .flat_map(|c| c.executions.iter())
            .map(Execution::len)
            .sum()
    }

    /// Iterates over every execution in chain order.
    pub fn executions(&self) -> impl Iterator<Item = &Execution> {
        self.chains.iter().flat_map(|c| c.executions.iter())
    }

    /// Total number of ground-truth injected problems across all current
    /// builds.
    pub fn total_injected_problems(&self) -> usize {
        self.chains.iter().map(|c| c.current().faults.len()).sum()
    }
}

/// Deterministic per-execution seed.
fn execution_seed(master: u64, chain: usize, build: usize) -> u64 {
    master
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((chain as u64) << 20)
        .wrapping_add(build as u64)
}

/// Deterministic small multiplier from a label (environment idiosyncrasy).
fn label_factor(label: &str, spread: f64) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    1.0 + spread * (((h % 1000) as f64 / 1000.0) - 0.5)
}

/// Per-SUT response shape mapping `(load, burstiness)` to a unitless cost.
fn sut_response(sut: &str, load: f64, burst: f64) -> f64 {
    let kind = sut.strip_prefix("SUT_").unwrap_or(sut);
    match kind {
        // Database: superlinear in load (lock/IO contention).
        "DB" => 0.55 * load + 0.35 * load.powf(1.8) + 0.08 * load * burst,
        // Firewall: connection-table cost saturates.
        "FW" => 0.85 * (load / (0.3 + load)) + 0.05 * burst,
        // Load balancer: close to linear.
        "LB" => 0.78 * load + 0.05 * burst,
        // Media plane: strongly superlinear (transcoding).
        "MEDIA" => 0.5 * load + 0.4 * load.powf(1.5) + 0.06 * burst,
        // Signalling: quadratic in session pressure.
        "SIG" => 0.5 * load + 0.4 * load * load + 0.04 * burst,
        // Analytics: burst-dominated batch processing.
        "AN" => 0.45 * load + 0.25 * burst + 0.05 * load * burst,
        _ => 0.6 * load,
    }
}

/// Generates one execution for the given environment.
fn generate_execution(
    universe: &Universe,
    config: &TelecomConfig,
    chain_id: usize,
    build_seq: usize,
    labels: EmLabels,
    inject_faults: bool,
) -> Execution {
    let mut rng = StdRng::seed_from_u64(execution_seed(config.seed, chain_id, build_seq));
    let steps = config.steps_per_execution;
    let load = workload::load_profile(&mut rng, &labels.testcase, steps);
    let burst = process::bursty(&mut rng, steps);

    let capacity = universe
        .testbed(&labels.testbed)
        .map(|t| t.capacity)
        .unwrap_or(1.0);
    let build_type = labels.build_type().unwrap_or(BuildType::Stable);
    // Per-version drift: successive builds change cost slightly, so build
    // chains show real build-to-build evolution.
    let version_factor = label_factor(&labels.build, 0.03);
    let testcase_factor = label_factor(&labels.testcase, 0.2);
    let env_noise = label_factor(&format!("{}#{}", labels.testbed, labels.sut), 0.1);

    // Unmodelled infrastructure noise, kept well inside the 5-point
    // absolute alarm filter (stationary bound about +/-2 CPU points): in
    // the paper's data, healthy builds rarely deviate by 5+ points.
    let ar = process::ar1(&mut rng, steps, 0.6, 0.008);
    let clean_cpu: Vec<f64> = (0..steps)
        .map(|t| {
            let shape = sut_response(&labels.sut, load[t], burst[t]);
            let cost = 0.08
                + shape
                    * build_type.cost_multiplier()
                    * version_factor
                    * testcase_factor
                    * env_noise
                    / capacity;
            (100.0 * cost.clamp(0.01, 0.97) + 100.0 * ar[t]).clamp(1.0, 99.0)
        })
        .collect();

    // Contextual features react to the clean CPU (congestion effects).
    let cf = workload::contextual_features(&mut rng, &load, &clean_cpu);

    // Memory: a base working set plus session-driven pages and a slow,
    // benign sawtooth from periodic cache flushes. Memory draws come from
    // a forked RNG so adding this channel leaves the CPU stream (and the
    // documented experiment numbers) untouched.
    let mut mem_rng =
        StdRng::seed_from_u64(execution_seed(config.seed, chain_id, build_seq) ^ 0x6d656d);
    let mem_ar = process::ar1(&mut mem_rng, steps, 0.8, 0.004);
    let clean_mem: Vec<f64> = (0..steps)
        .map(|t| {
            let sessions = load[t];
            let sawtooth = ((t % 64) as f64 / 64.0) * 3.0;
            (28.0 + 35.0 * sessions + sawtooth + 100.0 * mem_ar[t]).clamp(1.0, 99.0)
        })
        .collect();

    let fault_windows = if inject_faults {
        faults::sample_faults(
            &mut rng,
            steps,
            config.faults_per_execution,
            config.fault_magnitude,
        )
    } else {
        Vec::new()
    };
    let mut cpu = clean_cpu.clone();
    for f in &fault_windows {
        faults::apply(&mut cpu, f);
    }

    // Memory problems are predominantly leaks: long drifts, occasionally a
    // level shift from a runaway cache. Injected on the same executions.
    let mem_fault_windows = if inject_faults {
        faults::sample_faults(&mut mem_rng, steps, 1, config.fault_magnitude)
            .into_iter()
            .map(|mut f| {
                if matches!(
                    f.kind,
                    faults::FaultKind::Spike | faults::FaultKind::Saturation
                ) {
                    f.kind = faults::FaultKind::Drift;
                }
                f
            })
            .collect()
    } else {
        Vec::new()
    };
    let mut mem = clean_mem.clone();
    for f in &mem_fault_windows {
        faults::apply(&mut mem, f);
    }

    Execution {
        labels,
        chain_id,
        build_seq,
        cf: cf.matrix,
        cpu,
        clean_cpu,
        mem,
        clean_mem,
        faults: fault_windows,
        mem_faults: mem_fault_windows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TelecomDataset {
        TelecomDataset::generate(TelecomConfig::small())
    }

    #[test]
    fn paper_config_hits_400k_timesteps() {
        let c = TelecomConfig::paper();
        assert_eq!(
            c.num_chains * c.builds_per_chain * c.steps_per_execution,
            400_000
        );
        assert_eq!(c.num_chains, 125);
    }

    #[test]
    fn generated_shape_matches_config() {
        let ds = small();
        let c = ds.config;
        assert_eq!(ds.chains.len(), c.num_chains);
        for chain in &ds.chains {
            assert_eq!(chain.executions.len(), c.builds_per_chain);
            for ex in &chain.executions {
                assert_eq!(ex.len(), c.steps_per_execution);
                assert_eq!(ex.cf.shape(), (c.steps_per_execution, workload::NUM_CF));
            }
        }
        assert_eq!(
            ds.total_timesteps(),
            c.num_chains * c.builds_per_chain * c.steps_per_execution
        );
    }

    #[test]
    fn chain_executions_share_environment_but_not_build() {
        let ds = small();
        for chain in &ds.chains {
            let first = &chain.executions[0].labels;
            for ex in &chain.executions[1..] {
                assert_eq!(ex.labels.testbed, first.testbed);
                assert_eq!(ex.labels.sut, first.sut);
                assert_eq!(ex.labels.testcase, first.testcase);
                assert_ne!(ex.labels.build, first.build);
                // Same type letter, advancing version.
                assert_eq!(
                    ex.labels.build_type(),
                    first.build_type(),
                    "chain keeps its build type"
                );
            }
        }
    }

    #[test]
    fn cpu_is_in_valid_percent_range() {
        let ds = small();
        for ex in ds.executions() {
            assert!(ex.cpu.iter().all(|&v| (0.0..=100.0).contains(&v)));
            assert!(ex.clean_cpu.iter().all(|&v| (0.0..=100.0).contains(&v)));
        }
    }

    #[test]
    fn faults_only_on_final_builds_and_alter_cpu() {
        let ds = small();
        let mut faulty = 0;
        for chain in &ds.chains {
            for ex in chain.history() {
                assert!(!ex.has_faults(), "history must be clean");
                assert_eq!(ex.cpu, ex.clean_cpu);
            }
            let cur = chain.current();
            if cur.has_faults() {
                faulty += 1;
                assert_ne!(cur.cpu, cur.clean_cpu);
                // Inside each window, observed >= clean (all faults raise
                // or pin CPU).
                for f in &cur.faults {
                    for t in f.start..f.end.min(cur.len()) {
                        assert!(cur.cpu[t] >= cur.clean_cpu[t] - 1e-9);
                    }
                }
            }
        }
        // About half the chains should be faulty.
        assert!((4..=12).contains(&faulty), "faulty chains {faulty}");
    }

    #[test]
    fn memory_series_valid_and_leak_faults_are_drifts_or_shifts() {
        let ds = small();
        for ex in ds.executions() {
            assert_eq!(ex.mem.len(), ex.len());
            assert!(ex.mem.iter().all(|&v| (0.0..=100.0).contains(&v)));
            for f in &ex.mem_faults {
                assert!(matches!(
                    f.kind,
                    faults::FaultKind::Drift | faults::FaultKind::LevelShift
                ));
                // Within the window, observed memory >= clean memory.
                for t in f.start..f.end.min(ex.len()) {
                    assert!(ex.mem[t] >= ex.clean_mem[t] - 1e-9);
                }
            }
        }
        // Memory tracks offered load (sessions), so it correlates with
        // active_sessions (CF column 4) on at least one healthy execution.
        let ex = &ds.chains[1].executions[0];
        let sessions = ex.cf.col(4);
        let r = env2vec_linalg::stats::pearson(&sessions, &ex.clean_mem).unwrap();
        assert!(r > 0.3, "mem/sessions correlation {r}");
    }

    #[test]
    fn rare_testbed_belongs_to_chain_zero_alone() {
        let ds = small();
        let rare = ds.universe.testbeds.last().unwrap().id.clone();
        assert_eq!(ds.chains[0].testbed, rare);
        assert!(ds.chains[1..].iter().all(|c| c.testbed != rare));
        // The rare-testbed chain is always screened with a problem.
        assert!(ds.chains[0].current().has_faults());
        // Disabling the knob returns to uniform sampling.
        let mut cfg = TelecomConfig::small();
        cfg.rare_testbed = false;
        cfg.fault_fraction = 0.0;
        let uniform = TelecomDataset::generate(cfg);
        assert!(!uniform.chains[0].current().has_faults());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TelecomDataset::generate(TelecomConfig::small());
        let b = TelecomDataset::generate(TelecomConfig::small());
        assert_eq!(a.chains[0].current().cpu, b.chains[0].current().cpu);
        let mut other = TelecomConfig::small();
        other.seed = 99;
        let c = TelecomDataset::generate(other);
        assert_ne!(a.chains[0].current().cpu, c.chains[0].current().cpu);
    }

    #[test]
    fn debug_builds_cost_more_than_stable_on_same_environment() {
        // Construct matched executions differing only in build type.
        let universe = Universe::generate(4, 1);
        let config = TelecomConfig::small();
        let mk = |build: &str| EmLabels {
            testbed: "Testbed_00".into(),
            sut: "SUT_DB".into(),
            testcase: "Testcase_Endurance".into(),
            build: build.into(),
        };
        let stable = generate_execution(&universe, &config, 0, 0, mk("S05"), false);
        let debug = generate_execution(&universe, &config, 0, 0, mk("D05"), false);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&debug.cpu) > mean(&stable.cpu) + 3.0,
            "debug {} vs stable {}",
            mean(&debug.cpu),
            mean(&stable.cpu)
        );
    }

    #[test]
    fn same_labels_same_series() {
        let universe = Universe::generate(4, 1);
        let config = TelecomConfig::small();
        let labels = EmLabels {
            testbed: "Testbed_01".into(),
            sut: "SUT_LB".into(),
            testcase: "Testcase_Load".into(),
            build: "S03".into(),
        };
        let a = generate_execution(&universe, &config, 3, 1, labels.clone(), false);
        let b = generate_execution(&universe, &config, 3, 1, labels, false);
        assert_eq!(a.cpu, b.cpu);
    }

    #[test]
    fn cpu_tracks_offered_load() {
        let ds = small();
        // Within each execution CPU should correlate positively with
        // demand (CF column 2) for load-following SUTs.
        let mut checked = 0;
        for chain in &ds.chains {
            if chain.sut == "SUT_AN" {
                continue; // analytics is burst-driven, not load-driven
            }
            if matches!(
                chain.testcase.as_str(),
                "Testcase_Endurance" | "Testcase_Stress"
            ) {
                // Constant-load profiles leave no load signal to track;
                // the demand/CPU correlation there is pure jitter and its
                // sign is not meaningful.
                continue;
            }
            let ex = &chain.executions[0];
            let demand = ex.cf.col(2);
            let r = env2vec_linalg::stats::pearson(&demand, &ex.clean_cpu).unwrap();
            assert!(r > 0.1, "chain {} ({}) corr {r}", chain.id, chain.sut);
            checked += 1;
        }
        assert!(checked > 0);
    }
}
