//! Fault injection with ground-truth labels.
//!
//! §4.2.2 evaluates detectors against problems labelled by testing
//! engineers: "a variety of different problematic inputs and scenarios
//! (e.g., increased latency on certain interfaces) are simulated in the
//! network". Here the simulation is explicit: faults perturb the CPU
//! series *without* touching the contextual features, so a contextual
//! model sees an observation its inputs cannot explain — the definition of
//! a contextual anomaly. Each injected window is recorded as ground truth
//! for alarm scoring.

// Indexed loops mirror the textbook formulations of these numeric
// kernels; iterator rewrites would obscure them.
#![allow(clippy::needless_range_loop)]

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Kind of injected performance problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Short additive burst (e.g. runaway thread).
    Spike,
    /// Sustained additive offset (e.g. costly code path enabled).
    LevelShift,
    /// Linear ramp (e.g. memory-leak-driven GC pressure).
    Drift,
    /// CPU pinned near saturation for the window.
    Saturation,
}

impl FaultKind {
    /// All fault kinds.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::Spike,
        FaultKind::LevelShift,
        FaultKind::Drift,
        FaultKind::Saturation,
    ];
}

/// One injected problem: a half-open timestep window plus its effect size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// First affected timestep.
    pub start: usize,
    /// One past the last affected timestep.
    pub end: usize,
    /// Effect shape.
    pub kind: FaultKind,
    /// Effect size in CPU percentage points (peak, for ramps).
    pub magnitude: f64,
}

impl FaultWindow {
    /// Whether a timestep falls inside the window.
    pub fn contains(&self, t: usize) -> bool {
        (self.start..self.end).contains(&t)
    }

    /// Window length in timesteps.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Applies a fault to the CPU series in place.
pub fn apply(cpu: &mut [f64], fault: &FaultWindow) {
    let end = fault.end.min(cpu.len());
    for t in fault.start..end {
        let v = &mut cpu[t];
        match fault.kind {
            FaultKind::Spike | FaultKind::LevelShift => *v += fault.magnitude,
            FaultKind::Drift => {
                let frac = (t - fault.start + 1) as f64 / fault.len().max(1) as f64;
                *v += fault.magnitude * frac;
            }
            FaultKind::Saturation => *v = v.max(92.0 + 0.5 * fault.magnitude.min(10.0)),
        }
        *v = v.clamp(0.0, 100.0);
    }
}

/// Draws a set of non-overlapping fault windows for an execution of
/// `steps` timesteps.
///
/// `count` faults are placed with magnitudes in `magnitude_range`
/// (percentage points). Windows that would overlap an earlier one are
/// skipped, so the result may contain fewer than `count` faults.
pub fn sample_faults(
    rng: &mut impl Rng,
    steps: usize,
    count: usize,
    magnitude_range: (f64, f64),
) -> Vec<FaultWindow> {
    let mut out: Vec<FaultWindow> = Vec::new();
    if steps < 8 {
        return out;
    }
    for _ in 0..count {
        let kind = FaultKind::ALL[rng.gen_range(0..FaultKind::ALL.len())];
        let len = match kind {
            FaultKind::Spike => rng.gen_range(2..=(steps / 16).max(3)),
            FaultKind::LevelShift | FaultKind::Saturation => {
                rng.gen_range(steps / 10..=(steps / 4).max(steps / 10 + 1))
            }
            FaultKind::Drift => rng.gen_range(steps / 8..=(steps / 3).max(steps / 8 + 1)),
        };
        if len >= steps {
            continue;
        }
        let start = rng.gen_range(0..steps - len);
        let window = FaultWindow {
            start,
            end: start + len,
            kind,
            magnitude: rng.gen_range(magnitude_range.0..magnitude_range.1),
        };
        let overlaps = out
            .iter()
            .any(|f| window.start < f.end && f.start < window.end);
        if !overlaps {
            out.push(window);
        }
    }
    out.sort_by_key(|f| f.start);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn spike_and_level_shift_add_magnitude() {
        let mut cpu = vec![50.0; 20];
        apply(
            &mut cpu,
            &FaultWindow {
                start: 5,
                end: 8,
                kind: FaultKind::Spike,
                magnitude: 15.0,
            },
        );
        assert_eq!(cpu[4], 50.0);
        assert_eq!(cpu[5], 65.0);
        assert_eq!(cpu[7], 65.0);
        assert_eq!(cpu[8], 50.0);
    }

    #[test]
    fn drift_ramps_to_full_magnitude() {
        let mut cpu = vec![40.0; 10];
        apply(
            &mut cpu,
            &FaultWindow {
                start: 0,
                end: 10,
                kind: FaultKind::Drift,
                magnitude: 20.0,
            },
        );
        assert!(cpu[0] < cpu[9]);
        assert_eq!(cpu[9], 60.0);
        assert!((cpu[4] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn saturation_pins_high() {
        let mut cpu = vec![30.0; 10];
        apply(
            &mut cpu,
            &FaultWindow {
                start: 2,
                end: 6,
                kind: FaultKind::Saturation,
                magnitude: 10.0,
            },
        );
        assert!(cpu[3] >= 92.0);
        assert_eq!(cpu[1], 30.0);
    }

    #[test]
    fn clamped_to_valid_cpu_range() {
        let mut cpu = vec![95.0; 5];
        apply(
            &mut cpu,
            &FaultWindow {
                start: 0,
                end: 5,
                kind: FaultKind::LevelShift,
                magnitude: 50.0,
            },
        );
        assert!(cpu.iter().all(|&v| v <= 100.0));
    }

    #[test]
    fn apply_tolerates_window_past_series_end() {
        let mut cpu = vec![50.0; 5];
        apply(
            &mut cpu,
            &FaultWindow {
                start: 3,
                end: 10,
                kind: FaultKind::Spike,
                magnitude: 10.0,
            },
        );
        assert_eq!(cpu[4], 60.0);
    }

    #[test]
    fn sampled_faults_are_disjoint_and_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let faults = sample_faults(&mut rng, 400, 4, (8.0, 25.0));
            for f in &faults {
                assert!(f.start < f.end && f.end <= 400);
                assert!((8.0..25.0).contains(&f.magnitude));
            }
            for pair in faults.windows(2) {
                assert!(pair[0].end <= pair[1].start, "overlapping windows");
            }
        }
    }

    #[test]
    fn tiny_series_yields_no_faults() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(sample_faults(&mut rng, 4, 3, (5.0, 10.0)).is_empty());
    }

    #[test]
    fn window_helpers() {
        let f = FaultWindow {
            start: 3,
            end: 6,
            kind: FaultKind::Spike,
            magnitude: 5.0,
        };
        assert!(f.contains(3) && f.contains(5) && !f.contains(6));
        assert_eq!(f.len(), 3);
        assert!(!f.is_empty());
    }
}
