//! Synthetic KDN benchmark datasets (Snort / SDN-firewall / SDN-switch).
//!
//! The paper evaluates VNF modelling on the Knowledge-Defined-Networking
//! benchmark traces: 86 traffic features per 20-second batch (packet
//! counts, distinct IPs/ports, 5-tuple flows, size histograms) and the CPU
//! utilisation of the VNF processing that traffic. The original traces are
//! unavailable, so this module generates statistically comparable data
//! from latent traffic processes:
//!
//! - a bursty, autocorrelated **intensity** (overall traffic volume),
//! - a **small-packet mix** (per-packet cost driver for DPI),
//! - a **new-flow rate** (state-table cost driver for the firewall),
//! - a **scan activity** level (rule-matching cost driver for Snort).
//!
//! Each VNF maps those latents to CPU differently, chosen to reproduce the
//! qualitative Table 4 outcome: Snort and the firewall respond
//! *nonlinearly* (neural models beat ridge), while the switch is close to
//! linear with strong temporal carry-over (ridge-with-history wins). The
//! generated CPU series is affinely rescaled to the paper's reported
//! per-dataset mean/σ (196±23, 384±46, 448±46), which preserves all
//! feature↔CPU relationships.

use env2vec_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::process;

/// Number of traffic features per sample, as in the KDN traces.
pub const NUM_FEATURES: usize = 86;

/// The three VNFs of the benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vnf {
    /// Snort intrusion detection with the default ruleset.
    Snort,
    /// SDN-enabled firewall.
    Firewall,
    /// SDN-enabled switch.
    Switch,
}

impl Vnf {
    /// All three VNFs in the paper's order.
    pub const ALL: [Vnf; 3] = [Vnf::Snort, Vnf::Firewall, Vnf::Switch];

    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            Vnf::Snort => "Snort",
            Vnf::Firewall => "Firewall",
            Vnf::Switch => "Switch",
        }
    }

    /// Paper Table 3 sizes: `(total, train, validation, test)`.
    pub fn paper_split(self) -> (usize, usize, usize, usize) {
        match self {
            Vnf::Snort => (1359, 900, 259, 200),
            Vnf::Firewall => (755, 555, 100, 100),
            Vnf::Switch => (1191, 900, 141, 150),
        }
    }

    /// Paper-reported CPU mean and standard deviation.
    pub fn cpu_stats(self) -> (f64, f64) {
        match self {
            Vnf::Snort => (196.0, 23.0),
            Vnf::Firewall => (384.0, 46.0),
            Vnf::Switch => (448.0, 46.0),
        }
    }
}

/// One VNF's dataset: features, CPU target, and the train/val/test split.
#[derive(Debug, Clone)]
pub struct KdnDataset {
    /// Which VNF this data describes.
    pub vnf: Vnf,
    /// `total x 86` traffic-feature matrix, in time order.
    pub features: Matrix,
    /// CPU utilisation per sample, parallel to `features`.
    pub cpu: Vec<f64>,
    /// Number of training samples (the leading rows).
    pub n_train: usize,
    /// Number of validation samples (following training).
    pub n_val: usize,
    /// Number of test samples (the trailing rows).
    pub n_test: usize,
}

impl KdnDataset {
    /// Generates the dataset with the paper's Table 3 sizes.
    pub fn generate(vnf: Vnf, seed: u64) -> Self {
        let (total, train, val, test) = vnf.paper_split();
        Self::generate_sized(vnf, total, train, val, test, seed)
    }

    /// Generates a dataset of arbitrary size (smaller sizes keep tests
    /// fast).
    ///
    /// # Panics
    ///
    /// Panics when the split does not sum to `total`.
    pub fn generate_sized(
        vnf: Vnf,
        total: usize,
        n_train: usize,
        n_val: usize,
        n_test: usize,
        seed: u64,
    ) -> Self {
        assert_eq!(
            n_train + n_val + n_test,
            total,
            "split must partition the dataset"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ (vnf as u64).wrapping_mul(0x9e37_79b9));

        // Latent traffic processes.
        let burst = process::bursty(&mut rng, total);
        let smooth = process::ar1(&mut rng, total, 0.8, 0.1);
        let intensity: Vec<f64> = burst
            .iter()
            .zip(&smooth)
            .map(|(b, s)| (0.3 + 0.6 * b + s).clamp(0.05, 1.0))
            .collect();
        let small_packet_mix: Vec<f64> = process::ar1(&mut rng, total, 0.9, 0.08)
            .iter()
            .map(|x| (0.5 + x).clamp(0.05, 0.95))
            .collect();
        let new_flow_rate: Vec<f64> = process::ar1(&mut rng, total, 0.7, 0.15)
            .iter()
            .zip(&intensity)
            .map(|(x, i)| ((0.4 + x) * i).clamp(0.01, 1.0))
            .collect();
        let scan_activity: Vec<f64> = process::ar1(&mut rng, total, 0.85, 0.12)
            .iter()
            .map(|x| (0.3 + x).clamp(0.0, 1.0))
            .collect();

        let features = build_features(
            &mut rng,
            &intensity,
            &small_packet_mix,
            &new_flow_rate,
            &scan_activity,
        );
        let cpu = build_cpu(
            &mut rng,
            vnf,
            &intensity,
            &small_packet_mix,
            &new_flow_rate,
            &scan_activity,
        );

        KdnDataset {
            vnf,
            features,
            cpu,
            n_train,
            n_val,
            n_test,
        }
    }

    /// Total number of samples.
    pub fn len(&self) -> usize {
        self.cpu.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.cpu.is_empty()
    }

    /// Training rows (features, cpu).
    pub fn train(&self) -> (Matrix, &[f64]) {
        let idx: Vec<usize> = (0..self.n_train).collect();
        (
            // envlint: allow(no-panic) — the split sizes are validated at
            // construction, so these row indices are in range by invariant.
            self.features.select_rows(&idx).expect("in range"),
            &self.cpu[..self.n_train],
        )
    }

    /// Validation rows (features, cpu).
    pub fn validation(&self) -> (Matrix, &[f64]) {
        let lo = self.n_train;
        let hi = lo + self.n_val;
        let idx: Vec<usize> = (lo..hi).collect();
        (
            // envlint: allow(no-panic) — the split sizes are validated at
            // construction, so these row indices are in range by invariant.
            self.features.select_rows(&idx).expect("in range"),
            &self.cpu[lo..hi],
        )
    }

    /// Test rows (features, cpu).
    pub fn test(&self) -> (Matrix, &[f64]) {
        let lo = self.n_train + self.n_val;
        let idx: Vec<usize> = (lo..self.len()).collect();
        (
            // envlint: allow(no-panic) — the split sizes are validated at
            // construction, so these row indices are in range by invariant.
            self.features.select_rows(&idx).expect("in range"),
            &self.cpu[lo..],
        )
    }
}

/// Derives the 86 observable features from the latent processes.
fn build_features(
    rng: &mut StdRng,
    intensity: &[f64],
    mix: &[f64],
    flows: &[f64],
    scan: &[f64],
) -> Matrix {
    let n = intensity.len();
    Matrix::from_fn(n, NUM_FEATURES, |t, f| {
        let i = intensity[t];
        let m = mix[t];
        let nf = flows[t];
        let s = scan[t];
        let noise = 1.0 + 0.03 * rng.gen_range(-1.0..1.0);
        match f {
            // Headline counters.
            0 => 2.0e6 * i * noise,                     // packets
            1 => 1.2e9 * i * (1.4 - m) * noise,         // bytes
            2 => 4000.0 * (0.3 * i + 0.7 * s) * noise,  // src IPs
            3 => 2500.0 * (0.5 * i + 0.5 * nf) * noise, // dst IPs
            4 => 9000.0 * (0.4 * i + 0.6 * s) * noise,  // src ports
            5 => 6000.0 * (0.6 * i + 0.4 * nf) * noise, // dst ports
            6 => 50000.0 * nf * noise,                  // 5-tuple flows
            // Packet-size histogram, 10 buckets: mass shifts with mix.
            7..=16 => {
                let bucket = (f - 7) as f64 / 9.0;
                let centre = 1.0 - m;
                let w = (-8.0 * (bucket - centre) * (bucket - centre)).exp();
                2.0e6 * i * w * noise / 3.0
            }
            // Protocol counters, 10 of them.
            17..=26 => {
                let share = match f - 17 {
                    0 => 0.6 * (1.0 - 0.3 * s), // tcp
                    1 => 0.3 * (1.0 + 0.3 * s), // udp
                    2 => 0.02 + 0.05 * s,       // icmp
                    k => 0.01 / (k as f64),     // long tail
                };
                2.0e6 * i * share * noise
            }
            // Flow-size and inter-arrival statistics.
            27..=40 => {
                let k = (f - 27) as f64;
                (40.0 * i / nf.max(0.05)) * (1.0 + 0.05 * k) * noise
            }
            // Port-entropy-like and churn features tied to scan activity.
            41..=55 => {
                let k = (f - 41) as f64;
                (3.0 + 4.0 * s + 0.5 * nf) * (1.0 + 0.02 * k) * noise
            }
            // Redundant volume transforms (log/ratio views of volume).
            56..=70 => {
                let k = (f - 56) as f64 + 1.0;
                (1.0 + 2.0e6 * i).ln() * k * noise
            }
            // Weakly informative noise features.
            _ => rng.gen_range(0.0..1.0) * 100.0,
        }
    })
}

/// Maps latents to CPU with a per-VNF response, then rescales to the
/// paper's reported mean/σ.
fn build_cpu(
    rng: &mut StdRng,
    vnf: Vnf,
    intensity: &[f64],
    mix: &[f64],
    flows: &[f64],
    scan: &[f64],
) -> Vec<f64> {
    let n = intensity.len();
    let noise = process::ar1(rng, n, 0.6, 0.05);
    let mut raw = Vec::with_capacity(n);
    let mut prev = 0.5;
    for t in 0..n {
        let i = intensity[t];
        let m = mix[t];
        let nf = flows[t];
        let s = scan[t];
        let value = match vnf {
            // DPI: per-packet cost grows superlinearly with small-packet
            // share, plus a quadratic rule-matching term.
            Vnf::Snort => i * (0.4 + 0.9 * m).powf(1.6) + 0.5 * s * s + 0.2 * i * s,
            // Firewall: state-table churn saturates, interacting with
            // volume.
            Vnf::Firewall => {
                let sat = nf / (0.25 + nf);
                0.7 * sat + 0.4 * i * sat + 0.15 * i
            }
            // Switch: near-linear forwarding cost with strong carry-over
            // from the previous interval (buffer drain), which is what
            // makes history features decisive.
            Vnf::Switch => {
                let v = 0.72 * prev + 0.28 * (0.9 * i + 0.1 * nf);
                prev = v;
                v
            }
        };
        raw.push(value + noise[t]);
    }
    // Affine rescale to the paper's reported statistics.
    let mean: f64 = raw.iter().sum::<f64>() / n as f64;
    let var: f64 = raw.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    let std = var.sqrt().max(1e-9);
    let (target_mean, target_std) = vnf.cpu_stats();
    raw.iter()
        .map(|x| target_mean + target_std * (x - mean) / std)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_split_sizes_match_table3() {
        let snort = KdnDataset::generate(Vnf::Snort, 1);
        assert_eq!(snort.len(), 1359);
        assert_eq!(snort.train().1.len(), 900);
        assert_eq!(snort.validation().1.len(), 259);
        assert_eq!(snort.test().1.len(), 200);

        let fw = KdnDataset::generate(Vnf::Firewall, 1);
        assert_eq!(fw.len(), 755);
        assert_eq!(fw.validation().1.len(), 100);

        let sw = KdnDataset::generate(Vnf::Switch, 1);
        assert_eq!(sw.len(), 1191);
        assert_eq!(sw.test().1.len(), 150);
    }

    #[test]
    fn cpu_statistics_match_paper() {
        for vnf in Vnf::ALL {
            let ds = KdnDataset::generate(vnf, 7);
            let (want_mean, want_std) = vnf.cpu_stats();
            let mean: f64 = ds.cpu.iter().sum::<f64>() / ds.len() as f64;
            let var: f64 =
                ds.cpu.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / ds.len() as f64;
            assert!((mean - want_mean).abs() < 1e-6, "{vnf:?} mean {mean}");
            assert!((var.sqrt() - want_std).abs() < 1e-6, "{vnf:?} std");
        }
    }

    #[test]
    fn feature_matrix_dimensions_and_finiteness() {
        let ds = KdnDataset::generate_sized(Vnf::Snort, 100, 70, 15, 15, 3);
        assert_eq!(ds.features.shape(), (100, NUM_FEATURES));
        assert!(ds.features.is_finite());
        assert!(ds.cpu.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn deterministic_per_seed_distinct_across_seeds() {
        let a = KdnDataset::generate_sized(Vnf::Firewall, 50, 30, 10, 10, 5);
        let b = KdnDataset::generate_sized(Vnf::Firewall, 50, 30, 10, 10, 5);
        let c = KdnDataset::generate_sized(Vnf::Firewall, 50, 30, 10, 10, 6);
        assert_eq!(a.cpu, b.cpu);
        assert_eq!(a.features, b.features);
        assert_ne!(a.cpu, c.cpu);
    }

    #[test]
    fn vnfs_differ_given_same_seed() {
        let s = KdnDataset::generate_sized(Vnf::Snort, 50, 30, 10, 10, 5);
        let f = KdnDataset::generate_sized(Vnf::Firewall, 50, 30, 10, 10, 5);
        assert_ne!(s.cpu, f.cpu);
    }

    #[test]
    fn cpu_correlates_with_traffic_volume() {
        // Feature 0 (packet count) must be informative about CPU for every
        // VNF — that is the premise of the whole benchmark.
        for vnf in Vnf::ALL {
            let ds = KdnDataset::generate(vnf, 11);
            let packets = ds.features.col(0);
            let r = env2vec_linalg::stats::pearson(&packets, &ds.cpu).unwrap();
            assert!(r > 0.25, "{vnf:?} packet/cpu correlation {r}");
        }
    }

    #[test]
    fn switch_cpu_is_more_autocorrelated_than_snort() {
        // The switch carries load across intervals; Snort is memoryless.
        let lag1 = |xs: &[f64]| {
            let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
            let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
            let cov: f64 = xs.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum();
            cov / var
        };
        let sw = KdnDataset::generate(Vnf::Switch, 13);
        let sn = KdnDataset::generate(Vnf::Snort, 13);
        assert!(lag1(&sw.cpu) > lag1(&sn.cpu) + 0.1);
    }

    #[test]
    #[should_panic(expected = "split must partition")]
    fn bad_split_panics() {
        let _ = KdnDataset::generate_sized(Vnf::Snort, 100, 50, 20, 20, 0);
    }
}
