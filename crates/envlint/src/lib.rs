//! `envlint` — project-specific static analysis for the Env2Vec
//! workspace.
//!
//! Clippy keeps this workspace idiomatic; `envlint` enforces the
//! invariants that are *ours*, the ones a general linter cannot know:
//! screening runs must not panic out of library code, repro tables must
//! be a pure function of the seed, and nothing order-nondeterministic may
//! sit on the paths that produce vocab ids, embeddings, or scraped
//! series. It is written from scratch on a small Rust lexer
//! ([`lexer`]) and a token-stream analyzer ([`analyze`]) with zero
//! dependencies, matching the workspace's vendored-offline constraint.
//!
//! Run it as a binary:
//!
//! ```text
//! cargo run -p envlint -- --check            # human-readable findings
//! cargo run -p envlint -- --check --format=json
//! cargo run -p envlint -- --check --format=sarif   # code-scanning upload
//! cargo run -p envlint -- --rules            # rule table
//! ```
//!
//! or via the test wrapper (`cargo test -p envlint`), which fails the
//! tier-1 suite on any new violation. Escape hatch, always with a
//! reason:
//!
//! ```text
//! // envlint: allow(no-panic) — why the invariant holds here
//! ```
//!
//! See [`rules::RuleId`] for the rule catalogue and scoping.

pub mod analyze;
pub mod lexer;
pub mod rules;
pub mod scope;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use analyze::{lint_source, lint_test_source, Finding};
pub use rules::RuleId;

/// Workspace sub-paths whose files are test code in their entirety:
/// integration tests, benches, and the cross-crate test crate.
const TEST_PATH_MARKERS: [&str; 3] = ["/tests/", "/benches/", "xtests/"];

/// One file queued for linting: absolute path, workspace-relative label,
/// and the crate scope its rules come from.
#[derive(Debug, Clone)]
struct LintJob {
    path: PathBuf,
    rel: String,
    crate_dir: String,
}

/// Lints every Rust source file of the workspace rooted at `root`.
///
/// Scanned: `crates/*/src/**/*.rs` (library and binary code, full rule
/// set per [`RuleId::applies_to`]) and `crates/*/tests`, `xtests/`
/// (test code: only `allow`-directive hygiene). Returns findings sorted
/// by path, line, then rule.
///
/// File scanning fans out over the `par` pool (the linter dogfoods the
/// layer it lints): the file list is collected and sorted sequentially,
/// chunks are mapped in parallel, and partial results fold in ascending
/// chunk order, so output is bit-identical at any `ENV2VEC_THREADS`.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let jobs = collect_jobs(root)?;
    let merged = env2vec_par::par_map_reduce(
        jobs.len(),
        8,
        |range| -> io::Result<Vec<Finding>> {
            let mut findings = Vec::new();
            for job in &jobs[range] {
                lint_one(job, &mut findings)?;
            }
            Ok(findings)
        },
        |a, b| {
            // First error wins; otherwise concatenate in chunk order.
            let mut a = a?;
            a.extend(b?);
            Ok(a)
        },
    );
    let mut findings = merged.unwrap_or_else(|| Ok(Vec::new()))?;
    findings.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(&b.rule))
    });
    Ok(findings)
}

/// Builds the sorted file list: every crate's `src`/`tests`/`benches`
/// plus `xtests/`.
fn collect_jobs(root: &Path) -> io::Result<Vec<LintJob>> {
    let mut jobs = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let Some(name) = dir.file_name().and_then(|n| n.to_str()).map(str::to_string) else {
            continue;
        };
        for sub in ["src", "tests", "benches"] {
            let sub_dir = dir.join(sub);
            if sub_dir.is_dir() {
                collect_tree(root, &sub_dir, &name, &mut jobs)?;
            }
        }
    }
    let xtests = root.join("xtests");
    if xtests.is_dir() {
        collect_tree(root, &xtests, "xtests", &mut jobs)?;
    }
    Ok(jobs)
}

/// Recursively queues every `.rs` file under `dir`.
fn collect_tree(
    root: &Path,
    dir: &Path,
    crate_dir: &str,
    jobs: &mut Vec<LintJob>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            // Fixture corpora hold intentional violations for self-tests.
            if path.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_tree(root, &path, crate_dir, jobs)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            jobs.push(LintJob {
                path,
                rel,
                crate_dir: crate_dir.to_string(),
            });
        }
    }
    Ok(())
}

/// Lints one queued file.
fn lint_one(job: &LintJob, findings: &mut Vec<Finding>) -> io::Result<()> {
    let source = fs::read_to_string(&job.path)?;
    if TEST_PATH_MARKERS.iter().any(|m| job.rel.contains(m)) {
        findings.extend(lint_test_source(&job.rel, &source));
    } else {
        findings.extend(lint_source(&job.rel, &job.crate_dir, &source));
    }
    Ok(())
}

/// Renders findings as a JSON array (machine-readable `--format=json`).
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            f.rule.id(),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Renders findings as a SARIF 2.1.0 log (`--format=sarif`), the format
/// GitHub code scanning ingests: one run, one rule entry per catalogue
/// rule, one result per finding with a physical location.
pub fn findings_to_sarif(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"envlint\",\n");
    out.push_str("          \"informationUri\": \"DESIGN.md\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, rule) in RuleId::ALL.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            rule.id(),
            json_escape(rule.describe())
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "        {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
            f.rule.id(),
            json_escape(&f.message),
            json_escape(&f.file),
            f.line
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rendering_escapes_and_shapes() {
        let findings = vec![Finding {
            rule: RuleId::NoPanic,
            file: "crates/x/src/a.rs".to_string(),
            line: 3,
            message: "a \"quoted\" message".to_string(),
        }];
        let json = findings_to_json(&findings);
        assert!(json.contains("\"rule\": \"no-panic\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.trim_start().starts_with('['));
        assert_eq!(findings_to_json(&[]).trim(), "[]");
    }

    #[test]
    fn sarif_rendering_has_rules_and_located_results() {
        let findings = vec![Finding {
            rule: RuleId::LockOrder,
            file: "crates/telemetry/src/tsdb.rs".to_string(),
            line: 42,
            message: "nested \"locks\"".to_string(),
        }];
        let sarif = findings_to_sarif(&findings);
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        // Every catalogue rule is declared in the driver.
        for rule in RuleId::ALL {
            assert!(
                sarif.contains(&format!("\"id\": \"{}\"", rule.id())),
                "{}",
                rule.id()
            );
        }
        assert!(sarif.contains("\"ruleId\": \"lock-order\""));
        assert!(sarif.contains("\"uri\": \"crates/telemetry/src/tsdb.rs\""));
        assert!(sarif.contains("\"startLine\": 42"));
        assert!(sarif.contains("nested \\\"locks\\\""));
        // Empty findings still produce a structurally complete log.
        let empty = findings_to_sarif(&[]);
        assert!(empty.contains("\"results\": [\n      ]"));
    }

    #[test]
    fn workspace_root_discovery() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root above envlint");
        assert!(root.join("crates").is_dir());
    }
}
