//! A small Rust lexer: enough of the token grammar for reliable
//! token-stream lints.
//!
//! The lexer understands the parts of Rust where naive text search goes
//! wrong — strings (including raw and byte strings), character literals
//! vs. lifetimes, nested block comments, numeric literals with suffixes —
//! and produces a comment-free token stream plus a side table of
//! `envlint:` control comments. It does not build a syntax tree; the
//! analyzer works on token patterns.

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `as`, `HashMap`, ...).
    Ident,
    /// Lifetime such as `'a` (kept distinct from char literals).
    Lifetime,
    /// Integer literal.
    Int,
    /// Floating-point literal (has a `.`, an exponent, or an `f32`/`f64`
    /// suffix).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation; multi-character operators (`==`, `::`, `->`, ...)
    /// are single tokens.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Source text of the token (string/char literals keep delimiters).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// An `// envlint: allow(no-panic) — reason` style control comment.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Rule ids listed inside `allow(...)`.
    pub rules: Vec<String>,
    /// 1-based line the directive comment starts on.
    pub line: u32,
    /// Whether any justification text follows the closing parenthesis.
    /// Directives without a reason are reported and do not suppress.
    pub has_reason: bool,
    /// Whether the comment stands alone on its line (no code before it).
    /// Standalone directives cover the next line; trailing ones only
    /// their own.
    pub standalone: bool,
}

/// One comment's position and safety-relevant content.
///
/// The analyzer needs comments for exactly one rule: `unsafe-block`
/// accepts an `unsafe` site only when a `// SAFETY:` comment sits on or
/// directly above it. Comment *text* stays out of the token stream.
#[derive(Debug, Clone, Copy)]
pub struct CommentSpan {
    /// 1-based line the comment starts on.
    pub start_line: u32,
    /// 1-based line the comment ends on (block comments may span lines).
    pub end_line: u32,
    /// Whether the comment contains a `SAFETY:` marker.
    pub has_safety: bool,
}

/// Lexer output: the comment-free token stream and the control comments.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// `envlint: allow` directives found in comments.
    pub directives: Vec<AllowDirective>,
    /// Every comment's line span plus whether it carries `SAFETY:`.
    pub comments: Vec<CommentSpan>,
}

/// Two- and three-character operators lexed as single punct tokens, in
/// longest-match-first order.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lexes Rust source into tokens and envlint directives.
///
/// The lexer is forgiving: malformed input (an unterminated string, a
/// stray byte) never fails, it simply ends the current token at end of
/// input so the analyzer can still report on the rest of the file.
pub fn lex(source: &str) -> LexOutput {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: LexOutput::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: LexOutput,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> LexOutput {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(line),
                'r' if self.raw_string_ahead(0) => self.raw_string(line),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(line);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_literal(line);
                }
                'b' if self.peek(1) == Some('r') && self.raw_string_ahead(1) => {
                    self.bump();
                    self.raw_string(line);
                }
                'r' if self.peek(1) == Some('#') && self.peek(2).is_some_and(is_ident_start) => {
                    // Raw identifier `r#type`.
                    self.bump();
                    self.bump();
                    self.ident(line);
                }
                '\'' => self.lifetime_or_char(line),
                _ if is_ident_start(c) => self.ident(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ => self.punct(line),
            }
        }
        self.out
    }

    /// Whether position `pos + ahead` starts `r"` / `r#"` / `r##"`-style
    /// raw-string syntax.
    fn raw_string_ahead(&self, ahead: usize) -> bool {
        if self.peek(ahead) != Some('r') {
            return false;
        }
        let mut i = ahead + 1;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        i > ahead + 1 && self.peek(i) == Some('"') || self.peek(ahead + 1) == Some('"')
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(CommentSpan {
            start_line: line,
            end_line: line,
            has_safety: text.contains("SAFETY:"),
        });
        self.directive_from_comment(&text, line);
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(CommentSpan {
            start_line: line,
            end_line: self.line,
            has_safety: text.contains("SAFETY:"),
        });
        self.directive_from_comment(&text, line);
    }

    /// Parses `envlint: allow(no-panic, float-cmp) — reason` comments.
    fn directive_from_comment(&mut self, comment: &str, line: u32) {
        let Some(at) = comment.find("envlint:") else {
            return;
        };
        let rest = comment[at + "envlint:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow") else {
            return;
        };
        let args = args.trim_start();
        let Some(args) = args.strip_prefix('(') else {
            return;
        };
        let Some(close) = args.find(')') else {
            return;
        };
        let rules: Vec<String> = args[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let reason = args[close + 1..]
            .trim_start_matches(['*', '/'])
            .trim_start_matches([':', '-', ' ', '\u{2014}', '\u{2013}']);
        let standalone = self.out.tokens.last().is_none_or(|t| t.line != line);
        self.out.directives.push(AllowDirective {
            rules,
            line,
            has_reason: reason.chars().any(|c| c.is_alphanumeric()),
            standalone,
        });
    }

    fn string(&mut self, line: u32) {
        // Opening quote.
        let mut text = String::new();
        if let Some(c) = self.bump() {
            text.push(c);
        }
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    fn raw_string(&mut self, line: u32) {
        let mut text = String::new();
        self.bump(); // `r`
        text.push('r');
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push('#');
            self.bump();
        }
        if self.peek(0) == Some('"') {
            text.push('"');
            self.bump();
        }
        // Scan until `"` followed by `hashes` hash marks.
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '"' && (0..hashes).all(|i| self.peek(i) == Some('#')) {
                for _ in 0..hashes {
                    if let Some(h) = self.bump() {
                        text.push(h);
                    }
                }
                break;
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    fn char_literal(&mut self, line: u32) {
        let mut text = String::new();
        if let Some(q) = self.bump() {
            text.push(q);
        }
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Char, text, line);
    }

    fn lifetime_or_char(&mut self, line: u32) {
        // `'a` (not followed by a closing quote) is a lifetime; `'a'` and
        // `'\n'` are char literals.
        let next = self.peek(1);
        if next == Some('\\') {
            self.char_literal(line);
            return;
        }
        if next.is_some_and(is_ident_start) {
            // Scan the identifier part to see whether a `'` closes it.
            let mut i = 1;
            while self.peek(i).is_some_and(is_ident_continue) {
                i += 1;
            }
            if self.peek(i) == Some('\'') {
                self.char_literal(line);
            } else {
                let mut text = String::new();
                for _ in 0..i {
                    if let Some(c) = self.bump() {
                        text.push(c);
                    }
                }
                self.push(TokenKind::Lifetime, text, line);
            }
            return;
        }
        // Anything else (`'3'`, `'('`, stray quote) — treat as char.
        self.char_literal(line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while self.peek(0).is_some_and(is_ident_continue) {
            if let Some(c) = self.bump() {
                text.push(c);
            }
        }
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        let mut is_float = false;
        let radix_prefix = self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
        if radix_prefix {
            // `0x1F`, `0b1010`, ...: digits, letters, and `_` only; never
            // a float (an exponent `E` is a hex digit here).
            for _ in 0..2 {
                if let Some(c) = self.bump() {
                    text.push(c);
                }
            }
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                if let Some(c) = self.bump() {
                    text.push(c);
                }
            }
            self.push(TokenKind::Int, text, line);
            return;
        }
        while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            if let Some(c) = self.bump() {
                text.push(c);
            }
        }
        // Fractional part: `.` followed by a digit, or a trailing `1.`
        // (but not `1..2` ranges or `1.method()` calls).
        if self.peek(0) == Some('.') {
            let after = self.peek(1);
            if after.is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                if let Some(c) = self.bump() {
                    text.push(c);
                }
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    if let Some(c) = self.bump() {
                        text.push(c);
                    }
                }
            } else if !after.is_some_and(|c| c == '.' || is_ident_start(c)) {
                is_float = true;
                if let Some(c) = self.bump() {
                    text.push(c);
                }
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some('e' | 'E')) {
            let (sign, digit) = (self.peek(1), self.peek(2));
            let has_exp = match sign {
                Some('+' | '-') => digit.is_some_and(|c| c.is_ascii_digit()),
                Some(c) => c.is_ascii_digit(),
                None => false,
            };
            if has_exp {
                is_float = true;
                if let Some(c) = self.bump() {
                    text.push(c);
                }
                while self
                    .peek(0)
                    .is_some_and(|c| c.is_ascii_digit() || c == '_' || c == '+' || c == '-')
                {
                    if let Some(c) = self.bump() {
                        text.push(c);
                    }
                }
            }
        }
        // Type suffix (`u32`, `f64`, ...).
        if self.peek(0).is_some_and(is_ident_start) {
            let mut suffix = String::new();
            while self.peek(0).is_some_and(is_ident_continue) {
                if let Some(c) = self.bump() {
                    suffix.push(c);
                }
            }
            if suffix == "f32" || suffix == "f64" {
                is_float = true;
            }
            text.push_str(&suffix);
        }
        let kind = if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push(kind, text, line);
    }

    fn punct(&mut self, line: u32) {
        for op in MULTI_PUNCT {
            if op
                .chars()
                .enumerate()
                .all(|(i, oc)| self.peek(i) == Some(oc))
            {
                for _ in 0..op.len() {
                    self.bump();
                }
                self.push(TokenKind::Punct, op.to_string(), line);
                return;
            }
        }
        if let Some(c) = self.bump() {
            self.push(TokenKind::Punct, c.to_string(), line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let out = lex("let x = a.unwrap();\nfoo()");
        let texts: Vec<&str> = out.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["let", "x", "=", "a", ".", "unwrap", "(", ")", ";", "foo", "(", ")"]
        );
        assert_eq!(out.tokens[0].line, 1);
        assert_eq!(out.tokens[9].line, 2);
    }

    #[test]
    fn strings_hide_their_contents() {
        let out = kinds(r#"let s = "a.unwrap() == 1.0"; t"#);
        assert!(out
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("unwrap")));
        // No Ident token named unwrap leaked out of the string.
        assert!(!out
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn raw_and_byte_strings() {
        let out = kinds(r###"let s = r#"quote " inside"#; let b = b"bytes"; x"###);
        let strs: Vec<&String> = out
            .iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[0].contains("quote"));
        assert_eq!(out.last().map(|(_, t)| t.as_str()), Some("x"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let out = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = out
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .count();
        let chars = out.iter().filter(|(k, _)| *k == TokenKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn numeric_literal_classification() {
        for (src, kind) in [
            ("1", TokenKind::Int),
            ("1_000", TokenKind::Int),
            ("0xE1", TokenKind::Int),
            ("1.0", TokenKind::Float),
            ("1e-5", TokenKind::Float),
            ("2.5e3", TokenKind::Float),
            ("1f64", TokenKind::Float),
            ("3usize", TokenKind::Int),
        ] {
            let out = lex(src);
            assert_eq!(out.tokens.len(), 1, "{src}");
            assert_eq!(out.tokens[0].kind, kind, "{src}");
        }
        // Ranges and method calls on ints are not floats.
        let range = kinds("0..10");
        assert_eq!(range[0].0, TokenKind::Int);
        assert_eq!(range[1].1, "..");
        let call = kinds("1.max(2)");
        assert_eq!(call[0].0, TokenKind::Int);
    }

    #[test]
    fn comments_produce_no_tokens_but_directives() {
        let out = lex(
            "// envlint: allow(no-panic) — startup invariant\nx = 1; /* envlint: allow(float-cmp, hash-iter): exact zero guard */",
        );
        assert_eq!(out.directives.len(), 2);
        assert_eq!(out.directives[0].rules, vec!["no-panic"]);
        assert!(out.directives[0].has_reason);
        assert_eq!(out.directives[0].line, 1);
        assert_eq!(out.directives[1].rules, vec!["float-cmp", "hash-iter"]);
        assert_eq!(out.directives[1].line, 2);
    }

    #[test]
    fn directive_without_reason_is_marked() {
        let out = lex("// envlint: allow(no-panic)\n");
        assert_eq!(out.directives.len(), 1);
        assert!(!out.directives[0].has_reason);
    }

    #[test]
    fn nested_block_comments() {
        let out = lex("/* outer /* inner */ still comment */ ident");
        assert_eq!(out.tokens.len(), 1);
        assert_eq!(out.tokens[0].text, "ident");
    }

    #[test]
    fn comment_spans_track_lines_and_safety_markers() {
        let out =
            lex("// plain note\n// SAFETY: ptr is valid\nx; /* multi\nline\nSAFETY: block */ y;");
        assert_eq!(out.comments.len(), 3);
        assert_eq!(
            (out.comments[0].start_line, out.comments[0].end_line),
            (1, 1)
        );
        assert!(!out.comments[0].has_safety);
        assert!(out.comments[1].has_safety);
        assert_eq!(
            (out.comments[2].start_line, out.comments[2].end_line),
            (3, 5),
            "block comment spans its lines"
        );
        assert!(out.comments[2].has_safety);
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        let out = kinds("a == b != c :: d -> e");
        let puncts: Vec<&String> = out
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(puncts, ["==", "!=", "::", "->"]);
    }
}
