//! Token-stream analysis: test-region tracking, rule pattern matching,
//! and `allow` suppression.
//!
//! Line-local rules match directly over the token stream
//! ([`scan_rule`]); the concurrency rules need liveness, so they run
//! over the block/scope facts computed by [`crate::scope`]
//! ([`scan_scope_rules`]).

use crate::lexer::{lex, AllowDirective, CommentSpan, LexOutput, Token, TokenKind};
use crate::rules::RuleId;
use crate::scope::ScopeInfo;

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The violated rule.
    pub rule: RuleId,
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line of the violation.
    pub line: u32,
    /// Human-readable description of the specific site.
    pub message: String,
}

impl Finding {
    /// `path:line: [rule] message` — the text output format.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// Lints one file's source under the rules scoped to `crate_dir` (the
/// directory name under `crates/`, e.g. `"core"`, `"linalg"`).
///
/// `file` is only used to label findings. Files that are test code in
/// their entirety (integration tests, benches) should instead be passed
/// through [`lint_test_source`].
pub fn lint_source(file: &str, crate_dir: &str, source: &str) -> Vec<Finding> {
    let out = lex(source);
    let mut findings = Vec::new();
    let test_regions = test_regions(&out.tokens);
    for rule in RuleId::ALL {
        if !rule.applies_to(crate_dir) || rule == RuleId::BadAllow {
            continue;
        }
        scan_rule(rule, &out.tokens, &test_regions, file, &mut findings);
    }
    scan_scope_rules(crate_dir, &out, &test_regions, file, &mut findings);
    check_directives(&out.directives, file, &mut findings);
    findings.retain(|f| f.rule == RuleId::BadAllow || !suppressed(f, &out.directives, &out.tokens));
    findings.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(&b.rule)));
    findings
}

/// Lints a file that is test code in its entirety: only directive
/// validity is checked, every scoped rule is off.
pub fn lint_test_source(file: &str, source: &str) -> Vec<Finding> {
    let out = lex(source);
    let mut findings = Vec::new();
    check_directives(&out.directives, file, &mut findings);
    findings
}

/// A directive suppresses a finding of one of its rules on its own line;
/// a standalone directive (comment-above style) also covers the next
/// *code* line — the first line after it carrying any token, so a
/// multi-line reason comment between the directive and the code still
/// counts, but nothing past that single line is excused.
fn suppressed(f: &Finding, directives: &[AllowDirective], tokens: &[Token]) -> bool {
    directives.iter().any(|d| {
        d.has_reason
            && (d.line == f.line || (d.standalone && covered_code_line(d, tokens) == Some(f.line)))
            && d.rules.iter().any(|r| r == f.rule.id())
    })
}

/// The line a standalone directive covers: the first token line strictly
/// after it (tokens come in line order). `None` when the directive is the
/// last thing in the file.
fn covered_code_line(d: &AllowDirective, tokens: &[Token]) -> Option<u32> {
    tokens.iter().map(|t| t.line).find(|&l| l > d.line)
}

/// Reports malformed directives: missing reason or unknown rule name.
fn check_directives(directives: &[AllowDirective], file: &str, findings: &mut Vec<Finding>) {
    for d in directives {
        if !d.has_reason {
            findings.push(Finding {
                rule: RuleId::BadAllow,
                file: file.to_string(),
                line: d.line,
                message: "allow directive without a reason (add `— why the invariant holds`)"
                    .to_string(),
            });
        }
        for r in &d.rules {
            if RuleId::parse(r).is_none() {
                findings.push(Finding {
                    rule: RuleId::BadAllow,
                    file: file.to_string(),
                    line: d.line,
                    message: format!("allow directive names unknown rule `{r}`"),
                });
            }
        }
    }
}

/// Half-open token-index ranges that are test code (`#[test]` functions,
/// `#[cfg(test)]` modules and items).
///
/// Detection works on the token stream: an attribute containing the
/// identifier `test` arms a pending flag; the body `{ ... }` of the item
/// that follows becomes a test region. A `;` before any `{` (attribute on
/// a `use` or an out-of-line `mod tests;`) disarms it.
fn test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut pending_test_attr = false;
    let mut region_start: Option<(usize, i32)> = None;
    let mut depth: i32 = 0;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Punct && t.text == "#" {
            // Scan the attribute `#[ ... ]` / `#![ ... ]`.
            let mut j = i + 1;
            if j < tokens.len() && tokens[j].kind == TokenKind::Punct && tokens[j].text == "!" {
                j += 1;
            }
            if j < tokens.len() && tokens[j].kind == TokenKind::Punct && tokens[j].text == "[" {
                let mut bracket = 0i32;
                let attr_start = j;
                while j < tokens.len() {
                    let a = &tokens[j];
                    if a.kind == TokenKind::Punct && a.text == "[" {
                        bracket += 1;
                    } else if a.kind == TokenKind::Punct && a.text == "]" {
                        bracket -= 1;
                        if bracket == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                let attr_end = j.min(tokens.len());
                // Only arm outside an already-open test region.
                if region_start.is_none() && attr_is_test(&tokens[attr_start..attr_end]) {
                    pending_test_attr = true;
                }
                i = j + 1;
                continue;
            }
        }
        match (&t.kind, t.text.as_str()) {
            (TokenKind::Punct, "{") => {
                depth += 1;
                if pending_test_attr && region_start.is_none() {
                    region_start = Some((i, depth));
                    pending_test_attr = false;
                }
            }
            (TokenKind::Punct, "}") => {
                if let Some((start, d)) = region_start {
                    if depth == d {
                        regions.push((start, i + 1));
                        region_start = None;
                    }
                }
                depth -= 1;
            }
            (TokenKind::Punct, ";") if region_start.is_none() => {
                pending_test_attr = false;
            }
            _ => {}
        }
        i += 1;
    }
    // Unclosed region (truncated file): runs to the end.
    if let Some((start, _)) = region_start {
        regions.push((start, tokens.len()));
    }
    regions
}

/// Whether the attribute token slice marks test code: `#[test]`,
/// `#[cfg(test)]`, `#[cfg(any(test, ...))]`, `#[tokio::test]`. The
/// identifier must be exactly `test` — a `"test"` string or a path like
/// `testing::x` does not count — and negations (`#[cfg(not(test))]`)
/// never mark a region.
fn attr_is_test(attr: &[Token]) -> bool {
    let has = |name: &str| {
        attr.iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == name)
    };
    has("test") && !has("not")
}

fn in_regions(regions: &[(usize, usize)], idx: usize) -> bool {
    regions.iter().any(|&(s, e)| idx >= s && idx < e)
}

/// Matches one rule's token patterns over the stream.
fn scan_rule(
    rule: RuleId,
    tokens: &[Token],
    test_regions: &[(usize, usize)],
    file: &str,
    findings: &mut Vec<Finding>,
) {
    let push = |idx: usize, message: String, findings: &mut Vec<Finding>| {
        findings.push(Finding {
            rule,
            file: file.to_string(),
            line: tokens[idx].line,
            message,
        });
    };
    for i in 0..tokens.len() {
        if in_regions(test_regions, i) {
            continue;
        }
        let t = &tokens[i];
        match rule {
            RuleId::NoPanic => {
                if t.kind == TokenKind::Ident && matches!(t.text.as_str(), "unwrap" | "expect") {
                    let after_dot = i > 0
                        && tokens[i - 1].kind == TokenKind::Punct
                        && tokens[i - 1].text == ".";
                    let called = tokens.get(i + 1).is_some_and(|n| n.text == "(");
                    if after_dot && called {
                        push(
                            i,
                            format!("`.{}()` in non-test code — propagate a Result or document the invariant", t.text),
                            findings,
                        );
                    }
                }
                if t.kind == TokenKind::Ident
                    && matches!(
                        t.text.as_str(),
                        "panic" | "unreachable" | "todo" | "unimplemented"
                    )
                    && tokens.get(i + 1).is_some_and(|n| n.text == "!")
                {
                    push(
                        i,
                        format!("`{}!` in non-test code — return an error instead", t.text),
                        findings,
                    );
                }
            }
            RuleId::FloatCmp => {
                if t.kind == TokenKind::Punct && (t.text == "==" || t.text == "!=") {
                    let prev_float = i > 0 && float_operand_ending_at(tokens, i - 1);
                    let next_float = float_operand_starting_at(tokens, i + 1);
                    if prev_float || next_float {
                        push(
                            i,
                            format!(
                                "float `{}` comparison — use a tolerance, or allow with the reason the exact compare is intended",
                                t.text
                            ),
                            findings,
                        );
                    }
                }
            }
            RuleId::HashIter => {
                if t.kind == TokenKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
                    push(
                        i,
                        format!(
                            "`{}` in a deterministic code path — iteration order is randomised; use BTree{} or sorted iteration",
                            t.text,
                            &t.text[4..]
                        ),
                        findings,
                    );
                }
            }
            RuleId::WallClock => {
                if t.kind == TokenKind::Ident
                    && (t.text == "SystemTime" || t.text == "Instant")
                    && tokens.get(i + 1).is_some_and(|n| n.text == "::")
                    && tokens.get(i + 2).is_some_and(|n| n.text == "now")
                {
                    push(
                        i,
                        format!("`{}::now()` in a repro-table crate — results must be a pure function of the seed", t.text),
                        findings,
                    );
                }
                if t.kind == TokenKind::Ident
                    && matches!(t.text.as_str(), "thread_rng" | "from_entropy")
                {
                    push(
                        i,
                        format!("`{}` draws OS entropy — use a seeded StdRng", t.text),
                        findings,
                    );
                }
            }
            RuleId::CastTruncation => {
                if t.kind == TokenKind::Ident
                    && t.text == "as"
                    && tokens.get(i + 1).is_some_and(|n| {
                        n.kind == TokenKind::Ident
                            && matches!(
                                n.text.as_str(),
                                "u8" | "u16" | "u32" | "i8" | "i16" | "i32"
                            )
                    })
                {
                    push(
                        i,
                        format!(
                            "narrowing cast `as {}` in a linalg kernel — a truncated index corrupts results silently",
                            tokens[i + 1].text
                        ),
                        findings,
                    );
                }
            }
            // Handled by the scope pass, which needs liveness, not
            // token-local patterns.
            RuleId::LockAcrossSpawn
            | RuleId::LockOrder
            | RuleId::UnsafeBlock
            | RuleId::GuardAcrossIo => {}
            RuleId::BadAllow => {}
        }
    }
}

/// Runs the four concurrency rules over the scope facts of one file.
///
/// Findings report at the *hazard* site (the spawn/IO call, the second
/// acquisition, the `unsafe` keyword), because that is the line an allow
/// directive with the ordering argument belongs on.
fn scan_scope_rules(
    crate_dir: &str,
    out: &LexOutput,
    test_regions: &[(usize, usize)],
    file: &str,
    findings: &mut Vec<Finding>,
) {
    let tokens = &out.tokens;
    let info = ScopeInfo::analyze(tokens);
    let push = |rule: RuleId, idx: usize, message: String, findings: &mut Vec<Finding>| {
        findings.push(Finding {
            rule,
            file: file.to_string(),
            line: tokens[idx].line,
            message,
        });
    };

    if RuleId::LockAcrossSpawn.applies_to(crate_dir) {
        for g in &info.guards {
            if in_regions(test_regions, g.acquire_idx) {
                continue;
            }
            for &s in &info.spawns {
                if g.acquire_idx < s && s < g.end_idx && !in_regions(test_regions, s) {
                    push(
                        RuleId::LockAcrossSpawn,
                        s,
                        format!(
                            "`{}.{}()` guard (line {}) is live across `{}` — a pool job re-acquiring it deadlocks against its spawner; drop the guard first",
                            g.receiver, g.method, tokens[g.acquire_idx].line, tokens[s].text
                        ),
                        findings,
                    );
                }
            }
        }
    }

    if RuleId::GuardAcrossIo.applies_to(crate_dir) {
        for g in &info.guards {
            if in_regions(test_regions, g.acquire_idx) {
                continue;
            }
            for &s in &info.io_calls {
                if g.acquire_idx < s && s < g.end_idx && !in_regions(test_regions, s) {
                    push(
                        RuleId::GuardAcrossIo,
                        s,
                        format!(
                            "`{}.{}()` guard (line {}) is live across blocking I/O `{}` — device latency under the lock serializes every thread behind it",
                            g.receiver, g.method, tokens[g.acquire_idx].line, tokens[s].text
                        ),
                        findings,
                    );
                }
            }
        }
    }

    if RuleId::LockOrder.applies_to(crate_dir) {
        for (ai, a) in info.guards.iter().enumerate() {
            for b in &info.guards[ai + 1..] {
                // b acquired while a is still live ⇒ nested lock order
                // a → b at this site. Two guards off the *same* receiver
                // are a re-entrancy bug too, but the runtime sanitizer
                // owns that; statically we flag distinct-lock nesting.
                if b.acquire_idx < a.end_idx
                    && a.receiver != b.receiver
                    && !in_regions(test_regions, a.acquire_idx)
                    && !in_regions(test_regions, b.acquire_idx)
                {
                    push(
                        RuleId::LockOrder,
                        b.acquire_idx,
                        format!(
                            "`{}.{}()` acquired while `{}.{}()` (line {}) is still held — nested lock order must be globally fixed; allow with the ordering argument or narrow the first guard",
                            b.receiver, b.method, a.receiver, a.method, tokens[a.acquire_idx].line
                        ),
                        findings,
                    );
                }
            }
        }
    }

    if RuleId::UnsafeBlock.applies_to(crate_dir) {
        let runs = comment_runs(&out.comments);
        for site in &info.unsafes {
            if in_regions(test_regions, site.idx) {
                continue;
            }
            let line = tokens[site.idx].line;
            let covered = runs
                .iter()
                .any(|r| r.has_safety && r.start <= line && line <= r.end + 1);
            if !covered {
                let what = if site.is_block { "block" } else { "item" };
                push(
                    RuleId::UnsafeBlock,
                    site.idx,
                    format!(
                        "`unsafe` {what} without a `// SAFETY:` comment — document why the invariants hold directly above it"
                    ),
                    findings,
                );
            }
        }
    }
}

/// A maximal run of comment lines with no code line between them.
struct CommentRun {
    start: u32,
    end: u32,
    has_safety: bool,
}

/// Groups comment spans into contiguous runs: a `SAFETY:` marker
/// anywhere in a run covers `unsafe` sites through the line directly
/// after the run, so a multi-paragraph safety argument still counts.
fn comment_runs(comments: &[CommentSpan]) -> Vec<CommentRun> {
    let mut runs: Vec<CommentRun> = Vec::new();
    for c in comments {
        match runs.last_mut() {
            Some(r) if c.start_line <= r.end + 1 => {
                r.end = r.end.max(c.end_line);
                r.has_safety |= c.has_safety;
            }
            _ => runs.push(CommentRun {
                start: c.start_line,
                end: c.end_line,
                has_safety: c.has_safety,
            }),
        }
    }
    runs
}

/// Whether the token at `idx` ends a float operand: a float literal, or
/// a `f64::CONST` / `f32::CONST` path (`f64::EPSILON`, `NAN`, ...).
fn float_operand_ending_at(tokens: &[Token], idx: usize) -> bool {
    let t = &tokens[idx];
    if t.kind == TokenKind::Float {
        return true;
    }
    t.kind == TokenKind::Ident
        && idx >= 2
        && tokens[idx - 1].text == "::"
        && matches!(tokens[idx - 2].text.as_str(), "f32" | "f64")
}

/// Whether a float operand starts at `idx`: an optionally negated float
/// literal or a `f64::CONST` path.
fn float_operand_starting_at(tokens: &[Token], idx: usize) -> bool {
    let mut i = idx;
    if tokens.get(i).is_some_and(|t| t.text == "-") {
        i += 1;
    }
    let Some(t) = tokens.get(i) else {
        return false;
    };
    if t.kind == TokenKind::Float {
        return true;
    }
    (t.text == "f32" || t.text == "f64")
        && tokens.get(i + 1).is_some_and(|n| n.text == "::")
        && tokens
            .get(i + 2)
            .is_some_and(|n| n.kind == TokenKind::Ident)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_at(findings: &[Finding]) -> Vec<(&'static str, u32)> {
        findings.iter().map(|f| (f.rule.id(), f.line)).collect()
    }

    #[test]
    fn flags_unwrap_and_panic_outside_tests() {
        let src = "fn f() { x.unwrap(); }\nfn g() { panic!(\"boom\"); }\n";
        let f = lint_source("a.rs", "core", src);
        assert_eq!(rules_at(&f), vec![("no-panic", 1), ("no-panic", 2)]);
    }

    #[test]
    fn skips_test_modules_and_test_fns() {
        let src = "\
fn lib() -> usize { 1 }

#[test]
fn t() { x.unwrap(); }

#[cfg(test)]
mod tests {
    fn helper() { y.unwrap(); panic!(); }
}
";
        assert!(lint_source("a.rs", "core", src).is_empty());
    }

    #[test]
    fn code_after_nested_test_module_is_still_linted() {
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() { a.unwrap(); }
}
fn lib() { b.unwrap(); }
";
        let f = lint_source("a.rs", "core", src);
        assert_eq!(rules_at(&f), vec![("no-panic", 6)]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn f() { x.unwrap(); }\n";
        let f = lint_source("a.rs", "core", src);
        assert_eq!(rules_at(&f), vec![("no-panic", 2)]);
    }

    #[test]
    fn cfg_test_on_use_does_not_arm_region() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn f() { x.unwrap(); }\n";
        let f = lint_source("a.rs", "core", src);
        assert_eq!(rules_at(&f), vec![("no-panic", 3)]);
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); z.expect_err(\"e\"); }";
        assert!(lint_source("a.rs", "core", src).is_empty());
    }

    #[test]
    fn float_cmp_literal_and_const() {
        let src = "fn f() { if x == 0.0 {} if 1e-6 != y {} if z == f64::NAN {} if n == 0 {} }";
        let f = lint_source("a.rs", "core", src);
        assert_eq!(
            rules_at(&f),
            vec![("float-cmp", 1), ("float-cmp", 1), ("float-cmp", 1)]
        );
    }

    #[test]
    fn hash_iter_scoped_by_crate() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            rules_at(&lint_source("a.rs", "core", src)),
            vec![("hash-iter", 1)]
        );
        assert!(lint_source("a.rs", "cli", src).is_empty());
    }

    #[test]
    fn wall_clock_patterns() {
        let src =
            "fn f() { let t = SystemTime::now(); let i = Instant::now(); let r = thread_rng(); }";
        let f = lint_source("a.rs", "eval", src);
        assert_eq!(
            rules_at(&f),
            vec![("wall-clock", 1), ("wall-clock", 1), ("wall-clock", 1)]
        );
        assert!(lint_source("a.rs", "serve", src).is_empty());
    }

    #[test]
    fn cast_truncation_only_in_linalg() {
        let src = "fn f(n: usize) { let x = n as u32; let y = n as f64; let z = n as u64; }";
        assert_eq!(
            rules_at(&lint_source("a.rs", "linalg", src)),
            vec![("cast-truncation", 1)]
        );
        assert!(lint_source("a.rs", "nn", src).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_same_and_next_line() {
        let src = "\
fn f() {
    // envlint: allow(no-panic) — lock poisoning is unrecoverable here
    x.unwrap();
    y.unwrap(); // envlint: allow(no-panic): checked non-empty above
    z.unwrap();
}
";
        let f = lint_source("a.rs", "core", src);
        assert_eq!(rules_at(&f), vec![("no-panic", 5)]);
    }

    #[test]
    fn standalone_allow_skips_reason_comment_lines_to_next_code_line() {
        // The directive opens a comment block whose explanation continues
        // on plain comment lines; coverage must land on the first code
        // line after the block, and only on it.
        let src = "\
fn f() {
    // envlint: allow(no-panic) — the queue is drained under the same
    // lock that filled it, so the head is always present; see the
    // scheduling invariant in DESIGN.md.
    x.unwrap();
    y.unwrap();
}
";
        let f = lint_source("a.rs", "core", src);
        assert_eq!(rules_at(&f), vec![("no-panic", 6)]);
    }

    #[test]
    fn standalone_allow_mid_expression_covers_the_offending_line() {
        // rustfmt keeps comments inside method chains, so a directive can
        // sit directly above the line that carries the violation even when
        // the statement spans several lines.
        let src = "\
fn f() -> u32 {
    build()
        .finish()
        // envlint: allow(no-panic) — construction is infallible for the
        // fixed config above.
        .unwrap()
}
";
        let f = lint_source("a.rs", "core", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_without_reason_reports_and_does_not_suppress() {
        let src = "fn f() { x.unwrap(); } // envlint: allow(no-panic)\n";
        let f = lint_source("a.rs", "core", src);
        assert_eq!(rules_at(&f), vec![("no-panic", 1), ("bad-allow", 1)]);
    }

    #[test]
    fn allow_with_unknown_rule_reports() {
        let src = "// envlint: allow(no-such-rule) — because\nfn f() {}\n";
        let f = lint_source("a.rs", "core", src);
        assert_eq!(rules_at(&f), vec![("bad-allow", 1)]);
    }

    #[test]
    fn strings_and_comments_never_match() {
        let src = "fn f() { let s = \"x.unwrap() HashMap panic!\"; } // .unwrap() HashMap\n";
        assert!(lint_source("a.rs", "core", src).is_empty());
    }

    #[test]
    fn test_source_only_checks_directives() {
        let src = "fn t() { x.unwrap(); }\n// envlint: allow(no-panic)\n";
        let f = lint_test_source("t.rs", src);
        assert_eq!(rules_at(&f), vec![("bad-allow", 2)]);
    }

    #[test]
    fn lock_across_spawn_fires_at_the_spawn_site() {
        let src = "\
fn f() -> Result<(), E> {
    let g = self.state.lock();
    par::scope(|s| {
        s.spawn_named(\"job\", || work());
    });
    Ok(())
}
";
        let f = lint_source("a.rs", "par", src);
        assert_eq!(
            rules_at(&f),
            vec![("lock-across-spawn", 3), ("lock-across-spawn", 4)]
        );
    }

    #[test]
    fn dropped_guard_does_not_fire_across_spawn() {
        let src = "\
fn f() {
    let g = self.state.lock();
    let n = g.len();
    drop(g);
    par::scope(|s| { s.spawn_named(\"job\", move || use_it(n)); });
}
";
        assert!(lint_source("a.rs", "par", src).is_empty());
    }

    #[test]
    fn inner_block_guard_does_not_fire_across_spawn() {
        let src = "\
fn f() {
    { let g = self.state.lock(); touch(&g); }
    par::scope(|s| { s.spawn_named(\"job\", || work()); });
}
";
        assert!(lint_source("a.rs", "par", src).is_empty());
    }

    #[test]
    fn lock_order_fires_at_second_acquisition_and_allows_suppress() {
        let src = "\
fn f() {
    let a = self.shards[0].series.read();
    let b = self.shards[1].series.read();
}
fn g() {
    let a = self.shards[0].series.read();
    // envlint: allow(lock-order) — shard indices ascend, order is fixed
    let b = self.shards[1].series.read();
}
";
        let f = lint_source("a.rs", "telemetry", src);
        assert_eq!(rules_at(&f), vec![("lock-order", 3)]);
    }

    #[test]
    fn sequential_guards_are_not_a_lock_order_pair() {
        let src = "\
fn f() {
    { let a = self.x.lock(); touch(&a); }
    { let b = self.y.lock(); touch(&b); }
}
";
        assert!(lint_source("a.rs", "core", src).is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let src = "\
fn f() {
    unsafe { deref(p) };
}
fn g() {
    // SAFETY: p outlives the call — pinned by the scope above.
    unsafe { deref(p) };
}
";
        let f = lint_source("a.rs", "par", src);
        assert_eq!(rules_at(&f), vec![("unsafe-block", 2)]);
    }

    #[test]
    fn multi_line_safety_run_covers_the_unsafe_line() {
        let src = "\
fn f() {
    // SAFETY: the borrow is erased only for the scope's lifetime;
    // the scope joins every job before returning, so no reference
    // escapes.
    let s = unsafe { transmute(x) };
}
";
        assert!(lint_source("a.rs", "par", src).is_empty());
    }

    #[test]
    fn guard_across_io_fires_at_the_io_site() {
        let src = "\
fn f() {
    let g = self.index.write();
    let text = fs::read_to_string(path);
}
";
        let f = lint_source("a.rs", "core", src);
        assert_eq!(rules_at(&f), vec![("guard-across-io", 3)]);
    }

    #[test]
    fn scope_rules_skip_test_regions() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t() {
        let a = m.lock();
        let b = n.lock();
        par::scope(|s| { s.spawn_named(\"x\", || ()); });
        unsafe { deref(p) };
    }
}
";
        assert!(lint_source("a.rs", "core", src).is_empty());
    }
}
