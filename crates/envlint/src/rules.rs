//! The Env2Vec workspace lint rules: ids, rationale, and scope.
//!
//! Every rule is deny-by-default inside its scope. The only escape hatch
//! is an inline control comment on the offending line (or the line
//! directly above):
//!
//! ```text
//! // envlint: allow(no-panic) — reason the invariant holds here
//! ```
//!
//! A directive with no reason text does not suppress anything; it is
//! itself reported (as `bad-allow`), so every exception stays documented.

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// `unwrap()` / `expect()` / `panic!` / `unreachable!` / `todo!` /
    /// `unimplemented!` in non-test code. A panic in library code kills a
    /// whole screening run; return `Result` or document the invariant.
    NoPanic,
    /// Direct `==` / `!=` against a floating-point literal or float
    /// constant outside tests. Exact comparisons hide rounding bugs that
    /// corrupt regenerated tables; use a tolerance or document why the
    /// exact bit-pattern check is intended (e.g. a division guard).
    FloatCmp,
    /// `HashMap` / `HashSet` in deterministic code paths (model,
    /// training, eval, telemetry). Iteration order is randomised per
    /// process, so vocab ids, scraped series, and report rows silently
    /// reorder across runs; use `BTreeMap` / `BTreeSet` or sorted
    /// iteration.
    HashIter,
    /// Wall-clock or OS-entropy access (`SystemTime::now`,
    /// `Instant::now`, `thread_rng`, `from_entropy`) in crates that feed
    /// the repro tables. Repro runs must be a pure function of the seed.
    WallClock,
    /// `as` cast to an integer type narrower than 64 bits inside the
    /// `linalg` hot kernels, where a silently truncated index corrupts
    /// results at production matrix sizes.
    CastTruncation,
    /// A lock guard (`.lock()` / `.read()` / `.write()` binding) live
    /// across a call that hands work to the pool (`par::scope`, `spawn`,
    /// `spawn_named`, `par_for_chunks`, ...). The help-stealing scope
    /// owner runs sibling jobs inline, so a job that re-acquires the
    /// held lock deadlocks against its own spawner.
    LockAcrossSpawn,
    /// Two distinct lock acquisitions live in the same scope. With 16
    /// per-shard lock domains in the TSDB, inconsistent nesting order
    /// between any two sites is an ABBA deadlock waiting for load;
    /// allowed only with a reason proving the order is globally fixed
    /// (e.g. ascending shard index).
    LockOrder,
    /// An `unsafe` block, fn, or impl without a `// SAFETY:` comment on
    /// or directly above it documenting why the invariants hold.
    UnsafeBlock,
    /// A lock guard live across a blocking file/network call. Device
    /// latency under a shard lock serializes every thread touching that
    /// shard behind the disk.
    GuardAcrossIo,
    /// An `envlint: allow` directive with no reason text, or naming an
    /// unknown rule. Emitted by the analyzer itself.
    BadAllow,
}

/// Crates whose output lands in the repro tables or scraped telemetry:
/// the `wall-clock` rule's positive scope. Paired with
/// [`WALL_CLOCK_EXEMPT`]; the two lists must jointly cover every
/// workspace member (enforced by `tests/scope_coverage.rs`), so a new
/// crate cannot silently fall outside the rule.
pub const WALL_CLOCK_SCOPE: [&str; 11] = [
    "core",
    "nn",
    "baselines",
    "linalg",
    "htm",
    "datagen",
    "eval",
    "par",
    "introspect",
    "telemetry",
    // `obs` joined the scope when it grew `obs::trace`: trace ids must
    // be deterministic (seeded counters, never the clock), so the crate
    // is now checked and its two legitimate timestamp sites (span
    // start/stop, log lines) carry reasoned `allow(wall-clock)`s.
    "obs",
];

/// Crates documented as *intentionally* outside `wall-clock`: the CLI
/// and bench driver measure wall time by design, `serve` times requests
/// and paces storms, `envlint` holds no model state, and `xtests` is
/// test code.
pub const WALL_CLOCK_EXEMPT: [&str; 5] = ["cli", "bench", "serve", "envlint", "xtests"];

/// Crates exempt from `hash-iter`: flag parsing and the bench driver do
/// I/O, not numerics; `envlint` itself holds no model state.
pub const HASH_ITER_EXEMPT: [&str; 4] = ["cli", "bench", "envlint", "xtests"];

impl RuleId {
    /// All reportable rules, in severity order.
    pub const ALL: [RuleId; 10] = [
        RuleId::NoPanic,
        RuleId::FloatCmp,
        RuleId::HashIter,
        RuleId::WallClock,
        RuleId::CastTruncation,
        RuleId::LockAcrossSpawn,
        RuleId::LockOrder,
        RuleId::UnsafeBlock,
        RuleId::GuardAcrossIo,
        RuleId::BadAllow,
    ];

    /// The four concurrency rules introduced with the block-scoped
    /// analyzer, in one place so CI can gate specifically on them.
    pub const CONCURRENCY: [RuleId; 4] = [
        RuleId::LockAcrossSpawn,
        RuleId::LockOrder,
        RuleId::UnsafeBlock,
        RuleId::GuardAcrossIo,
    ];

    /// The stable id used in output and in `allow(...)` directives.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::NoPanic => "no-panic",
            RuleId::FloatCmp => "float-cmp",
            RuleId::HashIter => "hash-iter",
            RuleId::WallClock => "wall-clock",
            RuleId::CastTruncation => "cast-truncation",
            RuleId::LockAcrossSpawn => "lock-across-spawn",
            RuleId::LockOrder => "lock-order",
            RuleId::UnsafeBlock => "unsafe-block",
            RuleId::GuardAcrossIo => "guard-across-io",
            RuleId::BadAllow => "bad-allow",
        }
    }

    /// Parses a rule id as written in an `allow(...)` directive.
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.id() == s)
    }

    /// One-line description shown by `envlint --rules`.
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::NoPanic => {
                "no unwrap()/expect()/panic!/unreachable!/todo!/unimplemented! in non-test code"
            }
            RuleId::FloatCmp => {
                "no == / != against float literals or float constants outside tests"
            }
            RuleId::HashIter => {
                "no HashMap/HashSet in deterministic code paths (use BTreeMap/BTreeSet)"
            }
            RuleId::WallClock => {
                "no SystemTime/Instant::now or OS-entropy RNG in repro-table crates"
            }
            RuleId::CastTruncation => "no narrowing integer `as` casts in linalg hot kernels",
            RuleId::LockAcrossSpawn => {
                "no lock guard live across par::scope/spawn/par_for_chunks (pool deadlock risk)"
            }
            RuleId::LockOrder => {
                "no two lock guards live in the same scope without a reasoned ordering allow"
            }
            RuleId::UnsafeBlock => "no unsafe without a `// SAFETY:` comment on or above it",
            RuleId::GuardAcrossIo => {
                "no lock guard live across blocking file/network calls (shard serialization)"
            }
            RuleId::BadAllow => "envlint: allow directive without a reason or with an unknown rule",
        }
    }

    /// Whether the rule applies inside the crate living at
    /// `crates/<crate_dir>` (or `xtests`).
    ///
    /// Scopes encode which invariant each part of the workspace carries:
    /// everything must be panic-free and float-comparison-clean;
    /// determinism rules target the crates whose output lands in the
    /// repro tables or the scraped telemetry; the cast rule targets the
    /// numeric kernels.
    pub fn applies_to(self, crate_dir: &str) -> bool {
        match self {
            RuleId::NoPanic | RuleId::FloatCmp | RuleId::BadAllow => true,
            // The concurrency rules apply everywhere: a deadlock or an
            // undocumented unsafe is a hazard regardless of which crate
            // it lives in.
            RuleId::LockAcrossSpawn
            | RuleId::LockOrder
            | RuleId::UnsafeBlock
            | RuleId::GuardAcrossIo => true,
            RuleId::HashIter => !HASH_ITER_EXEMPT.contains(&crate_dir),
            // `par` is in scope: its determinism contract forbids timing
            // from influencing results, so any clock use there must carry
            // a reasoned allow (pool-utilisation metrics only).
            // `introspect` is in scope for the same reason: the
            // self-monitor's alarms land in tier-1 test assertions, so
            // its series must be indexed by logical ticks, never wall
            // time.
            // `telemetry` is in scope since the TSDB became
            // self-instrumenting: stored samples and query results must
            // stay a pure function of the writes, so the engine's one
            // latency-timer call site carries a reasoned allow.
            RuleId::WallClock => WALL_CLOCK_SCOPE.contains(&crate_dir),
            RuleId::CastTruncation => crate_dir == "linalg",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::parse(r.id()), Some(r));
        }
        assert_eq!(RuleId::parse("no-such-rule"), None);
    }

    #[test]
    fn scopes() {
        assert!(RuleId::NoPanic.applies_to("cli"));
        assert!(!RuleId::HashIter.applies_to("cli"));
        assert!(RuleId::HashIter.applies_to("core"));
        assert!(RuleId::WallClock.applies_to("linalg"));
        assert!(RuleId::WallClock.applies_to("par"));
        assert!(RuleId::WallClock.applies_to("introspect"));
        assert!(RuleId::WallClock.applies_to("telemetry"));
        assert!(RuleId::WallClock.applies_to("obs"));
        assert!(!RuleId::WallClock.applies_to("serve"));
        assert!(RuleId::CastTruncation.applies_to("linalg"));
        assert!(!RuleId::CastTruncation.applies_to("nn"));
        for rule in RuleId::CONCURRENCY {
            for c in [
                "core",
                "par",
                "telemetry",
                "obs",
                "cli",
                "envlint",
                "xtests",
            ] {
                assert!(rule.applies_to(c), "{} must apply to {c}", rule.id());
            }
        }
    }

    #[test]
    fn wall_clock_scope_and_exempt_are_disjoint() {
        for c in WALL_CLOCK_SCOPE {
            assert!(
                !WALL_CLOCK_EXEMPT.contains(&c),
                "{c} is in both the scope and the exempt list"
            );
        }
    }
}
