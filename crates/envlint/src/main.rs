//! The `envlint` binary: `cargo run -p envlint -- --check`.

use std::path::PathBuf;
use std::process::ExitCode;

use envlint::rules::RuleId;
use envlint::{find_workspace_root, findings_to_json, findings_to_sarif, lint_workspace};

const USAGE: &str = "usage: envlint [--check] [--format=text|json|sarif] [--root PATH] | --rules\n\
     exit status: 0 clean, 1 findings, 2 usage or I/O error";

fn main() -> ExitCode {
    let mut format = "text".to_string();
    let mut root: Option<PathBuf> = None;
    let mut list_rules = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {}
            "--rules" => list_rules = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            _ if arg.starts_with("--format=") => {
                format = arg["--format=".len()..].to_string();
                if format != "text" && format != "json" && format != "sarif" {
                    eprintln!("unknown format `{format}`\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => {
                eprintln!("unknown argument `{arg}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in RuleId::ALL {
            println!("{:16} {}", rule.id(), rule.describe());
        }
        return ExitCode::SUCCESS;
    }

    let root = root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    });
    let Some(root) = root else {
        eprintln!("envlint: no workspace root found (pass --root)");
        return ExitCode::from(2);
    };

    let findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("envlint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if format == "json" {
        print!("{}", findings_to_json(&findings));
    } else if format == "sarif" {
        print!("{}", findings_to_sarif(&findings));
    } else {
        for f in &findings {
            println!("{}", f.render());
        }
        if findings.is_empty() {
            eprintln!("envlint: workspace clean");
        } else {
            eprintln!("envlint: {} finding(s)", findings.len());
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
