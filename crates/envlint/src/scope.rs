//! Block-scoped analysis: a lightweight brace/scope tree over the token
//! stream, plus an intraprocedural guard-liveness pass.
//!
//! This is deliberately *not* an AST. The tree tracks exactly what the
//! concurrency rules need:
//!
//! - **Block nesting** — every `{ ... }` becomes a [`Block`] with a
//!   parent link, so a binding's lifetime ends at its enclosing block.
//! - **Closure boundaries** — a block introduced by `|args| { ... }` is
//!   tagged [`BlockKind::Closure`]; guards declared inside one die with
//!   it like any block, and spawn calls textually *after* a closure body
//!   are outside it.
//! - **`unsafe` sites** — `unsafe` blocks/fns/impls are collected for the
//!   `unsafe-block` rule.
//! - **Lock-guard bindings** — `let g = x.lock();` (also `.read()` /
//!   `.write()`) opens a [`Guard`] whose live range runs from the
//!   binding to the first `drop(g)` or the end of the enclosing block,
//!   whichever comes first.
//!
//! Liveness is token-index based: tokens are in source order, so "guard
//! live across call X" is simply `guard.acquire_idx < X < guard.end_idx`.
//! That is exact for straight-line code and conservative for early
//! returns (a `return` before the spawn still counts as live), which is
//! the right polarity for a deny-by-default linter with reasoned allows.

use crate::lexer::{Token, TokenKind};

/// What introduced a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// The whole file (virtual block 0).
    Root,
    /// An ordinary `{ ... }` (fn body, `if`, `match` arm, plain scope).
    Plain,
    /// The body of a closure (`|x| { ... }` or `|| { ... }`).
    Closure,
    /// An `unsafe { ... }` block.
    Unsafe,
}

/// One brace-delimited scope.
#[derive(Debug, Clone, Copy)]
pub struct Block {
    /// Index into [`ScopeInfo::blocks`] of the enclosing block (self for
    /// the root).
    pub parent: usize,
    /// Token index of the opening `{` (0 for the root).
    pub start: usize,
    /// Token index one past the closing `}` (`tokens.len()` for the root
    /// or an unclosed block).
    pub end: usize,
    /// What introduced the block.
    pub kind: BlockKind,
}

/// A `let` binding of a lock guard and its live range.
#[derive(Debug, Clone)]
pub struct Guard {
    /// Bound name (`g` in `let g = x.lock();`); `None` for patterns the
    /// tree does not resolve (tuples), which then live to block end.
    pub name: Option<String>,
    /// Token index of the acquisition method (`lock` / `read` / `write`).
    pub acquire_idx: usize,
    /// Which method acquired it (`"lock"`, `"read"`, `"write"`).
    pub method: &'static str,
    /// Source text of the receiver, for messages (`self.shard.series`).
    pub receiver: String,
    /// Token index one past the last token at which the guard is live:
    /// the `drop(name)` call, or the end of the enclosing block.
    pub end_idx: usize,
    /// Whether the guard ends via an explicit `drop(name)`.
    pub explicit_drop: bool,
}

/// One `unsafe` site.
#[derive(Debug, Clone, Copy)]
pub struct UnsafeSite {
    /// Token index of the `unsafe` keyword.
    pub idx: usize,
    /// Whether it opens a block (vs. `unsafe fn` / `unsafe impl`).
    pub is_block: bool,
}

/// Scope-level facts about one file, consumed by the concurrency rules.
#[derive(Debug, Default)]
pub struct ScopeInfo {
    /// All blocks; index 0 is the virtual file root.
    pub blocks: Vec<Block>,
    /// Lock-guard bindings with live ranges.
    pub guards: Vec<Guard>,
    /// Token indices of calls that hand work to another thread
    /// (`par::scope`, `spawn`, `spawn_named`, `par_for_chunks`, ...).
    pub spawns: Vec<usize>,
    /// Token indices of file/network calls (`fs::*`, `File::*`,
    /// `read_to_string`, `TcpStream`, ...).
    pub io_calls: Vec<usize>,
    /// `unsafe` keywords (blocks, fns, impls).
    pub unsafes: Vec<UnsafeSite>,
}

/// Pool/thread entry points: a guard live across one of these is held
/// while another worker may need the same lock (deadlock with the
/// help-stealing pool, or serialization of every sibling job).
const SPAWN_CALLS: &[&str] = &[
    "spawn",
    "spawn_named",
    "par_for_chunks",
    "par_map",
    "par_map_reduce",
    "append_batch",
];

/// Blocking file/network identifiers: called with a guard live they
/// serialize the whole lock domain behind device latency.
const IO_CALLS: &[&str] = &[
    "read_to_string",
    "read_to_end",
    "write_all",
    "write_fmt",
    "flush",
    "read_dir",
    "create_dir_all",
    "remove_file",
    "remove_dir_all",
    "TcpStream",
    "TcpListener",
    "UdpSocket",
];

/// Methods that pass a lock guard through unchanged, so a chain like
/// `.lock().unwrap_or_else(PoisonError::into_inner)` still binds a
/// guard. Any other continuation (`.len()`, `.get(..)`) consumes the
/// guard as a temporary that dies at the end of the statement.
const GUARD_PRESERVING: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

impl ScopeInfo {
    /// Runs the full scope analysis over one file's token stream.
    pub fn analyze(tokens: &[Token]) -> ScopeInfo {
        let mut info = ScopeInfo {
            blocks: vec![Block {
                parent: 0,
                start: 0,
                end: tokens.len(),
                kind: BlockKind::Root,
            }],
            ..ScopeInfo::default()
        };
        info.build_tree(tokens);
        info.collect_unsafe(tokens);
        info.collect_spawns(tokens);
        info.collect_io(tokens);
        info.collect_guards(tokens);
        info
    }

    /// Innermost block containing token index `idx`.
    pub fn enclosing_block(&self, idx: usize) -> usize {
        let mut best = 0usize;
        for (i, b) in self.blocks.iter().enumerate() {
            if b.start <= idx && idx < b.end && b.start >= self.blocks[best].start {
                best = i;
            }
        }
        best
    }

    fn build_tree(&mut self, tokens: &[Token]) {
        let mut stack: Vec<usize> = vec![0];
        for (i, t) in tokens.iter().enumerate() {
            if t.kind != TokenKind::Punct {
                continue;
            }
            match t.text.as_str() {
                "{" => {
                    let parent = *stack.last().unwrap_or(&0);
                    let kind = block_kind(tokens, i);
                    self.blocks.push(Block {
                        parent,
                        start: i,
                        end: tokens.len(),
                        kind,
                    });
                    stack.push(self.blocks.len() - 1);
                }
                "}" if stack.len() > 1 => {
                    if let Some(b) = stack.pop() {
                        self.blocks[b].end = i + 1;
                    }
                }
                _ => {}
            }
        }
    }

    fn collect_unsafe(&mut self, tokens: &[Token]) {
        for (i, t) in tokens.iter().enumerate() {
            if t.kind == TokenKind::Ident && t.text == "unsafe" {
                let is_block = tokens.get(i + 1).is_some_and(|n| n.text == "{");
                self.unsafes.push(UnsafeSite { idx: i, is_block });
            }
        }
    }

    fn collect_spawns(&mut self, tokens: &[Token]) {
        for (i, t) in tokens.iter().enumerate() {
            if t.kind != TokenKind::Ident {
                continue;
            }
            let called = tokens.get(i + 1).is_some_and(|n| n.text == "(");
            if !called {
                continue;
            }
            if SPAWN_CALLS.contains(&t.text.as_str()) {
                self.spawns.push(i);
                continue;
            }
            // `scope` is a common word; only treat it as the pool entry
            // point when it is path-qualified (`par::scope(`,
            // `crate::scope(`) or directly takes a closure (`scope(|s|`).
            if t.text == "scope" {
                let qualified = i >= 1 && tokens[i - 1].text == "::";
                let closure_arg = tokens
                    .get(i + 2)
                    .is_some_and(|n| n.text == "|" || n.text == "||" || n.text == "move");
                if qualified || closure_arg {
                    self.spawns.push(i);
                }
            }
        }
    }

    fn collect_io(&mut self, tokens: &[Token]) {
        let mut seen = std::collections::BTreeSet::new();
        for (i, t) in tokens.iter().enumerate() {
            if t.kind != TokenKind::Ident {
                continue;
            }
            // `fs::anything` and `File::anything` are I/O at the path
            // level; report at the method identifier.
            if (t.text == "fs" || t.text == "File")
                && tokens.get(i + 1).is_some_and(|n| n.text == "::")
                && tokens
                    .get(i + 2)
                    .is_some_and(|n| n.kind == TokenKind::Ident)
            {
                seen.insert(i + 2);
                continue;
            }
            if IO_CALLS.contains(&t.text.as_str())
                && tokens
                    .get(i + 1)
                    .is_some_and(|n| n.text == "(" || n.text == "::")
            {
                seen.insert(i);
            }
        }
        self.io_calls = seen.into_iter().collect();
    }

    fn collect_guards(&mut self, tokens: &[Token]) {
        let mut i = 0;
        while i < tokens.len() {
            if tokens[i].kind == TokenKind::Ident && tokens[i].text == "let" {
                if let Some(guard) = self.guard_at_let(tokens, i) {
                    i = guard.acquire_idx + 1;
                    self.guards.push(guard);
                    continue;
                }
            }
            i += 1;
        }
    }

    /// Parses `let [mut] NAME [: ty] = <expr>;` starting at the `let` at
    /// `let_idx`; returns a [`Guard`] when the whole init expression is a
    /// lock acquisition chain.
    fn guard_at_let(&self, tokens: &[Token], let_idx: usize) -> Option<Guard> {
        let mut j = let_idx + 1;
        if tokens.get(j).is_some_and(|t| t.text == "mut") {
            j += 1;
        }
        let name = match tokens.get(j) {
            Some(t) if t.kind == TokenKind::Ident && t.text != "_" => Some(t.text.clone()),
            _ => return None,
        };
        // Find the `=` that starts the initializer (skip a `: Type`
        // annotation; bail on `let ... else`, `if let`, patterns).
        while j < tokens.len() {
            let t = &tokens[j];
            if t.text == "=" {
                break;
            }
            if t.text == ";" || t.text == "{" || t.text == "(" {
                return None;
            }
            j += 1;
        }
        let init_start = j + 1;
        // Scan the initializer for the acquisition call that *is* the
        // final value of the expression.
        let (acquire_idx, method, chain_end) = find_acquisition(tokens, init_start)?;
        // The chain must terminate the statement: `let g = x.lock();` or
        // `...?;` — anything else consumes the guard as a temporary.
        let mut k = chain_end;
        if tokens.get(k).is_some_and(|t| t.text == "?") {
            k += 1;
        }
        if tokens.get(k).is_none_or(|t| t.text != ";") {
            return None;
        }
        let block = self.enclosing_block(let_idx);
        let block_end = self.blocks[block].end;
        // The guard dies early at an explicit `drop(name)` inside its
        // block (also `mem::drop` / `std::mem::drop`).
        let mut end_idx = block_end;
        let mut explicit_drop = false;
        if let Some(n) = &name {
            let mut d = k;
            while d + 3 < block_end.min(tokens.len()) {
                if tokens[d].kind == TokenKind::Ident
                    && tokens[d].text == "drop"
                    && tokens[d + 1].text == "("
                    && tokens[d + 2].text == *n
                    && tokens[d + 3].text == ")"
                {
                    end_idx = d;
                    explicit_drop = true;
                    break;
                }
                d += 1;
            }
        }
        Some(Guard {
            name,
            acquire_idx,
            method,
            receiver: receiver_text(tokens, acquire_idx),
            end_idx,
            explicit_drop,
        })
    }
}

/// Classifies the block opened by the `{` at `open_idx`.
fn block_kind(tokens: &[Token], open_idx: usize) -> BlockKind {
    let Some(prev) = open_idx.checked_sub(1).map(|p| &tokens[p]) else {
        return BlockKind::Plain;
    };
    if prev.kind == TokenKind::Ident && prev.text == "unsafe" {
        return BlockKind::Unsafe;
    }
    // `|x| {` / `|| {` — the lexer keeps `||` as one token, and a
    // closure's parameter list ends with a `|`.
    if prev.text == "|" || prev.text == "||" {
        return BlockKind::Closure;
    }
    // `move` closures: `move || {` is covered above; `|x| move {` is not
    // Rust, but `async move {` and `|x| -> T {` occur.
    if prev.text == "move" {
        return BlockKind::Closure;
    }
    BlockKind::Plain
}

/// Finds a `.lock()` / `.read()` / `.write()` acquisition starting the
/// value chain at `start`. Returns `(acquire_idx, method, chain_end)`
/// where `chain_end` is the token index after the final guard-preserving
/// continuation.
fn find_acquisition(tokens: &[Token], start: usize) -> Option<(usize, &'static str, usize)> {
    let mut i = start;
    // Walk the receiver expression until the statement ends. A `{`
    // means the initializer is block-valued (`let x = { ... }`, `if`,
    // `match`): any acquisition inside belongs to that inner block and
    // is picked up when the guard scan reaches its own `let`.
    while i + 3 < tokens.len() {
        let t = &tokens[i];
        if t.text == ";" || t.text == "{" {
            return None;
        }
        if t.text == "."
            && tokens[i + 1].kind == TokenKind::Ident
            && tokens[i + 2].text == "("
            && tokens[i + 3].text == ")"
        {
            let method = match tokens[i + 1].text.as_str() {
                "lock" => "lock",
                "read" => "read",
                "write" => "write",
                _ => {
                    i += 1;
                    continue;
                }
            };
            // Follow guard-preserving continuations to the chain's end.
            let mut k = i + 4;
            loop {
                if tokens.get(k).is_some_and(|t| t.text == ".")
                    && tokens
                        .get(k + 1)
                        .is_some_and(|t| GUARD_PRESERVING.contains(&t.text.as_str()))
                    && tokens.get(k + 2).is_some_and(|t| t.text == "(")
                {
                    k = skip_balanced(tokens, k + 2)?;
                } else {
                    break;
                }
            }
            // A further `.method(...)` consumes the guard: temporary.
            if tokens.get(k).is_some_and(|t| t.text == ".") {
                return None;
            }
            return Some((i + 1, method, k));
        }
        i += 1;
    }
    None
}

/// Given the index of an opening `(`, returns the index one past its
/// matching `)`.
fn skip_balanced(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (off, t) in tokens[open..].iter().enumerate() {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + off + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Short source rendering of a lock acquisition's receiver, for
/// messages: walks back over `ident`, `.`, `::`, `self`, and index
/// brackets from the `.lock()` dot.
fn receiver_text(tokens: &[Token], acquire_idx: usize) -> String {
    // acquire_idx points at `lock`/`read`/`write`; the dot is before it.
    let mut start = acquire_idx.saturating_sub(1);
    let mut depth = 0i32;
    while start > 0 {
        let t = &tokens[start - 1];
        let cont = match t.text.as_str() {
            "]" => {
                depth += 1;
                true
            }
            "[" => {
                depth -= 1;
                depth >= 0
            }
            "." | "::" => true,
            _ if depth > 0 => true,
            _ => t.kind == TokenKind::Ident || t.kind == TokenKind::Int,
        };
        if !cont {
            break;
        }
        start -= 1;
    }
    let mut out = String::new();
    for t in &tokens[start..acquire_idx.saturating_sub(1)] {
        out.push_str(&t.text);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn info(src: &str) -> ScopeInfo {
        ScopeInfo::analyze(&lex(src).tokens)
    }

    #[test]
    fn tree_tracks_nesting_and_kinds() {
        let src = "fn f() { if x { } par::scope(|s| { }); unsafe { } }";
        let i = info(src);
        // root + fn body + if + closure + unsafe
        assert_eq!(i.blocks.len(), 5);
        assert_eq!(i.blocks[0].kind, BlockKind::Root);
        assert_eq!(i.blocks[1].kind, BlockKind::Plain);
        let kinds: Vec<BlockKind> = i.blocks.iter().map(|b| b.kind).collect();
        assert!(kinds.contains(&BlockKind::Closure));
        assert!(kinds.contains(&BlockKind::Unsafe));
        // Every non-root block nests inside the fn body or deeper.
        for b in &i.blocks[2..] {
            assert!(b.start > i.blocks[1].start && b.end <= i.blocks[1].end);
        }
    }

    #[test]
    fn guard_binding_and_block_end_liveness() {
        let src = "fn f() { let g = m.lock(); use_it(&g); }";
        let i = info(src);
        assert_eq!(i.guards.len(), 1);
        let g = &i.guards[0];
        assert_eq!(g.name.as_deref(), Some("g"));
        assert_eq!(g.method, "lock");
        assert!(!g.explicit_drop);
        // Lives to the end of the fn body block.
        let body = i.enclosing_block(g.acquire_idx);
        assert_eq!(g.end_idx, i.blocks[body].end);
    }

    #[test]
    fn guard_ends_at_explicit_drop() {
        let src = "fn f() { let g = m.lock(); touch(); drop(g); later(); }";
        let i = info(src);
        assert_eq!(i.guards.len(), 1);
        assert!(i.guards[0].explicit_drop);
        // end_idx points at the `drop` token.
        let toks = lex(src).tokens;
        assert_eq!(toks[i.guards[0].end_idx].text, "drop");
    }

    #[test]
    fn inner_block_guard_dies_with_the_block() {
        let src = "fn f() { { let g = m.lock(); } after(); }";
        let i = info(src);
        assert_eq!(i.guards.len(), 1);
        let toks = lex(src).tokens;
        // end_idx is one past the inner `}` — before `after`.
        let after = toks.iter().position(|t| t.text == "after").unwrap();
        assert!(i.guards[0].end_idx <= after);
    }

    #[test]
    fn guard_preserving_chain_still_binds_a_guard() {
        let src = "fn f() { let g = m.lock().unwrap_or_else(PoisonError::into_inner); }";
        let i = info(src);
        assert_eq!(i.guards.len(), 1);
    }

    #[test]
    fn consuming_chain_is_a_temporary_not_a_guard() {
        for src in [
            "fn f() { let n = m.lock().len(); }",
            "fn f() { let v = m.read().get(0).copied(); }",
            "fn f() { let n = m.lock(); }", // plain guard — control
        ] {
            let i = info(src);
            let expect = usize::from(src.contains("let n = m.lock(); "));
            assert_eq!(i.guards.len(), expect, "{src}");
        }
    }

    #[test]
    fn block_valued_initializer_binds_the_inner_guard_not_the_outer_let() {
        // `snapshot` is a plain value; the guard is `g`, scoped to the
        // inner block — it must not inherit the outer binding's scope.
        let src = "fn f() { let snapshot = { let g = state.lock(); g.snap() }; after(); }";
        let i = info(src);
        assert_eq!(i.guards.len(), 1);
        assert_eq!(i.guards[0].name.as_deref(), Some("g"));
        let toks = lex(src).tokens;
        let after = toks.iter().position(|t| t.text == "after").unwrap();
        assert!(i.guards[0].end_idx <= after);
    }

    #[test]
    fn io_read_with_buffer_argument_is_not_a_guard() {
        // `io::Read::read(&mut buf)` has an argument, so the empty-parens
        // acquisition pattern must not match.
        let src = "fn f() { let n = stream.read(&mut buf); }";
        assert!(info(src).guards.is_empty());
    }

    #[test]
    fn spawn_and_io_sites_are_collected() {
        let src = "\
fn f() {
    par::scope(|s| { s.spawn(move || {}); });
    std::thread::spawn(|| {});
    par_for_chunks(data, 4, |_, _| {});
    let text = fs::read_to_string(path);
    File::open(path);
    TcpStream::connect(addr);
}
";
        let i = info(src);
        let toks = lex(src).tokens;
        let spawn_names: Vec<&str> = i.spawns.iter().map(|&s| toks[s].text.as_str()).collect();
        assert_eq!(
            spawn_names,
            vec!["scope", "spawn", "spawn", "par_for_chunks"]
        );
        let io_names: Vec<&str> = i.io_calls.iter().map(|&s| toks[s].text.as_str()).collect();
        assert_eq!(io_names, vec!["read_to_string", "open", "TcpStream"]);
    }

    #[test]
    fn bare_scope_identifier_is_not_a_spawn() {
        // `scope` as a variable or a self-call without closure arg.
        let src = "fn f() { let scope = 3; helper(scope); scope_fn(); }";
        assert!(info(src).spawns.is_empty());
    }

    #[test]
    fn unsafe_sites_distinguish_blocks_from_items() {
        let src = "unsafe fn f() {} fn g() { unsafe { work(); } }";
        let i = info(src);
        assert_eq!(i.unsafes.len(), 2);
        assert!(!i.unsafes[0].is_block);
        assert!(i.unsafes[1].is_block);
    }

    #[test]
    fn receiver_text_renders_paths_and_indices() {
        let src = "fn f() { let g = self.shards[i].series.write(); }";
        let i = info(src);
        assert_eq!(i.guards.len(), 1);
        assert_eq!(i.guards[0].receiver, "self.shards[i].series");
    }
}
