//! Seeded `lock-order` violations: a second lock acquired while the
//! first is still held. Caught at the second acquisition.

fn nested_distinct_locks(a: &Mutex<A>, b: &Mutex<B>) {
    let ga = a.lock();
    let gb = b.lock();
    touch(&ga, &gb);
}

fn cross_shard_reads(shards: &[Shard]) {
    let left = shards[0].series.read();
    let right = shards[1].series.read();
    merge(&left, &right);
}

fn fixed_order_with_reason(shards: &[Shard]) {
    let left = shards[0].series.read();
    // envlint: allow(lock-order) — shard indices ascend at every
    // call site, so the acquisition order is globally fixed.
    let right = shards[1].series.read();
    merge(&left, &right);
}
