//! Seeded `guard-across-io` violations: a lock guard live across
//! blocking file/network calls. Caught at the I/O site.

fn read_under_lock(index: &RwLock<Index>, path: &Path) -> String {
    let view = index.read();
    let text = fs::read_to_string(path);
    join(&view, text)
}

fn open_under_lock(state: &Mutex<State>, path: &Path) {
    let g = state.lock();
    let file = File::open(path);
    record(&g, file);
}

fn connect_under_lock(peers: &Mutex<Peers>, addr: &str) {
    let table = peers.lock();
    let conn = TcpStream::connect(addr);
    insert(&table, conn);
}

fn io_after_drop_is_fine(index: &RwLock<Index>, path: &Path) -> String {
    let view = index.read();
    let key = view.key();
    drop(view);
    fs::read_to_string(path).unwrap_or_else(|_| key)
}
