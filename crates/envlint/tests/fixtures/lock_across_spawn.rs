//! Seeded `lock-across-spawn` violations: guards live across pool
//! entry points. Caught at the spawn site, not the acquisition.

fn guard_across_scope(state: &Mutex<State>) {
    let g = state.lock();
    par::scope(|s| {
        s.spawn_named("job", || work());
    });
    touch(&g);
}

fn guard_across_par_for_chunks(counts: &Mutex<Vec<u64>>, data: &[f64]) {
    let tally = counts.lock();
    par_for_chunks(data, 64, |_chunk, _base| step());
    touch(&tally);
}

fn rwlock_read_across_spawn_named(index: &RwLock<Index>, s: &Scope) {
    let view = index.read();
    s.spawn_named("indexed", move || consume());
    touch(&view);
}

fn allowed_with_reason(state: &Mutex<State>) {
    let g = state.lock();
    // envlint: allow(lock-across-spawn) — the spawned job only touches
    // its own chunk; the guard protects an unrelated counter.
    par::scope(|s| s.spawn_named("job", || work()));
    touch(&g);
}
