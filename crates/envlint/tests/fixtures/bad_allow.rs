//! Seeded `bad-allow` violations: a directive with no reason does not
//! suppress, and unknown rule names are reported.

pub fn reasonless(x: Option<u32>) -> u32 {
    // envlint: allow(no-panic)
    x.unwrap() // line 6: still reported, directive has no reason
}

// envlint: allow(not-a-rule) — reason present but rule unknown (line 9)
pub fn unknown_rule() {}
