//! Seeded `cast-truncation` violations.

pub fn narrow_index(n: usize) -> u32 {
    n as u32 // line 4
}

pub fn narrow_signed(n: i64) -> i32 {
    n as i32 // line 8
}

pub fn widening_is_fine(i: usize) -> f64 {
    i as f64
}

pub fn same_width_is_fine(i: usize) -> u64 {
    i as u64
}
