//! Seeded `no-panic` violations. Lines are asserted exactly by
//! `tests/fixtures.rs` — keep the layout stable.

pub fn unwrap_site(x: Option<u32>) -> u32 {
    x.unwrap() // line 5
}

pub fn expect_site(x: Option<u32>) -> u32 {
    x.expect("present") // line 9
}

pub fn panic_site() {
    panic!("boom"); // line 13
}

pub fn unreachable_site() {
    unreachable!(); // line 17
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1).unwrap();
        panic!("tests may panic");
    }
}
