//! A fixture the linter must pass untouched: near-miss patterns, test
//! code, strings, and properly justified allows.

use std::collections::BTreeMap;

/// Doc example mentioning `x.unwrap()` and `HashMap` — comments never
/// match.
pub fn near_misses(x: Option<u32>) -> u32 {
    let table: BTreeMap<String, usize> = BTreeMap::new();
    let _ = table;
    let s = "contains .unwrap() and panic! and HashMap inside a string";
    let _ = s;
    let r = r#"raw string with SystemTime::now() and 1.0 == 2.0"#;
    let _ = r;
    x.unwrap_or(0) + Some(1).unwrap_or_else(|| 2)
}

pub fn justified(x: Option<u32>) -> u32 {
    // envlint: allow(no-panic) — demonstrates a documented invariant
    x.unwrap()
}

pub fn trailing_justified(x: Option<u32>) -> u32 {
    x.unwrap() // envlint: allow(no-panic): fixture shows trailing form
}

pub fn float_tolerance(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_are_exempt() {
        let m = std::collections::HashMap::<u32, u32>::new();
        assert!(m.is_empty());
        assert!(0.0 == 0.0);
        Some(3).unwrap();
    }
}
