//! Seeded `wall-clock` violations.

use std::time::{Instant, SystemTime};

pub fn stamp() -> SystemTime {
    SystemTime::now() // line 6
}

pub fn tick() -> Instant {
    Instant::now() // line 10
}

pub fn entropy_rng() {
    let _rng = rand::thread_rng(); // line 14
}

pub fn seeded_rng_is_fine(seed: u64) {
    let _rng = StdRng::seed_from_u64(seed);
}
