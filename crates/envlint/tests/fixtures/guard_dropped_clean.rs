//! Negative fixture: every guard here ends — by `drop` or by its
//! enclosing block — before the hazard, so NO concurrency rule fires.

fn explicit_drop_before_spawn(state: &Mutex<State>) {
    let g = state.lock();
    let snapshot = g.snapshot();
    drop(g);
    par::scope(|s| {
        s.spawn_named("job", move || consume(snapshot));
    });
}

fn inner_block_before_spawn(state: &Mutex<State>) {
    let snapshot = {
        let g = state.lock();
        g.snapshot()
    };
    par::scope(|s| {
        s.spawn_named("job", move || consume(snapshot));
    });
}

fn inner_block_guard_before_io(index: &RwLock<Index>, path: &Path) {
    let key = {
        let view = index.read();
        view.key()
    };
    let text = fs::read_to_string(path);
    join(key, text)
}

fn sequential_blocks_are_not_nested(a: &Mutex<A>, b: &Mutex<B>) {
    {
        let ga = a.lock();
        touch(&ga);
    }
    {
        let gb = b.lock();
        touch(&gb);
    }
}

fn temporary_is_not_a_guard(m: &Mutex<Vec<u64>>, data: &[f64]) {
    let n = m.lock().len();
    par_for_chunks(data, n, |_chunk, _base| step());
}
