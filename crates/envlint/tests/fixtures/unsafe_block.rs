//! Seeded `unsafe-block` violations: unsafe without a SAFETY comment.

fn undocumented_block(p: *const u8) -> u8 {
    unsafe { *p }
}

unsafe fn undocumented_item(p: *const u8) -> u8 {
    *p
}

fn documented_block(x: &T) -> &'static T {
    // SAFETY: the erased lifetime never escapes this function; the
    // scope below joins every borrower before returning.
    unsafe { std::mem::transmute(x) }
}
