//! Seeded `float-cmp` violations.

pub fn literal_rhs(x: f64) -> bool {
    x == 0.0 // line 4
}

pub fn literal_lhs(y: f64) -> bool {
    1e-6 != y // line 8
}

pub fn const_rhs(z: f64) -> bool {
    z == f64::INFINITY // line 12
}

pub fn int_compare_is_fine(n: usize) -> bool {
    n == 0
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_compare_in_tests_is_fine() {
        assert!(0.5 == 0.5);
    }
}
