//! Seeded `hash-iter` violations.

use std::collections::HashMap; // line 3

pub fn build_vocab(values: &[String]) -> HashMap<String, usize> { // line 5
    values
        .iter()
        .enumerate()
        .map(|(i, v)| (v.clone(), i))
        .collect()
}

pub fn sorted_map_is_fine() -> std::collections::BTreeMap<String, usize> {
    std::collections::BTreeMap::new()
}
