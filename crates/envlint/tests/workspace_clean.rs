//! The enforcement test: the whole workspace must be envlint-clean.
//!
//! This is what makes the lints deny-by-default — `cargo test` (tier-1)
//! fails on any new violation, with the same findings `cargo run -p
//! envlint -- --check` prints.

use std::path::Path;

#[test]
fn workspace_has_no_lint_findings() {
    let root = envlint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("envlint lives inside the workspace");
    let findings = envlint::lint_workspace(&root).expect("workspace scan");
    assert!(
        findings.is_empty(),
        "envlint found {} violation(s); run `cargo run -p envlint -- --check` for details:\n{}",
        findings.len(),
        findings
            .iter()
            .map(envlint::Finding::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
