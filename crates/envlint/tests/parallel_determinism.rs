//! `lint_workspace` fans file scanning out over the `par` pool; its
//! output contract is that findings are bit-identical to the sequential
//! order at any thread count. This test builds a scratch workspace with
//! seeded violations spread over enough files to span several chunks
//! and asserts the rendered output matches exactly at 1 vs 4 threads.

use std::fs;
use std::path::Path;

use env2vec_par::with_thread_limit;
use envlint::{findings_to_json, findings_to_sarif, lint_workspace};

/// Writes a minimal workspace: root manifest + N crates, each with a
/// handful of source files carrying known violations.
fn build_scratch(root: &Path) {
    fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    )
    .expect("write root manifest");
    for c in ["alpha", "beta", "gamma", "delta"] {
        let src = root.join("crates").join(c).join("src");
        fs::create_dir_all(&src).expect("create crate dirs");
        fs::write(
            root.join("crates").join(c).join("Cargo.toml"),
            format!("[package]\nname = \"{c}\"\n"),
        )
        .expect("write crate manifest");
        for f in 0..4 {
            // Each file seeds a no-panic, a float-cmp, and a lock-order
            // finding at fixed lines, plus one clean function.
            let body = format!(
                "fn risky_{f}() {{ x.unwrap(); }}\n\
                 fn close_{f}(v: f64) -> bool {{ v == 0.5 }}\n\
                 fn nested_{f}(a: &M, b: &M) {{ let ga = a.lock(); let gb = b.lock(); use2(&ga, &gb); }}\n\
                 fn clean_{f}(v: u64) -> u64 {{ v + 1 }}\n"
            );
            fs::write(src.join(format!("m{f}.rs")), body).expect("write source file");
        }
    }
}

#[test]
fn findings_are_bit_identical_at_1_vs_4_threads() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("envlint_par_determinism");
    if root.exists() {
        fs::remove_dir_all(&root).expect("clear scratch workspace");
    }
    fs::create_dir_all(&root).expect("create scratch workspace");
    build_scratch(&root);

    let sequential = with_thread_limit(1, || lint_workspace(&root)).expect("lint at 1 thread");
    let parallel = with_thread_limit(4, || lint_workspace(&root)).expect("lint at 4 threads");

    // 4 crates × 4 files × 3 seeded violations.
    assert_eq!(sequential.len(), 48, "seeded violation count");

    // Bit-identical across every rendering, not just same-length.
    let render =
        |fs: &[envlint::Finding]| fs.iter().map(|f| f.render()).collect::<Vec<_>>().join("\n");
    assert_eq!(render(&sequential), render(&parallel));
    assert_eq!(findings_to_json(&sequential), findings_to_json(&parallel));
    assert_eq!(findings_to_sarif(&sequential), findings_to_sarif(&parallel));
}
