//! Guards against the silent-scope-gap hazard: `RuleId::applies_to`
//! scopes are hand-maintained name lists, so a newly added crate could
//! otherwise fall outside a rule without anyone deciding that.
//!
//! Every workspace member must appear in either the rule's explicit
//! in-scope list or its documented out-of-scope list — and the lists
//! must not carry stale names for crates that no longer exist.

use std::collections::BTreeSet;
use std::path::Path;

use envlint::find_workspace_root;
use envlint::rules::{HASH_ITER_EXEMPT, WALL_CLOCK_EXEMPT, WALL_CLOCK_SCOPE};

/// Directory names of every workspace member: each entry of `crates/*`
/// plus `xtests` (mirroring `workspace.members` in the root manifest).
fn member_dirs(root: &Path) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for entry in std::fs::read_dir(root.join("crates")).expect("read crates/") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() && path.join("Cargo.toml").is_file() {
            names.insert(
                path.file_name()
                    .and_then(|n| n.to_str())
                    .expect("crate dir name")
                    .to_string(),
            );
        }
    }
    if root.join("xtests").join("Cargo.toml").is_file() {
        names.insert("xtests".to_string());
    }
    names
}

fn workspace_root() -> std::path::PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
}

#[test]
fn members_match_the_manifest_globs() {
    // The scan above must agree with what Cargo actually builds: the
    // root manifest declares `crates/*` and `xtests`. If the member
    // globs ever change, this test — and the scope lists — need a look.
    let manifest =
        std::fs::read_to_string(workspace_root().join("Cargo.toml")).expect("root Cargo.toml");
    assert!(
        manifest.contains("\"crates/*\"") && manifest.contains("\"xtests\""),
        "workspace.members no longer matches the crates/* + xtests layout \
         this test enumerates; update member_dirs() to follow it"
    );
}

#[test]
fn every_member_has_an_explicit_wall_clock_decision() {
    let members = member_dirs(&workspace_root());
    let mut undecided = Vec::new();
    for name in &members {
        let in_scope = WALL_CLOCK_SCOPE.contains(&name.as_str());
        let exempt = WALL_CLOCK_EXEMPT.contains(&name.as_str());
        if !in_scope && !exempt {
            undecided.push(name.clone());
        }
    }
    assert!(
        undecided.is_empty(),
        "crates with no wall-clock scoping decision: {undecided:?} — add each \
         to WALL_CLOCK_SCOPE (its output feeds repro tables) or to \
         WALL_CLOCK_EXEMPT (with the reason) in crates/envlint/src/rules.rs"
    );
}

#[test]
fn scope_lists_carry_no_stale_names() {
    let members = member_dirs(&workspace_root());
    for name in WALL_CLOCK_SCOPE
        .iter()
        .chain(WALL_CLOCK_EXEMPT.iter())
        .chain(HASH_ITER_EXEMPT.iter())
    {
        assert!(
            members.contains(*name),
            "`{name}` is listed in a rule scope but is not a workspace member; \
             remove the stale entry from crates/envlint/src/rules.rs"
        );
    }
}

#[test]
fn hash_iter_exemptions_are_a_subset_of_known_members() {
    // hash-iter is deny-by-default (a new crate is automatically in
    // scope), so only the exempt list can go stale — covered above.
    // This pins the *current* exemptions so widening the list is a
    // reviewed decision, not a drive-by edit.
    assert_eq!(HASH_ITER_EXEMPT, ["cli", "bench", "envlint", "xtests"]);
}
