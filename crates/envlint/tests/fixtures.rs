//! Fixture self-tests: each rule's seeded violations are caught at the
//! exact line, and the clean fixture stays clean.

use envlint::{lint_source, Finding};

fn check(fixture: &str, crate_dir: &str, source: &str) -> Vec<(String, u32)> {
    lint_source(fixture, crate_dir, source)
        .iter()
        .map(|f: &Finding| (f.rule.id().to_string(), f.line))
        .collect()
}

#[test]
fn no_panic_fixture() {
    let got = check("no_panic.rs", "core", include_str!("fixtures/no_panic.rs"));
    assert_eq!(
        got,
        vec![
            ("no-panic".to_string(), 5),
            ("no-panic".to_string(), 9),
            ("no-panic".to_string(), 13),
            ("no-panic".to_string(), 17),
        ]
    );
}

#[test]
fn float_cmp_fixture() {
    let got = check(
        "float_cmp.rs",
        "core",
        include_str!("fixtures/float_cmp.rs"),
    );
    assert_eq!(
        got,
        vec![
            ("float-cmp".to_string(), 4),
            ("float-cmp".to_string(), 8),
            ("float-cmp".to_string(), 12),
        ]
    );
}

#[test]
fn hash_iter_fixture() {
    let src = include_str!("fixtures/hash_iter.rs");
    let got = check("hash_iter.rs", "core", src);
    assert_eq!(
        got,
        vec![("hash-iter".to_string(), 3), ("hash-iter".to_string(), 5)]
    );
    // Outside the deterministic scope the same source is clean.
    assert!(check("hash_iter.rs", "cli", src).is_empty());
}

#[test]
fn wall_clock_fixture() {
    let src = include_str!("fixtures/wall_clock.rs");
    let got = check("wall_clock.rs", "eval", src);
    assert_eq!(
        got,
        vec![
            ("wall-clock".to_string(), 6),
            ("wall-clock".to_string(), 10),
            ("wall-clock".to_string(), 14),
        ]
    );
    // The serve crate is allowed to read the clock (it times requests
    // and paces storms); `obs` is in scope since it grew trace ids.
    assert!(check("wall_clock.rs", "serve", src).is_empty());
    assert_eq!(check("wall_clock.rs", "obs", src).len(), 3);
}

#[test]
fn cast_truncation_fixture() {
    let src = include_str!("fixtures/cast_truncation.rs");
    let got = check("cast_truncation.rs", "linalg", src);
    assert_eq!(
        got,
        vec![
            ("cast-truncation".to_string(), 4),
            ("cast-truncation".to_string(), 8),
        ]
    );
    // The cast rule is scoped to the linalg kernels only.
    assert!(check("cast_truncation.rs", "nn", src).is_empty());
}

#[test]
fn bad_allow_fixture() {
    let got = check(
        "bad_allow.rs",
        "core",
        include_str!("fixtures/bad_allow.rs"),
    );
    assert_eq!(
        got,
        vec![
            ("bad-allow".to_string(), 5),
            ("no-panic".to_string(), 6),
            ("bad-allow".to_string(), 9),
        ]
    );
}

#[test]
fn lock_across_spawn_fixture() {
    let got = check(
        "lock_across_spawn.rs",
        "par",
        include_str!("fixtures/lock_across_spawn.rs"),
    );
    assert_eq!(
        got,
        vec![
            ("lock-across-spawn".to_string(), 6),
            ("lock-across-spawn".to_string(), 7),
            ("lock-across-spawn".to_string(), 14),
            ("lock-across-spawn".to_string(), 20),
        ]
    );
}

#[test]
fn lock_order_fixture() {
    let got = check(
        "lock_order.rs",
        "telemetry",
        include_str!("fixtures/lock_order.rs"),
    );
    assert_eq!(
        got,
        vec![
            ("lock-order".to_string(), 6),
            ("lock-order".to_string(), 12),
        ]
    );
}

#[test]
fn unsafe_block_fixture() {
    let got = check(
        "unsafe_block.rs",
        "par",
        include_str!("fixtures/unsafe_block.rs"),
    );
    assert_eq!(
        got,
        vec![
            ("unsafe-block".to_string(), 4),
            ("unsafe-block".to_string(), 7),
        ]
    );
}

#[test]
fn guard_across_io_fixture() {
    let got = check(
        "guard_across_io.rs",
        "core",
        include_str!("fixtures/guard_across_io.rs"),
    );
    assert_eq!(
        got,
        vec![
            ("guard-across-io".to_string(), 6),
            ("guard-across-io".to_string(), 12),
            ("guard-across-io".to_string(), 18),
        ]
    );
}

#[test]
fn guard_dropped_clean_fixture_stays_clean() {
    // The concurrency rules apply in every crate, so one strict scope
    // suffices; the fixture seeds near-misses for all four rules.
    let got = check(
        "guard_dropped_clean.rs",
        "par",
        include_str!("fixtures/guard_dropped_clean.rs"),
    );
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn clean_fixture_is_clean() {
    // Run under the strictest combination of scopes the workspace uses.
    for crate_dir in ["core", "nn", "eval", "linalg"] {
        let got = check("clean.rs", crate_dir, include_str!("fixtures/clean.rs"));
        assert!(got.is_empty(), "{crate_dir}: {got:?}");
    }
}
