//! Fixture self-tests: each rule's seeded violations are caught at the
//! exact line, and the clean fixture stays clean.

use envlint::{lint_source, Finding};

fn check(fixture: &str, crate_dir: &str, source: &str) -> Vec<(String, u32)> {
    lint_source(fixture, crate_dir, source)
        .iter()
        .map(|f: &Finding| (f.rule.id().to_string(), f.line))
        .collect()
}

#[test]
fn no_panic_fixture() {
    let got = check("no_panic.rs", "core", include_str!("fixtures/no_panic.rs"));
    assert_eq!(
        got,
        vec![
            ("no-panic".to_string(), 5),
            ("no-panic".to_string(), 9),
            ("no-panic".to_string(), 13),
            ("no-panic".to_string(), 17),
        ]
    );
}

#[test]
fn float_cmp_fixture() {
    let got = check(
        "float_cmp.rs",
        "core",
        include_str!("fixtures/float_cmp.rs"),
    );
    assert_eq!(
        got,
        vec![
            ("float-cmp".to_string(), 4),
            ("float-cmp".to_string(), 8),
            ("float-cmp".to_string(), 12),
        ]
    );
}

#[test]
fn hash_iter_fixture() {
    let src = include_str!("fixtures/hash_iter.rs");
    let got = check("hash_iter.rs", "core", src);
    assert_eq!(
        got,
        vec![("hash-iter".to_string(), 3), ("hash-iter".to_string(), 5)]
    );
    // Outside the deterministic scope the same source is clean.
    assert!(check("hash_iter.rs", "cli", src).is_empty());
}

#[test]
fn wall_clock_fixture() {
    let src = include_str!("fixtures/wall_clock.rs");
    let got = check("wall_clock.rs", "eval", src);
    assert_eq!(
        got,
        vec![
            ("wall-clock".to_string(), 6),
            ("wall-clock".to_string(), 10),
            ("wall-clock".to_string(), 14),
        ]
    );
    // Observability crates are allowed to read the clock.
    assert!(check("wall_clock.rs", "obs", src).is_empty());
}

#[test]
fn cast_truncation_fixture() {
    let src = include_str!("fixtures/cast_truncation.rs");
    let got = check("cast_truncation.rs", "linalg", src);
    assert_eq!(
        got,
        vec![
            ("cast-truncation".to_string(), 4),
            ("cast-truncation".to_string(), 8),
        ]
    );
    // The cast rule is scoped to the linalg kernels only.
    assert!(check("cast_truncation.rs", "nn", src).is_empty());
}

#[test]
fn bad_allow_fixture() {
    let got = check(
        "bad_allow.rs",
        "core",
        include_str!("fixtures/bad_allow.rs"),
    );
    assert_eq!(
        got,
        vec![
            ("bad-allow".to_string(), 5),
            ("no-panic".to_string(), 6),
            ("bad-allow".to_string(), 9),
        ]
    );
}

#[test]
fn clean_fixture_is_clean() {
    // Run under the strictest combination of scopes the workspace uses.
    for crate_dir in ["core", "nn", "eval", "linalg"] {
        let got = check("clean.rs", crate_dir, include_str!("fixtures/clean.rs"));
        assert!(got.is_empty(), "{crate_dir}: {got:?}");
    }
}
