//! Structured stderr logging for CLI `--verbose` runs.
//!
//! Lines are logfmt-style — `ts=<unix_ms> level=info msg="..." k=v ...`
//! — so they stay grep-able and machine-parseable without a logging
//! framework. Logging is off unless [`set_verbose`]`(true)` was called;
//! the check is a single relaxed atomic load, so instrumented hot paths
//! cost nothing when quiet.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

static VERBOSE: AtomicBool = AtomicBool::new(false);

/// Enables or disables verbose logging process-wide.
pub fn set_verbose(on: bool) {
    VERBOSE.store(on, Ordering::Relaxed);
}

/// Whether verbose logging is enabled.
pub fn verbose() -> bool {
    VERBOSE.load(Ordering::Relaxed)
}

fn now_ms() -> u128 {
    // envlint: allow(wall-clock) — log-line timestamps only; never fed
    // back into model numerics or stored samples.
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}

/// Quotes a logfmt value if it contains spaces, quotes, or `=`.
fn logfmt_value(v: &str) -> String {
    if v.is_empty() || v.contains([' ', '"', '=']) {
        format!("\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\""))
    } else {
        v.to_string()
    }
}

/// Formats one logfmt line (no trailing newline). Exposed for tests.
pub fn format_line(ts_ms: u128, level: &str, msg: &str, fields: &[(&str, String)]) -> String {
    let mut line = format!("ts={ts_ms} level={level} msg={}", logfmt_value(msg));
    for (k, v) in fields {
        line.push(' ');
        line.push_str(k);
        line.push('=');
        line.push_str(&logfmt_value(v));
    }
    line
}

/// Writes one structured line to stderr if verbose logging is on.
pub fn log(level: &str, msg: &str, fields: &[(&str, String)]) {
    if !verbose() {
        return;
    }
    eprintln!("{}", format_line(now_ms(), level, msg, fields));
}

/// Logs at info level when verbose.
///
/// ```
/// env2vec_obs::info!("screen complete"; build = 7, alarms = 2);
/// ```
#[macro_export]
macro_rules! info {
    ($msg:expr) => {
        $crate::logging::log("info", $msg, &[])
    };
    ($msg:expr; $($key:ident = $val:expr),+ $(,)?) => {
        $crate::logging::log(
            "info",
            $msg,
            &[$((stringify!($key), ::std::format!("{}", $val))),+],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_logfmt() {
        let line = format_line(
            1234,
            "info",
            "training started",
            &[
                ("epochs", "50".to_string()),
                ("chain", "SUT_LB".to_string()),
            ],
        );
        assert_eq!(
            line,
            "ts=1234 level=info msg=\"training started\" epochs=50 chain=SUT_LB"
        );
    }

    #[test]
    fn values_with_specials_are_quoted() {
        assert_eq!(logfmt_value("plain"), "plain");
        assert_eq!(logfmt_value("has space"), "\"has space\"");
        assert_eq!(logfmt_value("k=v"), "\"k=v\"");
        assert_eq!(logfmt_value("sa\"y"), "\"sa\\\"y\"");
        assert_eq!(logfmt_value(""), "\"\"");
    }

    #[test]
    fn toggling_verbosity() {
        // Default off; log() is a no-op then.
        assert!(!verbose());
        set_verbose(true);
        assert!(verbose());
        set_verbose(false);
    }
}
