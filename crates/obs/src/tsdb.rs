//! Re-publishing the TSDB's self-instrumentation as regular metrics.
//!
//! The TSDB cannot depend on this crate (obs depends on telemetry), so
//! it keeps its own internal counters and latency histograms and exports
//! them as [`env2vec_telemetry::TsdbStats`] snapshots. This module is
//! the other half of that loop: it turns a snapshot into ordinary
//! gauges in a [`MetricsRegistry`] — which the self-scraper then writes
//! *back into the same TSDB* — and into [`MetricSample`] histograms for
//! Prometheus exposition and the report's quantile tables.

use env2vec_telemetry::tsdb::{LatencySnapshot, TsdbStats, LATENCY_BUCKETS};

use crate::metrics::{LabelSet, MetricSample, MetricValue, MetricsRegistry};

/// Publishes the snapshot's counters, sizes, compression accounting, and
/// per-shard occupancy as gauges in `registry` (names prefixed
/// `tsdb_`). Call before each scrape so the TSDB's own health rides the
/// same pipeline as every other metric.
pub fn publish_stats(registry: &MetricsRegistry, stats: &TsdbStats) {
    registry.gauge("tsdb_inserts").set(stats.inserts as f64);
    registry.gauge("tsdb_queries").set(stats.queries as f64);
    registry
        .gauge("tsdb_out_of_order_inserts")
        .set(stats.out_of_order_inserts as f64);
    registry.gauge("tsdb_series").set(stats.num_series as f64);
    registry.gauge("tsdb_samples").set(stats.num_samples as f64);
    registry
        .gauge("tsdb_sealed_chunks")
        .set(stats.sealed_chunks as f64);
    registry
        .gauge("tsdb_sealed_bytes")
        .set(stats.sealed_bytes as f64);
    registry
        .gauge("tsdb_sealed_uncompressed_bytes")
        .set(stats.sealed_uncompressed_bytes as f64);
    registry
        .gauge("tsdb_compression_ratio")
        .set(stats.compression_ratio());
    for (i, shard) in stats.shards.iter().enumerate() {
        // Zero-padded so label-sorted output follows shard order.
        let labels = LabelSet::new().with("shard", format!("{i:02}"));
        registry
            .gauge_with("tsdb_shard_series", labels.clone())
            .set(shard.series as f64);
        registry
            .gauge_with("tsdb_shard_samples", labels)
            .set(shard.samples as f64);
    }
}

fn histogram_sample(name: &str, snap: &LatencySnapshot) -> MetricSample {
    MetricSample {
        name: name.to_string(),
        labels: LabelSet::new(),
        value: MetricValue::Histogram {
            bounds: LATENCY_BUCKETS.to_vec(),
            cumulative: snap.cumulative.clone(),
            sum: snap.sum_seconds,
            count: snap.count,
            exemplars: Vec::new(),
        },
    }
}

/// The TSDB's append/instant/range latency distributions as histogram
/// samples (name-sorted), ready for `prometheus::render_snapshot` or the
/// report's quantile table.
pub fn latency_samples(stats: &TsdbStats) -> Vec<MetricSample> {
    vec![
        histogram_sample("tsdb_append_seconds", &stats.append_latency),
        histogram_sample("tsdb_query_instant_seconds", &stats.instant_latency),
        histogram_sample("tsdb_query_range_seconds", &stats.range_latency),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use env2vec_telemetry::{Sample, TimeSeriesDb};

    fn exercised_db() -> TimeSeriesDb {
        let db = TimeSeriesDb::new();
        for t in 0..300 {
            db.append(
                "cpu_usage",
                &LabelSet::new().with("env", "EM_1"),
                Sample {
                    timestamp: t,
                    value: (t % 10) as f64,
                },
            );
        }
        db.query_instant("cpu_usage", &[], 150);
        db.query_range("cpu_usage", &[], 0, 299);
        db
    }

    #[test]
    fn gauges_mirror_the_snapshot() {
        let db = exercised_db();
        let reg = MetricsRegistry::new();
        publish_stats(&reg, &db.stats());
        assert_eq!(reg.gauge("tsdb_inserts").get(), 300.0);
        assert_eq!(reg.gauge("tsdb_series").get(), 1.0);
        assert_eq!(reg.gauge("tsdb_samples").get(), 300.0);
        assert!(reg.gauge("tsdb_sealed_chunks").get() >= 1.0);
        assert!(reg.gauge("tsdb_compression_ratio").get() > 1.0);
        // 16 default shards → 32 occupancy gauges + the 9 scalars.
        assert_eq!(reg.len(), 9 + 2 * 16);
        let occupied: f64 = (0..16)
            .map(|i| {
                reg.gauge_with(
                    "tsdb_shard_samples",
                    LabelSet::new().with("shard", format!("{i:02}")),
                )
                .get()
            })
            .sum();
        assert_eq!(occupied, 300.0);
    }

    #[test]
    fn latency_samples_are_report_ready_histograms() {
        let db = exercised_db();
        let samples = latency_samples(&db.stats());
        assert_eq!(samples.len(), 3);
        let names: Vec<&str> = samples.iter().map(|s| s.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "render_snapshot needs name order");
        for s in &samples {
            match &s.value {
                MetricValue::Histogram {
                    bounds, cumulative, ..
                } => {
                    assert_eq!(bounds.len(), LATENCY_BUCKETS.len());
                    assert_eq!(cumulative.len(), bounds.len() + 1);
                }
                other => panic!("expected histogram, got {other:?}"),
            }
        }
        let append = &samples[0];
        if let MetricValue::Histogram { count, .. } = append.value {
            assert_eq!(count, 300, "every append observed");
        }
    }
}
