//! Hierarchical wall-time spans.
//!
//! A span covers one region of work (`train/epoch`, `pipeline/screen`).
//! Starting a span returns a RAII [`SpanGuard`]; dropping the guard
//! records the span into its [`SpanCollector`]. Nesting is tracked per
//! thread: a span started while another is active on the same thread
//! becomes its child, and records carry both the parent id and the
//! nesting depth so exports can reconstruct the tree.
//!
//! Collected spans export as Chrome trace format (load the file in
//! `chrome://tracing` or Perfetto) or as one-JSON-object-per-line JSONL.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use env2vec_telemetry::locks::TrackedMutex;

/// Upper bound on retained spans; beyond it new spans are counted but
/// dropped, keeping memory bounded on runaway loops.
const MAX_SPANS: usize = 1_000_000;

/// One finished span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span id, unique within the collector (1-based).
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 for roots.
    pub parent: u64,
    /// Slash-separated name, e.g. `train/epoch`.
    pub name: String,
    /// Key/value metadata attached at the call site.
    pub args: Vec<(String, String)>,
    /// Start offset from the collector's epoch, in microseconds.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
    /// Arbitrary-but-stable id of the recording thread.
    pub thread: u64,
    /// Nesting depth at start (roots are 0).
    pub depth: usize,
}

struct ThreadState {
    /// Stack of active span ids on this thread.
    stack: Vec<u64>,
    /// Stable thread id assigned on first use.
    tid: u64,
}

thread_local! {
    // Shared (not RefCell) so a guard can carry a handle to the thread
    // state it was *started* on: when a guard is dropped on another
    // thread — e.g. a `par` pool worker finishing while a sibling span is
    // open elsewhere — the span id must be removed from the owner's
    // stack, not the dropper's, or the owner's parent/depth tracking
    // would be corrupted for every later span.
    static THREAD_STATE: std::sync::Arc<TrackedMutex<ThreadState>> =
        std::sync::Arc::new(TrackedMutex::new(
            "obs.span.thread_state",
            ThreadState { stack: Vec::new(), tid: 0 },
        ));
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// Thread-safe sink for finished spans.
#[derive(Debug)]
pub struct SpanCollector {
    epoch: Instant,
    next_id: AtomicU64,
    dropped: AtomicU64,
    records: TrackedMutex<Vec<SpanRecord>>,
}

impl Default for SpanCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanCollector {
    /// Creates an empty collector whose epoch is "now".
    pub fn new() -> Self {
        SpanCollector {
            // envlint: allow(wall-clock) — span timestamps are trace
            // metadata; exported traces never influence computation.
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            records: TrackedMutex::new("obs.span.records", Vec::new()),
        }
    }

    /// Starts a span; it ends (and is recorded) when the guard drops.
    pub fn start(&self, name: impl Into<String>, args: Vec<(String, String)>) -> SpanGuard<'_> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let owner = THREAD_STATE.with(std::sync::Arc::clone);
        let (parent, depth, thread) = {
            let mut st = owner.lock();
            if st.tid == 0 {
                st.tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            }
            let parent = st.stack.last().copied().unwrap_or(0);
            let depth = st.stack.len();
            st.stack.push(id);
            (parent, depth, st.tid)
        };
        SpanGuard {
            collector: self,
            record: Some(SpanRecord {
                id,
                parent,
                name: name.into(),
                args,
                start_us: self.epoch.elapsed().as_micros() as u64,
                dur_us: 0,
                thread,
                depth,
            }),
            // envlint: allow(wall-clock) — span duration measurement;
            // observability metadata only, numerics-inert.
            started: Instant::now(),
            owner,
        }
    }

    fn finish(&self, mut record: SpanRecord, started: Instant, owner: &TrackedMutex<ThreadState>) {
        record.dur_us = started.elapsed().as_micros() as u64;
        {
            // Pop from the stack of the thread the span *started* on —
            // which, for guards moved into pool jobs, is not necessarily
            // the thread running this drop.
            let mut st = owner.lock();
            // Guards are dropped in reverse start order in the common
            // case, so the top of the stack is this span.
            if st.stack.last() == Some(&record.id) {
                st.stack.pop();
            } else {
                // Out-of-order drop (guard held past its parent): remove
                // wherever it is.
                st.stack.retain(|&id| id != record.id);
            }
        }
        let mut records = self.records.lock();
        if records.len() < MAX_SPANS {
            records.push(record);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// Whether no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans dropped due to the retention cap.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot of all records, in completion order.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.records.lock().clone()
    }

    /// Removes and returns all records.
    pub fn drain(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *self.records.lock())
    }

    /// Renders the collected spans as a Chrome trace (JSON object with a
    /// `traceEvents` array of complete `"X"` events). Loadable in
    /// `chrome://tracing` and Perfetto.
    pub fn to_chrome_trace(&self) -> String {
        let records = self.records.lock();
        let mut out = String::from("{\"traceEvents\":[");
        for (i, r) in records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"cat\":\"env2vec\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{{",
                json_string(&r.name),
                r.start_us,
                r.dur_us,
                r.thread,
            ));
            let mut first = true;
            for (k, v) in &r.args {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("{}:{}", json_string(k), json_string(v)));
            }
            // Structural metadata lands in args too, prefixed to avoid
            // clashing with user keys.
            if !first {
                out.push(',');
            }
            out.push_str(&format!(
                "\"span.id\":\"{}\",\"span.parent\":\"{}\",\"span.depth\":\"{}\"",
                r.id, r.parent, r.depth
            ));
            out.push_str("}}");
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Renders the collected spans as JSONL: one JSON object per line,
    /// in completion order.
    pub fn to_jsonl(&self) -> String {
        let records = self.records.lock();
        let mut out = String::new();
        for r in records.iter() {
            out.push_str(&format!(
                "{{\"id\":{},\"parent\":{},\"name\":{},\"start_us\":{},\"dur_us\":{},\
                 \"thread\":{},\"depth\":{}",
                r.id,
                r.parent,
                json_string(&r.name),
                r.start_us,
                r.dur_us,
                r.thread,
                r.depth
            ));
            if !r.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in r.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{}:{}", json_string(k), json_string(v)));
                }
                out.push('}');
            }
            out.push_str("}\n");
        }
        out
    }
}

/// RAII guard: records the span into the collector on drop.
#[must_use = "dropping the guard immediately records a zero-length span"]
pub struct SpanGuard<'a> {
    collector: &'a SpanCollector,
    record: Option<SpanRecord>,
    started: Instant,
    /// Nesting state of the thread the span started on; finishing must
    /// mutate this state even when the guard drops on another thread.
    owner: std::sync::Arc<TrackedMutex<ThreadState>>,
}

impl SpanGuard<'_> {
    /// Attaches another key/value pair after the span started.
    pub fn arg(&mut self, key: impl Into<String>, value: impl ToString) {
        if let Some(r) = self.record.as_mut() {
            r.args.push((key.into(), value.to_string()));
        }
    }

    /// This span's id (usable as a parent reference in diagnostics).
    pub fn id(&self) -> u64 {
        self.record.as_ref().map(|r| r.id).unwrap_or(0)
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(record) = self.record.take() {
            self.collector.finish(record, self.started, &self.owner);
        }
    }
}

/// Escapes a string as a JSON string literal (with quotes).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The process-wide collector used by the [`span!`](crate::span!) macro.
pub fn global() -> &'static SpanCollector {
    static GLOBAL: std::sync::OnceLock<SpanCollector> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(SpanCollector::new)
}

/// Starts a span on the global collector.
///
/// ```
/// let _guard = env2vec_obs::span!("train/epoch", epoch = 3);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::global().start($name, ::std::vec::Vec::new())
    };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        $crate::span::global().start(
            $name,
            ::std::vec![$(
                (
                    ::std::string::String::from(stringify!($key)),
                    ::std::format!("{}", $val),
                )
            ),+],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_is_tracked_per_thread() {
        let c = SpanCollector::new();
        {
            let _a = c.start("outer", vec![]);
            {
                let _b = c.start("inner", vec![]);
            }
            let _c2 = c.start("sibling", vec![]);
        }
        let mut by_name = std::collections::HashMap::new();
        for r in c.records() {
            by_name.insert(r.name.clone(), r);
        }
        let outer = &by_name["outer"];
        let inner = &by_name["inner"];
        let sibling = &by_name["sibling"];
        assert_eq!(outer.parent, 0);
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(inner.depth, 1);
        assert_eq!(sibling.parent, outer.id);
        assert_eq!(sibling.depth, 1);
        // Children complete before the parent.
        assert!(inner.start_us >= outer.start_us);
    }

    #[test]
    fn args_and_exports() {
        let c = SpanCollector::new();
        {
            let mut g = c.start("work", vec![("k".into(), "v\"1\"".into())]);
            g.arg("extra", 7);
        }
        let trace = c.to_chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"name\":\"work\""));
        assert!(trace.contains("\\\"1\\\""), "escaped quote in {trace}");
        assert!(trace.contains("\"extra\":\"7\""));
        let jsonl = c.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("\"name\":\"work\""));
    }

    #[test]
    fn exporters_json_escape_span_names_and_arg_values() {
        // Regression: a span named `he said "hi"\n` (embedded quotes and
        // newline) must not corrupt either export format.
        let hostile_name = "he said \"hi\"\n";
        let c = SpanCollector::new();
        {
            let mut g = c.start(hostile_name, vec![("path\\key".into(), "tab\there".into())]);
            g.arg("ctrl", "\u{1}bell");
        }

        let trace = c.to_chrome_trace();
        let parsed = serde_json::parse_value(&trace).expect("chrome trace is valid JSON");
        let events = match parsed.field("traceEvents").expect("traceEvents") {
            serde::Value::Array(evs) => evs,
            other => panic!("traceEvents not an array: {other:?}"),
        };
        assert_eq!(events.len(), 1);
        match events[0].field("name").expect("name") {
            serde::Value::Str(n) => {
                assert_eq!(n, hostile_name, "name round-trips through escaping")
            }
            other => panic!("name not a string: {other:?}"),
        }
        // The raw newline never appears inside the JSON text.
        assert!(trace.contains("\\n"));
        assert!(!trace.contains("hi\"\n"), "unescaped newline leaked");
        assert!(trace.contains("\\u0001"), "control char escaped");

        let jsonl = c.to_jsonl();
        assert_eq!(
            jsonl.lines().count(),
            1,
            "one line per span, newline escaped"
        );
        let line = jsonl.lines().next().unwrap();
        let parsed = serde_json::parse_value(line).expect("JSONL line is valid JSON");
        match parsed.field("name").expect("name") {
            serde::Value::Str(n) => assert_eq!(n, hostile_name),
            other => panic!("name not a string: {other:?}"),
        }
        match parsed
            .field("args")
            .and_then(|a| a.field("path\\key"))
            .expect("arg")
        {
            serde::Value::Str(v) => assert_eq!(v, "tab\there"),
            other => panic!("arg not a string: {other:?}"),
        }
    }

    #[test]
    fn concurrent_threads_nest_independently() {
        let c = std::sync::Arc::new(SpanCollector::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..5 {
                    let _outer = c.start(format!("t{t}/outer{i}"), vec![]);
                    let _inner = c.start(format!("t{t}/inner{i}"), vec![]);
                }
            }));
        }
        for h in handles {
            h.join().expect("span threads do not panic");
        }
        let records = c.records();
        assert_eq!(records.len(), 40);
        let by_id: std::collections::HashMap<u64, &SpanRecord> =
            records.iter().map(|r| (r.id, r)).collect();
        for r in &records {
            if r.name.contains("inner") {
                // Each inner span's parent is the outer span of the SAME
                // thread and iteration — cross-thread interleaving must
                // never splice another thread's span into the chain.
                assert_eq!(r.depth, 1, "{}", r.name);
                let parent = by_id[&r.parent];
                assert_eq!(parent.thread, r.thread, "{}", r.name);
                assert_eq!(
                    parent.name,
                    r.name.replace("inner", "outer"),
                    "inner span must nest under its own iteration's outer"
                );
            } else {
                assert_eq!(r.depth, 0, "{}", r.name);
                assert_eq!(r.parent, 0, "{}", r.name);
            }
        }
        // All span ids are unique across threads.
        assert_eq!(by_id.len(), records.len());
    }

    #[test]
    fn cross_thread_drop_does_not_corrupt_origin_stack() {
        // A guard started here but dropped on a worker thread (the shape
        // `par::scope` produces when a job outlives its spawner's span)
        // must still unwind *this* thread's stack.
        let c: &'static SpanCollector = Box::leak(Box::new(SpanCollector::new()));
        let moved = c.start("moved", vec![]);
        std::thread::spawn(move || drop(moved))
            .join()
            .expect("dropper thread does not panic");
        {
            let _after = c.start("after", vec![]);
        }
        let records = c.records();
        let after = records
            .iter()
            .find(|r| r.name == "after")
            .expect("span recorded");
        // Pre-fix, "moved"'s id lingered on this thread's stack, so
        // "after" was misfiled as its child at depth 1.
        assert_eq!(after.parent, 0, "stale parent after cross-thread drop");
        assert_eq!(after.depth, 0, "stale depth after cross-thread drop");
    }

    #[test]
    fn out_of_order_drop_on_same_thread_recovers() {
        let c = SpanCollector::new();
        let outer = c.start("outer", vec![]);
        let inner = c.start("inner", vec![]);
        // Parent dropped while the child is still open.
        drop(outer);
        drop(inner);
        {
            let _next = c.start("next", vec![]);
        }
        let records = c.records();
        let next = records.iter().find(|r| r.name == "next").expect("recorded");
        assert_eq!(next.parent, 0);
        assert_eq!(next.depth, 0);
    }

    #[test]
    fn global_span_macro_records() {
        let before = global().len();
        {
            let _g = crate::span!("macro/test", idx = 42, label = "x");
        }
        assert!(global().len() > before);
        let recs = global().records();
        let r = recs
            .iter()
            .rev()
            .find(|r| r.name == "macro/test")
            .expect("span recorded");
        assert!(r.args.contains(&("idx".to_string(), "42".to_string())));
    }
}
