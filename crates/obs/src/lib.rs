//! Observability for the Env2Vec pipeline: structured tracing and
//! self-scraped metrics, with zero new external dependencies.
//!
//! Three pieces:
//!
//! - **Spans** ([`span`] module, [`span!`] macro): hierarchical
//!   wall-time regions with per-thread nesting, exportable as Chrome
//!   trace format (open in `chrome://tracing` / Perfetto) or JSONL.
//! - **Metrics** ([`metrics`]): counters, gauges, and log-bucket
//!   histograms in a label-aware registry, Prometheus-style. Histograms
//!   optionally carry OpenMetrics **exemplars** — the last sampled trace
//!   id per bucket — linking a latency bucket to a concrete request.
//! - **Trace context** ([`trace`]): W3C `traceparent` parse/format and
//!   deterministic id generation for request-scoped tracing across the
//!   serve stack.
//! - **Self-scrape** ([`scrape`]): snapshots of the registry are
//!   persisted into the repo's own [`env2vec_telemetry::TimeSeriesDb`] —
//!   the same TSDB the pipeline uses for VNF telemetry — so the
//!   system's health metrics are queryable with the exact same
//!   `query_instant`/`query_range` + label-matcher API it was built to
//!   test. Dogfooding the TSDB keeps the dependency graph closed: obs
//!   needs nothing the workspace doesn't already have.
//!
//! Plus structured stderr logging ([`logging`], [`info!`]) for CLI
//! `--verbose` runs.
//!
//! Instrumentation is designed to be numerically inert: observers and
//! spans only *read* values the pipeline already computes, never touch
//! RNG streams or reorder float operations, so instrumented runs produce
//! byte-identical models.

pub mod logging;
pub mod metrics;
pub mod prometheus;
pub mod scrape;
pub mod span;
pub mod trace;
pub mod tsdb;

pub use logging::{set_verbose, verbose};
pub use metrics::{
    quantile_from_cumulative, Counter, Exemplar, Gauge, Histogram, LabelSet, MetricSample,
    MetricValue, MetricsRegistry,
};
pub use scrape::{scrape_into, scrape_into_with};
pub use span::{SpanCollector, SpanGuard, SpanRecord};
pub use trace::TraceContext;

/// The process-wide metrics registry.
pub fn metrics() -> &'static MetricsRegistry {
    metrics::global()
}

/// The process-wide span collector.
pub fn collector() -> &'static SpanCollector {
    span::global()
}

/// Scrapes the global registry into `db` at `timestamp`.
pub fn scrape_global(db: &env2vec_telemetry::TimeSeriesDb, timestamp: i64) -> usize {
    scrape::scrape_into(metrics(), db, timestamp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_accessors_are_stable() {
        let a = metrics() as *const _;
        let b = metrics() as *const _;
        assert_eq!(a, b);
        let c = collector() as *const _;
        let d = collector() as *const _;
        assert_eq!(c, d);
    }
}
