//! Self-scrape: persist a metrics snapshot into the telemetry TSDB.
//!
//! Env2Vec already ships a time-series database for VNF telemetry
//! ([`env2vec_telemetry::TimeSeriesDb`]); the observability layer
//! dogfoods it as metrics storage. Each scrape takes a registry
//! snapshot and appends one sample per series at the given timestamp,
//! following the Prometheus exposition conventions:
//!
//! - counters and gauges become a plain series under their own name;
//! - a histogram `h` becomes cumulative `h_bucket` series labelled
//!   `le="<bound>"` (plus `le="+Inf"`), `h_sum`, and `h_count`.
//!
//! Everything scraped is therefore queryable back out with
//! `query_instant`/`query_range` and label matchers, like any other
//! series the pipeline collects.

use env2vec_telemetry::{Sample, TimeSeriesDb};

use crate::metrics::{MetricValue, MetricsRegistry};

/// Formats a bucket bound the way Prometheus does: shortest exact-ish
/// decimal (`0.001`, not `1e-3`), so `le` labels are stable strings.
pub(crate) fn format_bound(b: f64) -> String {
    let s = format!("{b}");
    if s.contains('e') || s.contains('E') {
        // Fall back to a plain decimal rendering for tiny bounds.
        let s = format!("{b:.12}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    } else {
        s
    }
}

/// Writes one sample per registered series at `timestamp`, returning
/// the number of samples written.
///
/// Scrapes are **idempotent per timestamp**: samples are upserted, so
/// scraping the same registry twice at the same timestamp overwrites the
/// first scrape's points (with the newer readings) instead of
/// duplicating them.
pub fn scrape_into(registry: &MetricsRegistry, db: &TimeSeriesDb, timestamp: i64) -> usize {
    scrape_into_with(registry, db, timestamp, &env2vec_telemetry::LabelSet::new())
}

/// [`scrape_into`] with extra `base` labels merged into every written
/// series — e.g. `env="__introspect"` to file self-telemetry under the
/// reserved introspection environment.
pub fn scrape_into_with(
    registry: &MetricsRegistry,
    db: &TimeSeriesDb,
    timestamp: i64,
    base: &env2vec_telemetry::LabelSet,
) -> usize {
    let merge = |labels: &env2vec_telemetry::LabelSet| {
        let mut merged = base.clone();
        for (k, v) in labels.iter() {
            merged = merged.with(k, v);
        }
        merged
    };
    let mut written = 0;
    for metric in registry.snapshot() {
        match metric.value {
            MetricValue::Counter(v) => {
                db.upsert(
                    &metric.name,
                    &merge(&metric.labels),
                    Sample {
                        timestamp,
                        value: v as f64,
                    },
                );
                written += 1;
            }
            MetricValue::Gauge(v) => {
                db.upsert(
                    &metric.name,
                    &merge(&metric.labels),
                    Sample {
                        timestamp,
                        value: v,
                    },
                );
                written += 1;
            }
            MetricValue::Histogram {
                bounds,
                cumulative,
                sum,
                count,
                // Exemplars are exposition-only: the TSDB stores the
                // numeric series, /metrics carries the trace links.
                exemplars: _,
            } => {
                let bucket_name = format!("{}_bucket", metric.name);
                for (i, cum) in cumulative.iter().enumerate() {
                    let le = if i < bounds.len() {
                        format_bound(bounds[i])
                    } else {
                        "+Inf".to_string()
                    };
                    let labels = merge(&metric.labels).with("le", le);
                    db.upsert(
                        &bucket_name,
                        &labels,
                        Sample {
                            timestamp,
                            value: *cum as f64,
                        },
                    );
                    written += 1;
                }
                db.upsert(
                    &format!("{}_sum", metric.name),
                    &merge(&metric.labels),
                    Sample {
                        timestamp,
                        value: sum,
                    },
                );
                db.upsert(
                    &format!("{}_count", metric.name),
                    &merge(&metric.labels),
                    Sample {
                        timestamp,
                        value: count as f64,
                    },
                );
                written += 2;
            }
        }
    }
    written
}

#[cfg(test)]
mod tests {
    use super::*;
    use env2vec_telemetry::{LabelMatcher, LabelSet};

    #[test]
    fn counters_and_gauges_round_trip_by_label() {
        let reg = MetricsRegistry::new();
        reg.counter_with("screens_total", LabelSet::new().with("method", "env2vec"))
            .inc_by(7);
        reg.gauge("tsdb_series").set(12.0);
        let db = TimeSeriesDb::new();
        let written = scrape_into(&reg, &db, 1_000);
        assert_eq!(written, 2);

        let hits = db.query_instant(
            "screens_total",
            &[LabelMatcher::eq("method", "env2vec")],
            1_000,
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1.value, 7.0);

        let gauges = db.query_instant("tsdb_series", &[], 1_000);
        assert_eq!(gauges.len(), 1);
        assert_eq!(gauges[0].1.value, 12.0);
    }

    #[test]
    fn histograms_expand_to_prometheus_series() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("train_epoch_seconds");
        h.observe(0.5);
        h.observe(0.02);
        let db = TimeSeriesDb::new();
        scrape_into(&reg, &db, 2_000);

        // +Inf bucket counts everything.
        let inf = db.query_instant(
            "train_epoch_seconds_bucket",
            &[LabelMatcher::eq("le", "+Inf")],
            2_000,
        );
        assert_eq!(inf.len(), 1);
        assert_eq!(inf[0].1.value, 2.0);

        // A mid bucket (le=0.1) holds only the 0.02 observation... and
        // cumulative counts are monotone in the bound.
        let mid = db.query_instant(
            "train_epoch_seconds_bucket",
            &[LabelMatcher::eq("le", "0.1")],
            2_000,
        );
        assert_eq!(mid.len(), 1);
        assert_eq!(mid[0].1.value, 1.0);

        let sum = db.query_instant("train_epoch_seconds_sum", &[], 2_000);
        assert!((sum[0].1.value - 0.52).abs() < 1e-9);
        let count = db.query_instant("train_epoch_seconds_count", &[], 2_000);
        assert_eq!(count[0].1.value, 2.0);
    }

    #[test]
    fn bounds_render_as_plain_decimals() {
        assert_eq!(format_bound(0.001), "0.001");
        assert_eq!(format_bound(1.0), "1");
        assert_eq!(format_bound(0.000001), "0.000001");
        assert_eq!(format_bound(316.2), "316.2");
    }

    #[test]
    fn double_scrape_at_same_timestamp_does_not_duplicate() {
        let reg = MetricsRegistry::new();
        reg.counter("ticks").inc();
        reg.gauge("depth").set(1.0);
        let h = reg.histogram("lat_seconds");
        h.observe(0.01);
        let db = TimeSeriesDb::new();
        let first = scrape_into(&reg, &db, 500);
        let samples_after_first = db.num_samples();
        // Metrics move between scrapes, but the timestamp is the same.
        reg.counter("ticks").inc();
        reg.gauge("depth").set(2.0);
        let second = scrape_into(&reg, &db, 500);
        assert_eq!(first, second);
        assert_eq!(
            db.num_samples(),
            samples_after_first,
            "same-timestamp scrape must replace, not append"
        );
        // The second scrape's readings won.
        assert_eq!(db.query_instant("ticks", &[], 500)[0].1.value, 2.0);
        assert_eq!(db.query_instant("depth", &[], 500)[0].1.value, 2.0);
    }

    #[test]
    fn labels_round_trip_scrape_to_query() {
        let reg = MetricsRegistry::new();
        let labels = LabelSet::new()
            .with("model", "env2vec")
            .with("phase", "train");
        reg.gauge_with("loss", labels.clone()).set(0.25);
        let db = TimeSeriesDb::new();
        scrape_into(&reg, &db, 7);
        let hits = db.query_instant(
            "loss",
            &[
                LabelMatcher::eq("model", "env2vec"),
                LabelMatcher::eq("phase", "train"),
            ],
            7,
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, labels, "full LabelSet survives the round trip");
        assert_eq!(hits[0].1.value, 0.25);
        // A mismatched matcher finds nothing.
        assert!(db
            .query_instant("loss", &[LabelMatcher::eq("model", "rfnn")], 7)
            .is_empty());
    }

    #[test]
    fn base_labels_merge_into_every_series() {
        let reg = MetricsRegistry::new();
        reg.counter_with("epochs", LabelSet::new().with("model", "env2vec"))
            .inc();
        reg.histogram("step_seconds").observe(0.5);
        let db = TimeSeriesDb::new();
        let base = LabelSet::new().with("env", "__introspect");
        scrape_into_with(&reg, &db, 9, &base);
        let hits = db.query_instant("epochs", &[LabelMatcher::eq("env", "__introspect")], 9);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0.get("model"), Some("env2vec"));
        // Histogram expansion carries the base label too (alongside le).
        let buckets = db.query_instant(
            "step_seconds_bucket",
            &[
                LabelMatcher::eq("env", "__introspect"),
                LabelMatcher::eq("le", "+Inf"),
            ],
            9,
        );
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].1.value, 1.0);
    }

    #[test]
    fn repeated_scrapes_grow_history_not_cardinality() {
        let reg = MetricsRegistry::new();
        reg.counter("ticks").inc();
        let db = TimeSeriesDb::new();
        scrape_into(&reg, &db, 1);
        reg.counter("ticks").inc();
        scrape_into(&reg, &db, 2);
        assert_eq!(db.num_series(), 1);
        let range = db.query_range("ticks", &[], 0, 10);
        assert_eq!(range.len(), 1);
        assert_eq!(range[0].samples.len(), 2);
        assert_eq!(range[0].samples[1].value, 2.0);
    }
}
