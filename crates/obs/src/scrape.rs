//! Self-scrape: persist a metrics snapshot into the telemetry TSDB.
//!
//! Env2Vec already ships a time-series database for VNF telemetry
//! ([`env2vec_telemetry::TimeSeriesDb`]); the observability layer
//! dogfoods it as metrics storage. Each scrape takes a registry
//! snapshot and appends one sample per series at the given timestamp,
//! following the Prometheus exposition conventions:
//!
//! - counters and gauges become a plain series under their own name;
//! - a histogram `h` becomes cumulative `h_bucket` series labelled
//!   `le="<bound>"` (plus `le="+Inf"`), `h_sum`, and `h_count`.
//!
//! Everything scraped is therefore queryable back out with
//! `query_instant`/`query_range` and label matchers, like any other
//! series the pipeline collects.

use env2vec_telemetry::{Sample, TimeSeriesDb};

use crate::metrics::{MetricValue, MetricsRegistry};

/// Formats a bucket bound the way Prometheus does: shortest exact-ish
/// decimal (`0.001`, not `1e-3`), so `le` labels are stable strings.
fn format_bound(b: f64) -> String {
    let s = format!("{b}");
    if s.contains('e') || s.contains('E') {
        // Fall back to a plain decimal rendering for tiny bounds.
        let s = format!("{b:.12}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    } else {
        s
    }
}

/// Appends one sample per registered series at `timestamp`, returning
/// the number of samples written.
pub fn scrape_into(registry: &MetricsRegistry, db: &TimeSeriesDb, timestamp: i64) -> usize {
    let mut written = 0;
    for metric in registry.snapshot() {
        match metric.value {
            MetricValue::Counter(v) => {
                db.append(
                    &metric.name,
                    &metric.labels,
                    Sample {
                        timestamp,
                        value: v as f64,
                    },
                );
                written += 1;
            }
            MetricValue::Gauge(v) => {
                db.append(
                    &metric.name,
                    &metric.labels,
                    Sample {
                        timestamp,
                        value: v,
                    },
                );
                written += 1;
            }
            MetricValue::Histogram {
                bounds,
                cumulative,
                sum,
                count,
            } => {
                let bucket_name = format!("{}_bucket", metric.name);
                for (i, cum) in cumulative.iter().enumerate() {
                    let le = if i < bounds.len() {
                        format_bound(bounds[i])
                    } else {
                        "+Inf".to_string()
                    };
                    let labels = metric.labels.clone().with("le", le);
                    db.append(
                        &bucket_name,
                        &labels,
                        Sample {
                            timestamp,
                            value: *cum as f64,
                        },
                    );
                    written += 1;
                }
                db.append(
                    &format!("{}_sum", metric.name),
                    &metric.labels,
                    Sample {
                        timestamp,
                        value: sum,
                    },
                );
                db.append(
                    &format!("{}_count", metric.name),
                    &metric.labels,
                    Sample {
                        timestamp,
                        value: count as f64,
                    },
                );
                written += 2;
            }
        }
    }
    written
}

#[cfg(test)]
mod tests {
    use super::*;
    use env2vec_telemetry::{LabelMatcher, LabelSet};

    #[test]
    fn counters_and_gauges_round_trip_by_label() {
        let reg = MetricsRegistry::new();
        reg.counter_with("screens_total", LabelSet::new().with("method", "env2vec"))
            .inc_by(7);
        reg.gauge("tsdb_series").set(12.0);
        let db = TimeSeriesDb::new();
        let written = scrape_into(&reg, &db, 1_000);
        assert_eq!(written, 2);

        let hits = db.query_instant(
            "screens_total",
            &[LabelMatcher::eq("method", "env2vec")],
            1_000,
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1.value, 7.0);

        let gauges = db.query_instant("tsdb_series", &[], 1_000);
        assert_eq!(gauges.len(), 1);
        assert_eq!(gauges[0].1.value, 12.0);
    }

    #[test]
    fn histograms_expand_to_prometheus_series() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("train_epoch_seconds");
        h.observe(0.5);
        h.observe(0.02);
        let db = TimeSeriesDb::new();
        scrape_into(&reg, &db, 2_000);

        // +Inf bucket counts everything.
        let inf = db.query_instant(
            "train_epoch_seconds_bucket",
            &[LabelMatcher::eq("le", "+Inf")],
            2_000,
        );
        assert_eq!(inf.len(), 1);
        assert_eq!(inf[0].1.value, 2.0);

        // A mid bucket (le=0.1) holds only the 0.02 observation... and
        // cumulative counts are monotone in the bound.
        let mid = db.query_instant(
            "train_epoch_seconds_bucket",
            &[LabelMatcher::eq("le", "0.1")],
            2_000,
        );
        assert_eq!(mid.len(), 1);
        assert_eq!(mid[0].1.value, 1.0);

        let sum = db.query_instant("train_epoch_seconds_sum", &[], 2_000);
        assert!((sum[0].1.value - 0.52).abs() < 1e-9);
        let count = db.query_instant("train_epoch_seconds_count", &[], 2_000);
        assert_eq!(count[0].1.value, 2.0);
    }

    #[test]
    fn bounds_render_as_plain_decimals() {
        assert_eq!(format_bound(0.001), "0.001");
        assert_eq!(format_bound(1.0), "1");
        assert_eq!(format_bound(0.000001), "0.000001");
        assert_eq!(format_bound(316.2), "316.2");
    }

    #[test]
    fn repeated_scrapes_grow_history_not_cardinality() {
        let reg = MetricsRegistry::new();
        reg.counter("ticks").inc();
        let db = TimeSeriesDb::new();
        scrape_into(&reg, &db, 1);
        reg.counter("ticks").inc();
        scrape_into(&reg, &db, 2);
        assert_eq!(db.num_series(), 1);
        let range = db.query_range("ticks", &[], 0, 10);
        assert_eq!(range.len(), 1);
        assert_eq!(range[0].samples.len(), 2);
        assert_eq!(range[0].samples[1].value, 2.0);
    }
}
