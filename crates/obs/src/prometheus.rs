//! Prometheus text exposition format (version 0.0.4) rendering.
//!
//! [`render`] serialises a registry snapshot into the plain-text format
//! every Prometheus-compatible scraper ingests:
//!
//! ```text
//! # TYPE train_epochs_total counter
//! train_epochs_total{model="env2vec"} 42
//! # TYPE span_seconds histogram
//! span_seconds_bucket{name="fit",le="0.001"} 3
//! span_seconds_bucket{name="fit",le="+Inf"} 9
//! span_seconds_sum{name="fit"} 1.25
//! span_seconds_count{name="fit"} 9
//! ```
//!
//! Histograms expand to cumulative `_bucket` series (`le` label),
//! `_sum`, and `_count`, exactly mirroring how [`crate::scrape`] files
//! them into the TSDB — one mental model for both sinks. Label values
//! are escaped per the exposition spec (`\\`, `\"`, `\n`).

use crate::metrics::{MetricSample, MetricValue, MetricsRegistry};
use crate::scrape::format_bound;
use env2vec_telemetry::LabelSet;

/// Escapes a label value per the Prometheus exposition format: backslash,
/// double quote, and newline get backslash escapes.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders a label set as `{k="v",...}`, or the empty string when there
/// are no labels. An extra `le` pair is appended last when provided
/// (bucket series convention).
fn render_labels(labels: &LabelSet, le: Option<&str>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, escape_label_value(v)))
        .collect();
    if let Some(le) = le {
        pairs.push(format!("le=\"{}\"", escape_label_value(le)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Formats a sample value: integral floats render without a decimal
/// point (Prometheus accepts both; this keeps counters tidy).
fn render_value(v: f64) -> String {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders one snapshot in Prometheus text exposition format. Samples
/// arrive in `(name, labels)` order from the registry, so each metric
/// name gets exactly one `# TYPE` header covering all its label
/// variants.
pub fn render_snapshot(samples: &[MetricSample]) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for sample in samples {
        if last_name != Some(sample.name.as_str()) {
            let kind = match sample.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram { .. } => "histogram",
            };
            out.push_str(&format!("# TYPE {} {}\n", sample.name, kind));
            last_name = Some(sample.name.as_str());
        }
        match &sample.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    sample.name,
                    render_labels(&sample.labels, None),
                    v
                ));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    sample.name,
                    render_labels(&sample.labels, None),
                    render_value(*v)
                ));
            }
            MetricValue::Histogram {
                bounds,
                cumulative,
                sum,
                count,
                exemplars,
            } => {
                for (i, cum) in cumulative.iter().enumerate() {
                    let le = if i < bounds.len() {
                        format_bound(bounds[i])
                    } else {
                        "+Inf".to_string()
                    };
                    // OpenMetrics exemplar suffix: ` # {labels} value`
                    // after the bucket sample, naming the last sampled
                    // trace that landed in this bucket.
                    let exemplar = match exemplars.get(i).copied().flatten() {
                        Some(e) => {
                            format!(" # {{trace_id=\"{:032x}\"}} {}", e.trace_id, e.value)
                        }
                        None => String::new(),
                    };
                    out.push_str(&format!(
                        "{}_bucket{} {}{}\n",
                        sample.name,
                        render_labels(&sample.labels, Some(&le)),
                        cum,
                        exemplar
                    ));
                }
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    sample.name,
                    render_labels(&sample.labels, None),
                    render_value(*sum)
                ));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    sample.name,
                    render_labels(&sample.labels, None),
                    count
                ));
            }
        }
    }
    out
}

/// Renders the registry's current state ([`render_snapshot`] of
/// [`MetricsRegistry::snapshot`]).
pub fn render(registry: &MetricsRegistry) -> String {
    render_snapshot(&registry.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    type ParsedSamples = Vec<(String, BTreeMap<String, String>, f64)>;

    /// A miniature exposition-format parser: returns
    /// `(name, labels, value)` per sample line plus the `# TYPE` map.
    /// Used to prove the renderer's output round-trips.
    fn parse(text: &str) -> (BTreeMap<String, String>, ParsedSamples) {
        let mut types = BTreeMap::new();
        let mut samples = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, kind) = rest.split_once(' ').expect("TYPE line");
                types.insert(name.to_string(), kind.to_string());
                continue;
            }
            assert!(!line.starts_with('#'), "unexpected comment: {line}");
            // Strip an OpenMetrics exemplar suffix (` # {...} value`)
            // before splitting off the sample value.
            let line = line.split(" # {").next().expect("split never empty");
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            let value: f64 = value.parse().expect("sample value");
            let (name, labels) = match series.split_once('{') {
                None => (series.to_string(), BTreeMap::new()),
                Some((name, rest)) => {
                    let body = rest.strip_suffix('}').expect("closing brace");
                    let mut labels = BTreeMap::new();
                    // Split on `",` boundaries, un-escaping values.
                    let mut remaining = body;
                    while !remaining.is_empty() {
                        let (k, rest) = remaining.split_once("=\"").expect("label key");
                        // Find the closing unescaped quote.
                        let mut val = String::new();
                        let mut chars = rest.chars();
                        loop {
                            match chars.next().expect("unterminated label") {
                                '\\' => match chars.next().expect("dangling escape") {
                                    'n' => val.push('\n'),
                                    c => val.push(c),
                                },
                                '"' => break,
                                c => val.push(c),
                            }
                        }
                        labels.insert(k.to_string(), val);
                        remaining = chars.as_str().strip_prefix(',').unwrap_or(chars.as_str());
                    }
                    (name.to_string(), labels)
                }
            };
            samples.push((name, labels, value));
        }
        (types, samples)
    }

    #[test]
    fn renders_and_parses_back_all_metric_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter_with("epochs_total", LabelSet::new().with("model", "env2vec"))
            .inc_by(42);
        reg.counter_with("epochs_total", LabelSet::new().with("model", "rfnn"))
            .inc_by(7);
        reg.gauge("val_loss").set(0.125);
        let h = reg.histogram("step_seconds");
        h.observe(2e-6);
        h.observe(5_000.0);

        let text = render(&reg);
        let (types, samples) = parse(&text);

        assert_eq!(
            types.get("epochs_total").map(String::as_str),
            Some("counter")
        );
        assert_eq!(types.get("val_loss").map(String::as_str), Some("gauge"));
        assert_eq!(
            types.get("step_seconds").map(String::as_str),
            Some("histogram")
        );
        // One TYPE line per name even with two label variants.
        assert_eq!(text.matches("# TYPE epochs_total").count(), 1);

        let find = |name: &str, label: Option<(&str, &str)>| {
            samples
                .iter()
                .find(|(n, l, _)| {
                    n == name && label.is_none_or(|(k, v)| l.get(k).map(String::as_str) == Some(v))
                })
                .unwrap_or_else(|| panic!("missing {name}"))
                .2
        };
        assert_eq!(find("epochs_total", Some(("model", "env2vec"))), 42.0);
        assert_eq!(find("epochs_total", Some(("model", "rfnn"))), 7.0);
        assert_eq!(find("val_loss", None), 0.125);
        // Histogram expansion: cumulative buckets, +Inf counts all.
        assert_eq!(find("step_seconds_bucket", Some(("le", "+Inf"))), 2.0);
        assert_eq!(find("step_seconds_bucket", Some(("le", "0.000001"))), 0.0);
        assert_eq!(find("step_seconds_count", None), 2.0);
        assert!((find("step_seconds_sum", None) - 5_000.000002).abs() < 1e-6);
        // Buckets are cumulative (monotone in le for finite bounds).
        let bucket_vals: Vec<f64> = samples
            .iter()
            .filter(|(n, _, _)| n == "step_seconds_bucket")
            .map(|(_, _, v)| *v)
            .collect();
        assert!(bucket_vals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.gauge_with(
            "weird",
            LabelSet::new().with("name", "he said \"hi\"\nback\\slash"),
        )
        .set(1.0);
        let text = render(&reg);
        assert!(text.contains(r#"name="he said \"hi\"\nback\\slash""#));
        // No raw newline inside the sample line: exactly 2 lines.
        assert_eq!(text.lines().count(), 2);
        // And the parser recovers the original value.
        let (_, samples) = parse(&text);
        assert_eq!(
            samples[0].1.get("name").map(String::as_str),
            Some("he said \"hi\"\nback\\slash")
        );
    }

    #[test]
    fn integral_values_render_without_decimal_noise() {
        assert_eq!(render_value(3.0), "3");
        assert_eq!(render_value(0.5), "0.5");
        assert_eq!(render_value(f64::NAN), "NaN");
    }

    #[test]
    fn bucket_lines_carry_exemplars_in_openmetrics_syntax() {
        use crate::trace::TraceContext;
        let reg = MetricsRegistry::new();
        let h = reg.histogram("req_seconds");
        let ctx = TraceContext::from_seed(11, true);
        h.observe_traced(2e-6, Some(&ctx));
        h.observe(0.5); // untraced: its bucket gets no exemplar

        let text = render(&reg);
        let expected = format!(
            "req_seconds_bucket{{le=\"0.000003162\"}} 1 # {{trace_id=\"{:032x}\"}} 0.000002",
            ctx.trace_id
        );
        assert!(
            text.lines().any(|l| l == expected),
            "missing exemplar line in:\n{text}"
        );
        // The untraced bucket renders bare.
        assert!(text.lines().any(|l| l == "req_seconds_bucket{le=\"1\"} 2"));
        // The parser still round-trips exemplar-bearing output.
        let (types, samples) = parse(&text);
        assert_eq!(
            types.get("req_seconds").map(String::as_str),
            Some("histogram")
        );
        let inf = samples
            .iter()
            .find(|(n, l, _)| {
                n == "req_seconds_bucket" && l.get("le").map(String::as_str) == Some("+Inf")
            })
            .expect("+Inf bucket");
        assert_eq!(inf.2, 2.0);
    }
}
