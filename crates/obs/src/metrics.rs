//! Counters, gauges, and log-bucket histograms in a label-aware registry.
//!
//! The model mirrors Prometheus client libraries: a metric is identified
//! by name plus a [`LabelSet`], counters only go up, gauges hold the
//! latest value, and histograms count observations into **fixed
//! log-scale buckets** (half-decade boundaries), so percentile estimates
//! stay within ~1.8x multiplicative error with a handful of `u64`s and
//! no per-observation allocation.
//!
//! All metric handles are lock-free `Arc`s; the registry lock is only
//! taken when a handle is first created (or at scrape time).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use env2vec_telemetry::locks::{TrackedMutex, TrackedRwLock};
pub use env2vec_telemetry::LabelSet;

use crate::trace::TraceContext;

/// One OpenMetrics exemplar: the last sampled observation that landed in
/// a histogram bucket, tagged with the trace that produced it — the
/// bridge from "p99 is slow" to "this specific request was slow".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exemplar {
    /// Trace id of the sampled request.
    pub trace_id: u128,
    /// The observed value itself (inside the bucket's range).
    pub value: f64,
}

/// Monotonically increasing count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn inc_by(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Latest-value metric.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Default histogram boundaries: half-decade log-scale buckets from 1 µs
/// to 1000 s, in seconds. `observe` values above the last bound land in
/// the implicit `+Inf` bucket.
pub const DURATION_BUCKETS: [f64; 19] = [
    1e-6, 3.162e-6, 1e-5, 3.162e-5, 1e-4, 3.162e-4, 1e-3, 3.162e-3, 1e-2, 3.162e-2, 1e-1, 3.162e-1,
    1e0, 3.162e0, 1e1, 3.162e1, 1e2, 3.162e2, 1e3,
];

/// Observation distribution over fixed log-scale buckets.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One slot per bound plus the trailing `+Inf` bucket.
    counts: Vec<AtomicU64>,
    /// Sum of observed values (f64 bits, CAS-updated).
    sum_bits: AtomicU64,
    count: AtomicU64,
    /// Per-bucket exemplar slots, allocated lazily on the first traced
    /// observation so untraced histograms pay nothing. Each slot is
    /// locked only when a *sampled* observation lands in its bucket —
    /// rare by construction (1-in-N sampling) — so the hot `observe`
    /// path stays lock-free.
    exemplars: OnceLock<Vec<TrackedMutex<Option<Exemplar>>>>,
}

impl Histogram {
    /// A histogram over the given ascending upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn with_bounds(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            count: AtomicU64::new(0),
            exemplars: OnceLock::new(),
        }
    }

    /// The default duration histogram ([`DURATION_BUCKETS`]).
    pub fn durations() -> Self {
        Self::with_bounds(&DURATION_BUCKETS)
    }

    /// Log-scale bounds: `buckets_per_decade` geometric steps per power
    /// of ten, spanning `10^min_exp ..= 10^max_exp`.
    ///
    /// # Panics
    /// Panics if `min_exp >= max_exp` or `buckets_per_decade == 0`.
    pub fn log_bounds(min_exp: i32, max_exp: i32, buckets_per_decade: u32) -> Vec<f64> {
        assert!(min_exp < max_exp, "log_bounds: empty exponent range");
        assert!(
            buckets_per_decade > 0,
            "log_bounds: zero buckets per decade"
        );
        let steps = (max_exp - min_exp) as u32 * buckets_per_decade;
        (0..=steps)
            .map(|i| 10f64.powf(min_exp as f64 + i as f64 / buckets_per_decade as f64))
            .collect()
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Records one observation and, when `trace` is a sampled context,
    /// retains it as the bucket's exemplar. Untraced and unsampled calls
    /// are exactly [`Histogram::observe`] — no lock, no allocation.
    pub fn observe_traced(&self, value: f64, trace: Option<&TraceContext>) {
        self.observe(value);
        if let Some(ctx) = trace {
            if ctx.sampled {
                let idx = self.bounds.partition_point(|&b| b < value);
                let slots = self.exemplars.get_or_init(|| {
                    (0..self.bounds.len() + 1)
                        .map(|_| TrackedMutex::new("obs.metrics.exemplar", None))
                        .collect()
                });
                *slots[idx].lock() = Some(Exemplar {
                    trace_id: ctx.trace_id,
                    value,
                });
            }
        }
    }

    /// Snapshot of the per-bucket exemplars (`bounds().len() + 1` slots,
    /// last is `+Inf`), or an empty vec when no traced observation has
    /// ever landed here.
    pub fn exemplars(&self) -> Vec<Option<Exemplar>> {
        match self.exemplars.get() {
            Some(slots) => slots.iter().map(|s| *s.lock()).collect(),
            None => Vec::new(),
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Upper bounds, excluding the implicit `+Inf`.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (non-cumulative), including the final `+Inf`
    /// bucket; `bucket_counts().len() == bounds().len() + 1`.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Cumulative counts per bound, Prometheus `le` semantics: entry `i`
    /// is the number of observations `<= bounds()[i]`, and a final entry
    /// counts everything (`le="+Inf"`).
    pub fn cumulative_counts(&self) -> Vec<u64> {
        let mut total = 0;
        self.bucket_counts()
            .into_iter()
            .map(|c| {
                total += c;
                total
            })
            .collect()
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) of the observed
    /// distribution by linear interpolation within the bucket containing
    /// the target rank (see [`quantile_from_cumulative`]).
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_cumulative(&self.bounds, &self.cumulative_counts(), q)
    }
}

/// Quantile estimate over Prometheus-style cumulative bucket counts —
/// the same `histogram_quantile` rule Prometheus applies server-side.
///
/// `cumulative` must have `bounds.len() + 1` entries (the last is the
/// `+Inf` bucket). The target rank `q·total` is located in the first
/// **occupied** bucket whose cumulative count reaches it and linearly
/// interpolated between the bucket's bounds (the first bucket's lower
/// bound is 0). Ranks landing in the `+Inf` bucket return the last
/// finite bound — the estimator cannot see past it. Returns NaN when the
/// histogram is empty.
///
/// Skipping empty buckets only matters at rank 0 (`q = 0.0`): an empty
/// leading bucket has `cumulative[0] = 0 >= rank`, and an earlier
/// version of this function answered with `bounds[0]` — a bound that can
/// sit *below* every recorded observation. `q = 0.0` now reports the
/// lower edge of the bucket holding the minimum, matching what
/// [`Histogram::quantile`] reports for every other rank.
pub fn quantile_from_cumulative(bounds: &[f64], cumulative: &[u64], q: f64) -> f64 {
    let total = match cumulative.last() {
        Some(&t) if t > 0 => t as f64,
        _ => return f64::NAN,
    };
    let q = q.clamp(0.0, 1.0);
    let rank = q * total;
    for (i, &cum) in cumulative.iter().enumerate() {
        // `cum > 0` excludes empty leading buckets, reachable only at
        // rank 0; for any positive rank, `cum >= rank` implies `cum > 0`.
        if (cum as f64) >= rank && cum > 0 {
            if i >= bounds.len() {
                return bounds.last().copied().unwrap_or(f64::NAN);
            }
            let lower = if i == 0 { 0.0 } else { bounds[i - 1] };
            let prev = if i == 0 {
                0.0
            } else {
                cumulative[i - 1] as f64
            };
            // Strictly positive: an occupied bucket at the first index
            // whose cumulative count reaches the rank cannot share its
            // count with the (necessarily smaller or rank-missing)
            // predecessor.
            let in_bucket = cum as f64 - prev;
            return lower + (bounds[i] - lower) * (rank - prev) / in_bucket;
        }
    }
    bounds.last().copied().unwrap_or(f64::NAN)
}

/// A metric handle of any kind.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: LabelSet,
}

/// One scraped value (see [`MetricsRegistry::snapshot`]).
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram reading: `(bounds, cumulative_counts, sum, count)`.
    Histogram {
        /// Bucket upper bounds (no `+Inf`).
        bounds: Vec<f64>,
        /// Cumulative counts per bound plus a final `+Inf` entry.
        cumulative: Vec<u64>,
        /// Sum of observations.
        sum: f64,
        /// Number of observations.
        count: u64,
        /// Per-bucket exemplars (one slot per cumulative entry), or
        /// empty when the histogram has never seen a traced observation.
        exemplars: Vec<Option<Exemplar>>,
    },
}

/// A `(name, labels, value)` triple from a registry snapshot.
#[derive(Debug, Clone)]
pub struct MetricSample {
    /// Metric name.
    pub name: String,
    /// Label set.
    pub labels: LabelSet,
    /// The reading.
    pub value: MetricValue,
}

/// Label-aware registry handing out shared metric handles.
///
/// Keyed by a `BTreeMap` so every walk over the registry — snapshots,
/// scrapes, exports — sees series in `(name, labels)` order with no
/// per-process randomisation (envlint `hash-iter`).
#[derive(Debug)]
pub struct MetricsRegistry {
    metrics: TrackedRwLock<BTreeMap<MetricKey, Metric>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            metrics: TrackedRwLock::new("obs.metrics.registry", BTreeMap::new()),
        }
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert<T, F: FnOnce() -> Metric, G: Fn(&Metric) -> Option<T>>(
        &self,
        name: &str,
        labels: LabelSet,
        make: F,
        cast: G,
    ) -> T {
        let key = MetricKey {
            name: name.to_string(),
            labels,
        };
        if let Some(m) = self.metrics.read().get(&key) {
            return cast(m)
                // envlint: allow(no-panic) — documented API contract: one
                // name+labels key maps to one metric kind, and a mismatch
                // is a programming error at the registration site.
                .unwrap_or_else(|| panic!("metric `{name}` already registered as a {}", m.kind()));
        }
        let mut metrics = self.metrics.write();
        let entry = metrics.entry(key).or_insert_with(make);
        cast(entry)
            // envlint: allow(no-panic) — same kind-mismatch contract as above.
            .unwrap_or_else(|| panic!("metric `{name}` already registered as a {}", entry.kind()))
    }

    /// Counter with no labels.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, LabelSet::new())
    }

    /// Counter with the given labels.
    ///
    /// # Panics
    /// Panics if `name`+`labels` is already registered as another kind.
    pub fn counter_with(&self, name: &str, labels: LabelSet) -> Arc<Counter> {
        self.get_or_insert(
            name,
            labels,
            || Metric::Counter(Arc::new(Counter::default())),
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Gauge with no labels.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, LabelSet::new())
    }

    /// Gauge with the given labels.
    ///
    /// # Panics
    /// Panics if `name`+`labels` is already registered as another kind.
    pub fn gauge_with(&self, name: &str, labels: LabelSet) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            labels,
            || Metric::Gauge(Arc::new(Gauge::default())),
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Duration histogram ([`DURATION_BUCKETS`]) with no labels.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, LabelSet::new())
    }

    /// Duration histogram with the given labels.
    ///
    /// # Panics
    /// Panics if `name`+`labels` is already registered as another kind.
    pub fn histogram_with(&self, name: &str, labels: LabelSet) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            labels,
            || Metric::Histogram(Arc::new(Histogram::durations())),
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Histogram over custom `bounds` (e.g. row counts rather than
    /// durations) with no labels. The bounds only apply on first
    /// registration; later calls return the existing series regardless.
    ///
    /// # Panics
    /// Panics if `name` is already registered as another kind, or if
    /// `bounds` is empty / not strictly ascending on first registration.
    pub fn histogram_with_bounds(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            LabelSet::new(),
            || Metric::Histogram(Arc::new(Histogram::with_bounds(bounds))),
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Number of registered metric handles (series).
    pub fn len(&self) -> usize {
        self.metrics.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time reading of every registered metric, in
    /// `(name, labels)` order — the registry's own `BTreeMap` key order,
    /// so output is deterministic without a separate sort.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let metrics = self.metrics.read();
        metrics
            .iter()
            .map(|(key, metric)| MetricSample {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram {
                        bounds: h.bounds().to_vec(),
                        cumulative: h.cumulative_counts(),
                        sum: h.sum(),
                        count: h.count(),
                        exemplars: h.exemplars(),
                    },
                },
            })
            .collect()
    }
}

/// The process-wide registry used by pipeline instrumentation.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: std::sync::OnceLock<MetricsRegistry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("requests_total");
        c.inc();
        c.inc_by(4);
        assert_eq!(reg.counter("requests_total").get(), 5);
        let g = reg.gauge("queue_depth");
        g.set(3.5);
        assert_eq!(reg.gauge("queue_depth").get(), 3.5);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn labeled_handles_are_distinct_series() {
        let reg = MetricsRegistry::new();
        let a = reg.counter_with("alarms_total", LabelSet::new().with("method", "env2vec"));
        let b = reg.counter_with("alarms_total", LabelSet::new().with("method", "ridge"));
        a.inc();
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(b.get(), 1);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn histogram_buckets_observations_by_log_scale() {
        let h = Histogram::durations();
        // 1 µs boundary is bucket 0; 2 µs lands in (1e-6, 3.162e-6].
        h.observe(1e-6);
        h.observe(2e-6);
        h.observe(0.5); // (0.3162, 1.0]
        h.observe(5_000.0); // beyond the last bound → +Inf bucket
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1, "1 µs sits on the first boundary");
        assert_eq!(counts[1], 1, "2 µs in the second bucket");
        let half_decile = DURATION_BUCKETS.iter().position(|&b| b == 1e0).unwrap();
        assert_eq!(counts[half_decile], 1, "0.5 s in the (0.3162, 1] bucket");
        assert_eq!(counts[DURATION_BUCKETS.len()], 1, "+Inf bucket");
        assert_eq!(h.count(), 4);
        assert!((h.sum() - (1e-6 + 2e-6 + 0.5 + 5000.0)).abs() < 1e-9);
        let cumulative = h.cumulative_counts();
        assert_eq!(*cumulative.last().unwrap(), 4, "le=+Inf counts everything");
        assert!(cumulative.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn log_bounds_are_geometric() {
        let b = Histogram::log_bounds(-3, 0, 1);
        assert_eq!(b.len(), 4);
        assert!((b[0] - 1e-3).abs() < 1e-12);
        assert!((b[3] - 1.0).abs() < 1e-12);
        let b2 = Histogram::log_bounds(0, 1, 2);
        assert!((b2[1] - 10f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        // Hand-built histogram: bounds [1, 2, 4], fills
        //   (0, 1]: 2   (1, 2]: 2   (2, 4]: 4   (4, +Inf): 2
        // cumulative [2, 4, 8, 10], total 10.
        let h = Histogram::with_bounds(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0] {
            h.observe(v);
        }
        for v in [1.5, 2.0] {
            h.observe(v);
        }
        for v in [2.5, 3.0, 3.5, 4.0] {
            h.observe(v);
        }
        for v in [10.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.cumulative_counts(), vec![2, 4, 8, 10]);
        // rank 5 lands in (2, 4] holding cumulative 4..8:
        // 2 + (4-2)·(5-4)/4 = 2.5
        assert!((h.quantile(0.5) - 2.5).abs() < 1e-12);
        // rank 2 lands in (0, 1] holding cumulative 0..2: 0 + 1·(2/2) = 1
        assert!((h.quantile(0.2) - 1.0).abs() < 1e-12);
        // rank 3 lands in (1, 2]: 1 + 1·(3-2)/2 = 1.5
        assert!((h.quantile(0.3) - 1.5).abs() < 1e-12);
        // Overflow bucket: the estimator saturates at the last finite
        // bound.
        assert_eq!(h.quantile(0.95), 4.0);
        assert_eq!(h.quantile(1.0), 4.0);
        // q = 0 interpolates to the bottom of the first bucket.
        assert_eq!(h.quantile(0.0), 0.0);
    }

    #[test]
    fn quantile_of_empty_histogram_is_nan() {
        let h = Histogram::with_bounds(&[1.0, 2.0]);
        assert!(h.quantile(0.5).is_nan());
        assert!(quantile_from_cumulative(&[1.0, 2.0], &[0, 0, 0], 0.5).is_nan());
    }

    #[test]
    fn quantile_from_cumulative_matches_hand_computation() {
        // All mass in the overflow bucket → last finite bound.
        assert_eq!(quantile_from_cumulative(&[1.0], &[0, 5], 0.5), 1.0);
        // Single bucket, uniform interpolation: rank 1.5 of 3 in (0, 2].
        let v = quantile_from_cumulative(&[2.0], &[3, 3], 0.5);
        assert!((v - 1.0).abs() < 1e-12);
        // Out-of-range q is clamped.
        assert_eq!(
            quantile_from_cumulative(&[2.0], &[3, 3], 7.0),
            quantile_from_cumulative(&[2.0], &[3, 3], 1.0)
        );
    }

    #[test]
    fn quantile_zero_reports_the_bucket_holding_the_minimum() {
        // Regression: with empty leading buckets, rank 0 used to match
        // the empty first bucket (cumulative 0 >= 0) and answer
        // bounds[0] — below every recorded observation. All mass here is
        // in (2, 4], so q=0 must report that bucket's lower edge.
        assert_eq!(
            quantile_from_cumulative(&[1.0, 2.0, 4.0], &[0, 0, 5, 5], 0.0),
            2.0
        );
        // Same through the Histogram path.
        let h = Histogram::with_bounds(&[1.0, 2.0, 4.0]);
        h.observe(3.0);
        h.observe(3.5);
        assert_eq!(h.quantile(0.0), 2.0);
        // Mass in the first bucket keeps the old answer: bottom is 0.
        let h2 = Histogram::with_bounds(&[1.0, 2.0, 4.0]);
        h2.observe(0.5);
        h2.observe(3.0);
        assert_eq!(h2.quantile(0.0), 0.0);
        // All mass in +Inf: every quantile saturates at the last bound.
        assert_eq!(quantile_from_cumulative(&[1.0, 2.0], &[0, 0, 3], 0.0), 2.0);
    }

    #[test]
    fn quantile_edge_ranks_and_single_bucket() {
        // Single-bucket histogram: q=0 is the bottom, q=1 the top, and
        // interior ranks interpolate linearly.
        let h = Histogram::with_bounds(&[8.0]);
        for _ in 0..4 {
            h.observe(1.0);
        }
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), 8.0);
        assert!((h.quantile(0.5) - 4.0).abs() < 1e-12);
        // q=1 with overflow mass saturates at the last finite bound.
        assert_eq!(quantile_from_cumulative(&[8.0], &[4, 6], 1.0), 8.0);
        // One observation total: q=0 and q=1 bracket its bucket.
        assert_eq!(
            quantile_from_cumulative(&[1.0, 2.0, 4.0], &[0, 1, 1, 1], 0.0),
            1.0
        );
        assert_eq!(
            quantile_from_cumulative(&[1.0, 2.0, 4.0], &[0, 1, 1, 1], 1.0),
            2.0
        );
    }

    #[test]
    fn quantile_paths_agree_while_observers_run() {
        // Live-scrape shape: writers hammer `observe` while a reader
        // takes snapshots. For every snapshot the two quantile paths —
        // `Histogram::quantile` recomputed from a fresh snapshot is
        // inherently racy, so the agreement contract is stated on one
        // snapshot: `quantile_from_cumulative` over the scraped
        // cumulative counts IS the histogram quantile. The reader checks
        // that both stay finite, ordered, and inside the bucket range
        // at every intermediate state.
        let h = Arc::new(Histogram::with_bounds(&[1.0, 2.0, 4.0, 8.0]));
        let mut writers = Vec::new();
        for w in 0..2 {
            let h = Arc::clone(&h);
            writers.push(std::thread::spawn(move || {
                for i in 0..5000u64 {
                    // Deterministic value stream spanning all buckets
                    // including +Inf.
                    let v = ((i * 7 + w * 3) % 10) as f64;
                    h.observe(v);
                }
            }));
        }
        for _ in 0..200 {
            let cumulative = h.cumulative_counts();
            if *cumulative.last().unwrap() == 0 {
                continue;
            }
            for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
                let v = quantile_from_cumulative(h.bounds(), &cumulative, q);
                assert!(v.is_finite(), "q={q} not finite on a live snapshot");
                assert!((0.0..=8.0).contains(&v), "q={q} out of range: {v}");
            }
            let p50 = quantile_from_cumulative(h.bounds(), &cumulative, 0.5);
            let p99 = quantile_from_cumulative(h.bounds(), &cumulative, 0.99);
            assert!(p50 <= p99, "quantiles must be monotone in q");
        }
        for w in writers {
            w.join().unwrap();
        }
        // Settled state: both paths agree exactly on the same snapshot.
        let cumulative = h.cumulative_counts();
        for q in [0.0, 0.1, 0.5, 0.9, 1.0] {
            assert_eq!(
                h.quantile(q).to_bits(),
                quantile_from_cumulative(h.bounds(), &cumulative, q).to_bits()
            );
        }
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn untraced_and_unsampled_observations_leave_no_exemplars() {
        let h = Histogram::durations();
        h.observe(0.5);
        h.observe_traced(0.5, None);
        let quiet = TraceContext::from_seed(1, false);
        h.observe_traced(0.5, Some(&quiet));
        assert!(h.exemplars().is_empty(), "no sampled trace, no exemplars");
        assert_eq!(h.count(), 3, "every path still counts the observation");
    }

    #[test]
    fn sampled_observation_lands_an_exemplar_in_its_bucket() {
        let h = Histogram::with_bounds(&[1.0, 2.0, 4.0]);
        let ctx = TraceContext::from_seed(7, true);
        h.observe_traced(1.5, Some(&ctx));
        let ex = h.exemplars();
        assert_eq!(ex.len(), 4, "one slot per bucket incl. +Inf");
        let hit = ex[1].expect("exemplar in the (1, 2] bucket");
        assert_eq!(hit.trace_id, ctx.trace_id);
        assert_eq!(hit.value, 1.5);
        assert!(ex[0].is_none() && ex[2].is_none() && ex[3].is_none());
        // A later sampled observation in the same bucket replaces it.
        let ctx2 = TraceContext::from_seed(8, true);
        h.observe_traced(2.0, Some(&ctx2));
        assert_eq!(h.exemplars()[1].expect("replaced").trace_id, ctx2.trace_id);
        // The snapshot carries the exemplars through.
        let reg = MetricsRegistry::new();
        let rh = reg.histogram("t_seconds");
        rh.observe_traced(0.5, Some(&ctx));
        match &reg.snapshot()[0].value {
            MetricValue::Histogram { exemplars, .. } => {
                assert!(exemplars
                    .iter()
                    .flatten()
                    .any(|e| e.trace_id == ctx.trace_id));
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn exemplar_attachment_is_safe_under_concurrent_writes() {
        // Writers hammer traced and untraced observations while a reader
        // snapshots. Every exemplar seen must be internally consistent:
        // its value inside its bucket's range and its trace id one that
        // some writer actually used (ids are derived from the value, so
        // a torn read would break the pairing).
        let h = Arc::new(Histogram::with_bounds(&[1.0, 2.0, 4.0, 8.0]));
        let mut writers = Vec::new();
        for w in 0..4u64 {
            let h = Arc::clone(&h);
            writers.push(std::thread::spawn(move || {
                for i in 0..2000u64 {
                    let value = ((i * 7 + w) % 10) as f64;
                    // Seed the trace id from the value so the reader can
                    // verify the (trace_id, value) pairing.
                    let ctx = TraceContext::from_seed(value as u64, true);
                    if i % 3 == 0 {
                        h.observe_traced(value, Some(&ctx));
                    } else {
                        h.observe(value);
                    }
                }
            }));
        }
        let bounds = [1.0, 2.0, 4.0, 8.0];
        for _ in 0..200 {
            for (i, slot) in h.exemplars().iter().enumerate() {
                if let Some(ex) = slot {
                    let lower = if i == 0 {
                        f64::NEG_INFINITY
                    } else {
                        bounds[i - 1]
                    };
                    let upper = bounds.get(i).copied().unwrap_or(f64::INFINITY);
                    assert!(
                        ex.value > lower && ex.value <= upper,
                        "exemplar value {} escaped bucket {i}",
                        ex.value
                    );
                    let expected = TraceContext::from_seed(ex.value as u64, true);
                    assert_eq!(
                        ex.trace_id, expected.trace_id,
                        "trace id / value pairing torn at bucket {i}"
                    );
                }
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        // After the storm every occupied bucket holds an exemplar (each
        // writer produced sampled values spanning all buckets).
        let ex = h.exemplars();
        assert_eq!(ex.len(), 5);
        assert!(ex.iter().flatten().count() >= 4, "buckets hold exemplars");
    }
}
