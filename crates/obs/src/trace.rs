//! W3C trace-context propagation for request-scoped tracing.
//!
//! A [`TraceContext`] identifies one request as it crosses layer
//! boundaries: loadgen stamps a `traceparent` header, the serve stack
//! parses it, and every span, exemplar, and retained trace downstream
//! carries the same 128-bit trace id. The wire format is the W3C
//! `traceparent` header (version 00):
//!
//! ```text
//! 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//! ^^ ^^^^^^^^^^^^ trace-id (32 hex) ^ span-id (16 hex) ^^ flags
//! ```
//!
//! Everything here is deterministic by construction — ids come from a
//! process-global counter fed through a splitmix64 finalizer, and
//! sampling decisions are pure functions of the trace id — so traced
//! runs are replayable and the envlint `wall-clock` rule holds with no
//! entropy or clock exception.

use std::sync::atomic::{AtomicU64, Ordering};

/// One request's identity as it propagates through the serve stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit trace id shared by every span of the request.
    pub trace_id: u128,
    /// 64-bit id of the current span within the trace.
    pub span_id: u64,
    /// Whether the upstream caller asked for this trace to be kept
    /// (the `sampled` flag bit of `traceparent`).
    pub sampled: bool,
}

/// Process-global id source; ids are unique per process and replayable
/// (the Nth id of a run is always the same value).
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// splitmix64 finalizer: a cheap, high-quality bijective mixer turning
/// sequential counter values into well-spread ids.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Whether every byte of `s` is lowercase hex (the W3C header grammar
/// rejects uppercase).
fn is_lower_hex(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

impl TraceContext {
    /// A brand-new unsampled root context with fresh ids.
    pub fn fresh() -> TraceContext {
        let n = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        Self::from_seed(n, false)
    }

    /// The deterministic context derived from `seed` — the same seed
    /// always yields the same ids, so a deterministic request stream
    /// (loadgen's) produces a replayable id stream. Ids are guaranteed
    /// non-zero (the all-zero id is invalid per the W3C spec).
    pub fn from_seed(seed: u64, sampled: bool) -> TraceContext {
        let hi = mix(seed);
        let lo = mix(seed ^ 0xd6e8_feb8_6659_fd93);
        let trace_id = ((hi as u128) << 64 | lo as u128).max(1);
        TraceContext {
            trace_id,
            span_id: mix(seed ^ 0xa5a5_a5a5_a5a5_a5a5).max(1),
            sampled,
        }
    }

    /// A child context: same trace id and sampling decision, fresh span
    /// id. This is what a server creates when continuing an incoming
    /// trace.
    pub fn child(&self) -> TraceContext {
        let n = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        TraceContext {
            trace_id: self.trace_id,
            span_id: mix(n ^ 0x5bd1_e995_7b93_cd0f).max(1),
            sampled: self.sampled,
        }
    }

    /// Deterministic head-sampling: keep 1 in `n` traces, keyed purely
    /// on the trace id (no RNG — the same trace is kept on every
    /// replay). `n <= 1` keeps everything.
    pub fn keep_1_in_n(&self, n: u64) -> bool {
        if n <= 1 {
            return true;
        }
        mix((self.trace_id >> 64) as u64 ^ self.trace_id as u64).is_multiple_of(n)
    }

    /// The trace id as the 32-char lowercase hex the wire format uses.
    pub fn trace_id_hex(&self) -> String {
        format!("{:032x}", self.trace_id)
    }

    /// Renders the context as a W3C `traceparent` header value.
    pub fn format(&self) -> String {
        format!(
            "00-{:032x}-{:016x}-{:02x}",
            self.trace_id,
            self.span_id,
            u8::from(self.sampled)
        )
    }

    /// Parses a W3C `traceparent` header value. Returns `None` for
    /// anything malformed — wrong field widths, uppercase or non-hex
    /// digits, the invalid all-zero ids, or the reserved version `ff` —
    /// so callers can fall back to a fresh context instead of failing
    /// the request.
    pub fn parse(header: &str) -> Option<TraceContext> {
        let mut parts = header.trim().split('-');
        let version = parts.next()?;
        let trace = parts.next()?;
        let span = parts.next()?;
        let flags = parts.next()?;
        if version.len() != 2 || !is_lower_hex(version) || version == "ff" {
            return None;
        }
        // Version 00 has exactly four fields; future versions may append
        // more, which we accept and ignore (per spec) only when the
        // version says so. Version 00 with trailing fields is malformed.
        if version == "00" && parts.next().is_some() {
            return None;
        }
        if trace.len() != 32 || !is_lower_hex(trace) {
            return None;
        }
        if span.len() != 16 || !is_lower_hex(span) {
            return None;
        }
        if flags.len() != 2 || !is_lower_hex(flags) {
            return None;
        }
        let trace_id = u128::from_str_radix(trace, 16).ok()?;
        let span_id = u64::from_str_radix(span, 16).ok()?;
        let flag_bits = u8::from_str_radix(flags, 16).ok()?;
        if trace_id == 0 || span_id == 0 {
            return None;
        }
        Some(TraceContext {
            trace_id,
            span_id,
            sampled: flag_bits & 1 == 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_parse_round_trip() {
        let ctx = TraceContext {
            trace_id: 0x4bf9_2f35_77b3_4da6_a3ce_929d_0e0e_4736,
            span_id: 0x00f0_67aa_0ba9_02b7,
            sampled: true,
        };
        let header = ctx.format();
        assert_eq!(
            header,
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
        );
        assert_eq!(TraceContext::parse(&header), Some(ctx));
        // Unsampled round-trips too.
        let quiet = TraceContext {
            sampled: false,
            ..ctx
        };
        assert_eq!(TraceContext::parse(&quiet.format()), Some(quiet));
        // Fresh and seeded contexts survive the wire.
        for seed in [0u64, 1, 42, u64::MAX] {
            let c = TraceContext::from_seed(seed, true);
            assert_eq!(TraceContext::parse(&c.format()), Some(c));
        }
    }

    #[test]
    fn malformed_headers_are_rejected() {
        let valid = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";
        assert!(TraceContext::parse(valid).is_some());
        for bad in [
            "",
            "garbage",
            // Truncated at every field boundary.
            "00",
            "00-4bf92f3577b34da6a3ce929d0e0e4736",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",
            // Short / long ids.
            "00-4bf92f3577b34da6a3ce929d0e0e473-00f067aa0ba902b7-01",
            "00-4bf92f3577b34da6a3ce929d0e0e47361-00f067aa0ba902b7-01",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b-01",
            // Uppercase hex is invalid per the W3C grammar.
            "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
            // Non-hex digits.
            "00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01",
            "zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
            // All-zero ids are explicitly invalid.
            "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
            // Reserved version.
            "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
            // Version 00 with trailing fields.
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
            // Flags field malformed.
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-1",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0g",
        ] {
            assert_eq!(TraceContext::parse(bad), None, "should reject: {bad:?}");
        }
    }

    #[test]
    fn seeded_ids_are_deterministic_and_distinct() {
        let a = TraceContext::from_seed(7, true);
        let b = TraceContext::from_seed(7, true);
        assert_eq!(a, b, "same seed, same ids");
        let c = TraceContext::from_seed(8, true);
        assert_ne!(a.trace_id, c.trace_id, "distinct seeds, distinct ids");
        assert_ne!(a.trace_id, 0);
        assert_ne!(a.span_id, 0);
    }

    #[test]
    fn child_keeps_trace_id_and_sampling() {
        let root = TraceContext::from_seed(3, true);
        let child = root.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.sampled, root.sampled);
        assert_ne!(child.span_id, root.span_id);
        assert_ne!(child.span_id, 0);
    }

    #[test]
    fn head_sampling_is_deterministic_and_roughly_one_in_n() {
        let n = 64u64;
        let kept: Vec<bool> = (0..4096u64)
            .map(|s| TraceContext::from_seed(s, false).keep_1_in_n(n))
            .collect();
        let again: Vec<bool> = (0..4096u64)
            .map(|s| TraceContext::from_seed(s, false).keep_1_in_n(n))
            .collect();
        assert_eq!(kept, again, "sampling must be replayable");
        let count = kept.iter().filter(|&&k| k).count();
        // 4096/64 = 64 expected; allow generous slack for the mixer.
        assert!((16..=160).contains(&count), "kept {count} of 4096");
        // n <= 1 keeps everything.
        assert!(TraceContext::from_seed(9, false).keep_1_in_n(0));
        assert!(TraceContext::from_seed(9, false).keep_1_in_n(1));
    }

    #[test]
    fn fresh_contexts_are_unsampled_and_unique() {
        let a = TraceContext::fresh();
        let b = TraceContext::fresh();
        assert!(!a.sampled);
        assert_ne!(a.trace_id, b.trace_id);
    }
}
