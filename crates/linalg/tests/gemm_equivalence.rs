//! Property-style equivalence suite for the packed GEMM kernels.
//!
//! The packed/blocked kernels behind `matmul`, `matmul_nt` and
//! `matmul_tn` promise results **bit-identical** (`f64::to_bits`) to the
//! textbook reference loop, for every shape and at every thread count.
//! This suite sweeps deterministic pseudo-random matrices over ragged
//! and prime shapes (1×1 up to sizes that cross the packing and
//! parallel gates), injects NaN/inf and signed-zero patterns that the
//! sparsity-skip logic must honour, and compares against a
//! self-contained naive reference implemented here — not against any
//! code path in the crate under test.

use env2vec_linalg::Matrix;

/// SplitMix64: a tiny deterministic generator so the sweep needs no
/// external crates and reproduces exactly on every run.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in roughly [-4, 4), with occasional exact
    /// zeros (both signs) so the sparsity skip is exercised constantly.
    fn value(&mut self) -> f64 {
        match self.next_u64() % 16 {
            0 => 0.0,
            1 => -0.0,
            _ => (self.next_u64() % 8192) as f64 / 1024.0 - 4.0,
        }
    }

    fn matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| self.value())
    }
}

/// Reference `A·B`, mirroring the documented semantics: ascending-`k`
/// accumulation from 0.0, skipping bitwise-zero left entries against
/// entirely finite right rows.
fn reference_nn(a: &Matrix, b: &Matrix) -> Matrix {
    let row_finite: Vec<bool> = (0..b.rows())
        .map(|r| b.row(r).iter().all(|x| x.is_finite()))
        .collect();
    Matrix::from_fn(a.rows(), b.cols(), |i, j| {
        let mut acc = 0.0;
        for (k, fin) in row_finite.iter().enumerate() {
            let av = a.get(i, k);
            if av == 0.0 && *fin {
                continue;
            }
            acc += av * b.get(k, j);
        }
        acc
    })
}

fn assert_bits_eq(got: &Matrix, want: &Matrix, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape");
    for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{what}: element {i} diverged: {g} ({:#018x}) vs {w} ({:#018x})",
            g.to_bits(),
            w.to_bits()
        );
    }
}

/// Shapes chosen to straddle every gate: tiny (naive), medium (packed,
/// sequential), large (packed, parallel), with ragged `% 4 != 0` /
/// `% 8 != 0` edges and prime dimensions throughout.
fn shape_sweep() -> Vec<(usize, usize, usize)> {
    vec![
        (1, 1, 1),
        (1, 7, 1),
        (3, 2, 5),
        (5, 5, 5),
        (4, 8, 8),
        (7, 13, 11),
        (16, 16, 16),
        (17, 19, 23),
        (31, 7, 9),
        (33, 64, 5),
        (64, 33, 32),
        (64, 64, 64),
        (65, 67, 71),
        (100, 70, 90),
        (128, 31, 127),
    ]
}

#[test]
fn matmul_matches_reference_bitwise_across_shapes() {
    let mut rng = Rng(0x5eed);
    for (m, k, n) in shape_sweep() {
        let a = rng.matrix(m, k);
        let b = rng.matrix(k, n);
        let want = reference_nn(&a, &b);
        let got = a.matmul(&b).unwrap();
        assert_bits_eq(&got, &want, &format!("nn {m}x{k}x{n}"));
    }
}

#[test]
fn matmul_nt_matches_explicit_transpose_bitwise() {
    let mut rng = Rng(0xabcd);
    for (m, k, n) in shape_sweep() {
        let a = rng.matrix(m, k);
        let b = rng.matrix(n, k);
        let want = reference_nn(&a, &b.transpose());
        let got = a.matmul_nt(&b).unwrap();
        assert_bits_eq(&got, &want, &format!("nt {m}x{k}x{n}"));
    }
}

#[test]
fn matmul_tn_matches_explicit_transpose_bitwise() {
    let mut rng = Rng(0x7777);
    for (m, k, n) in shape_sweep() {
        let a = rng.matrix(k, m);
        let b = rng.matrix(k, n);
        let want = reference_nn(&a.transpose(), &b);
        let got = a.matmul_tn(&b).unwrap();
        assert_bits_eq(&got, &want, &format!("tn {m}x{k}x{n}"));
    }
}

/// Plants NaN and inf entries in scattered positions so some right-hand
/// rows/columns are non-finite: the zero-skip must not run against them
/// (IEEE-754: 0·NaN = 0·inf = NaN).
#[test]
fn nonfinite_columns_survive_all_layouts_bitwise() {
    let mut rng = Rng(0xfeed);
    for (m, k, n) in [(7, 13, 11), (64, 33, 32), (65, 67, 71)] {
        let mut a = rng.matrix(m, k);
        let mut b = rng.matrix(k, n);
        // A few exact zeros on the left, guaranteed.
        for idx in [0, 3, 5] {
            a.set(idx % m, (idx * 7) % k, 0.0);
        }
        for (r, c, v) in [
            (0, 0, f64::NAN),
            (1, 2, f64::INFINITY),
            (2, 1, f64::NEG_INFINITY),
        ] {
            b.set(r % k, c % n, v);
        }
        let want = reference_nn(&a, &b);
        let got = a.matmul(&b).unwrap();
        assert_bits_eq(&got, &want, &format!("nn-nonfinite {m}x{k}x{n}"));
        assert!(
            got.as_slice().iter().any(|x| !x.is_finite()),
            "expected non-finite values to propagate"
        );

        let bt = b.transpose();
        let got_nt = a.matmul_nt(&bt).unwrap();
        assert_bits_eq(&got_nt, &want, &format!("nt-nonfinite {m}x{k}x{n}"));

        let at = a.transpose();
        let got_tn = at.matmul_tn(&b).unwrap();
        assert_bits_eq(&got_tn, &want, &format!("tn-nonfinite {m}x{k}x{n}"));
    }
}

/// A row of `-0.0` left entries against a finite right-hand side: the
/// skip yields `+0.0` outputs where an unskipped multiply would yield
/// `-0.0` — the packed kernels must reproduce the skipped behaviour.
#[test]
fn signed_zero_rows_match_reference_bitwise() {
    let m = 9;
    let k = 17;
    let n = 13;
    let mut rng = Rng(0x2020);
    let mut a = rng.matrix(m, k);
    for j in 0..k {
        a.set(4, j, -0.0);
    }
    let b = rng.matrix(k, n);
    let want = reference_nn(&a, &b);
    let got = a.matmul(&b).unwrap();
    assert_bits_eq(&got, &want, "signed-zero nn");
    for j in 0..n {
        assert_eq!(got.get(4, j).to_bits(), 0.0_f64.to_bits());
    }
}

#[test]
fn all_layouts_are_bit_identical_across_thread_counts() {
    let mut rng = Rng(0xbeef);
    // Big enough to cross the parallel gate, ragged on both axes.
    let (m, k, n) = (130, 67, 90);
    let a = rng.matrix(m, k);
    let b_nn = rng.matrix(k, n);
    let b_nt = rng.matrix(n, k);
    let a_tn = rng.matrix(k, m);

    let seq = env2vec_par::with_thread_limit(1, || {
        (
            a.matmul(&b_nn).unwrap(),
            a.matmul_nt(&b_nt).unwrap(),
            a_tn.matmul_tn(&b_nn).unwrap(),
        )
    });
    for threads in [2, 4] {
        let par = env2vec_par::with_thread_limit(threads, || {
            (
                a.matmul(&b_nn).unwrap(),
                a.matmul_nt(&b_nt).unwrap(),
                a_tn.matmul_tn(&b_nn).unwrap(),
            )
        });
        assert_bits_eq(&par.0, &seq.0, &format!("nn {threads} threads"));
        assert_bits_eq(&par.1, &seq.1, &format!("nt {threads} threads"));
        assert_bits_eq(&par.2, &seq.2, &format!("tn {threads} threads"));
    }
}

#[test]
fn buffer_reusing_variants_match_and_recycle() {
    let mut rng = Rng(0x1234);
    let a = rng.matrix(33, 21);
    let b = rng.matrix(21, 18);
    let plain = a.matmul(&b).unwrap();
    // A dirty, differently-sized buffer must not leak into the result.
    let dirty = vec![f64::NAN; 7];
    let reused = a.matmul_with(&b, dirty).unwrap();
    assert_bits_eq(&reused, &plain, "matmul_with dirty buffer");

    let nt_plain = a.matmul_nt(&a).unwrap();
    let nt_reused = a.matmul_nt_with(&a, plain.clone().into_vec()).unwrap();
    assert_bits_eq(&nt_reused, &nt_plain, "matmul_nt_with");

    let tn_plain = a.matmul_tn(&a).unwrap();
    let tn_reused = a.matmul_tn_with(&a, vec![1.0; 2048]).unwrap();
    assert_bits_eq(&tn_reused, &tn_plain, "matmul_tn_with");
}

#[test]
fn transposed_variants_reject_mismatched_shapes() {
    let a = Matrix::zeros(3, 4);
    let b = Matrix::zeros(5, 6);
    assert!(a.matmul_nt(&b).is_err(), "nt needs equal col counts");
    assert!(a.matmul_tn(&b).is_err(), "tn needs equal row counts");
    assert!(a.matmul_nt(&Matrix::zeros(9, 4)).is_ok());
    assert!(a.matmul_tn(&Matrix::zeros(3, 9)).is_ok());
}

/// Blocked transpose equals the naive definition on ragged shapes.
#[test]
fn blocked_transpose_matches_naive_on_ragged_shapes() {
    let mut rng = Rng(0x9999);
    for (r, c) in [(1, 1), (1, 37), (33, 1), (31, 33), (32, 32), (67, 129)] {
        let m = rng.matrix(r, c);
        let t = m.transpose();
        assert_eq!(t.shape(), (c, r));
        for i in 0..r {
            for j in 0..c {
                assert_eq!(
                    m.get(i, j).to_bits(),
                    t.get(j, i).to_bits(),
                    "({r}x{c}) at ({i},{j})"
                );
            }
        }
        assert_eq!(t.transpose(), m, "double transpose round-trips");
    }
}
