//! Property-based tests for the linear-algebra substrate.

use env2vec_linalg::cholesky::Cholesky;
use env2vec_linalg::eigen::symmetric_eigen;
use env2vec_linalg::pca::Pca;
use env2vec_linalg::stats::{empirical_cdf, quantile, Welford};
use env2vec_linalg::{vector, Matrix};
use proptest::prelude::*;

/// Strategy: a matrix with entries in [-10, 10] and shape up to 6x6.
fn small_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..=6, 1usize..=6).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f64..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("sized to shape"))
    })
}

/// Strategy: a square matrix with shape up to 5x5.
fn square_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..=5).prop_flat_map(|n| {
        proptest::collection::vec(-5.0f64..5.0, n * n)
            .prop_map(move |data| Matrix::from_vec(n, n, data).expect("sized to shape"))
    })
}

fn approx_eq(a: &Matrix, b: &Matrix, tol: f64) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() < tol)
}

proptest! {
    #[test]
    fn transpose_is_involution(m in small_matrix()) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_left_right(m in small_matrix()) {
        let left = Matrix::identity(m.rows()).matmul(&m).unwrap();
        let right = m.matmul(&Matrix::identity(m.cols())).unwrap();
        prop_assert!(approx_eq(&left, &m, 1e-12));
        prop_assert!(approx_eq(&right, &m, 1e-12));
    }

    #[test]
    fn matmul_transpose_identity(a in small_matrix(), seed in 0u64..1000) {
        // (A B)ᵀ = Bᵀ Aᵀ for a compatible B derived deterministically.
        let cols = ((seed % 4) + 1) as usize;
        let b = Matrix::from_fn(a.cols(), cols, |i, j| ((i * 7 + j * 3 + seed as usize) % 11) as f64 - 5.0);
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(approx_eq(&lhs, &rhs, 1e-9));
    }

    #[test]
    fn add_commutes_and_sub_inverts(a in small_matrix()) {
        let b = a.scale(0.5);
        prop_assert!(approx_eq(&a.add(&b).unwrap(), &b.add(&a).unwrap(), 1e-12));
        prop_assert!(approx_eq(&a.add(&b).unwrap().sub(&b).unwrap(), &a, 1e-9));
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal(m in small_matrix()) {
        let g = m.gram();
        for i in 0..g.rows() {
            // Diagonal of a Gram matrix is a sum of squares.
            prop_assert!(g.get(i, i) >= -1e-12);
            for j in 0..g.cols() {
                prop_assert!((g.get(i, j) - g.get(j, i)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn cholesky_reconstructs_spd(m in square_matrix()) {
        // M Mᵀ + (n+1) I is comfortably SPD.
        let n = m.rows();
        let spd = {
            let mut s = m.matmul(&m.transpose()).unwrap();
            for i in 0..n {
                let v = s.get(i, i) + (n as f64 + 1.0);
                s.set(i, i, v);
            }
            s
        };
        let ch = Cholesky::decompose(&spd).unwrap();
        let rec = ch.factor().matmul(&ch.factor().transpose()).unwrap();
        prop_assert!(approx_eq(&rec, &spd, 1e-6));
    }

    #[test]
    fn cholesky_solve_satisfies_system(m in square_matrix(), shift in 1.0f64..10.0) {
        let n = m.rows();
        let mut spd = m.matmul(&m.transpose()).unwrap();
        for i in 0..n {
            let v = spd.get(i, i) + shift * n as f64;
            spd.set(i, i, v);
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64 - 1.0) * 0.7).collect();
        let x = Cholesky::decompose(&spd).unwrap().solve(&b).unwrap();
        let ax = spd.matvec(&x).unwrap();
        for (got, want) in ax.iter().zip(&b) {
            prop_assert!((got - want).abs() < 1e-6);
        }
    }

    #[test]
    fn eigen_orthonormal_and_reconstructs(m in square_matrix()) {
        let sym = Matrix::from_fn(m.rows(), m.cols(), |i, j| 0.5 * (m.get(i, j) + m.get(j, i)));
        let e = symmetric_eigen(&sym).unwrap();
        let n = sym.rows();
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        prop_assert!(approx_eq(&vtv, &Matrix::identity(n), 1e-7));
        let lam = Matrix::from_fn(n, n, |i, j| if i == j { e.values[i] } else { 0.0 });
        let rec = e.vectors.matmul(&lam).unwrap().matmul(&e.vectors.transpose()).unwrap();
        prop_assert!(approx_eq(&rec, &sym, 1e-6));
        // Eigenvalues sorted descending.
        prop_assert!(e.values.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn pca_projection_dimensions_and_variance_order(
        rows in 3usize..12,
        cols in 2usize..6,
        seed in 0u64..500,
    ) {
        let data = Matrix::from_fn(rows, cols, |i, j| {
            let base = (i * 31 + j * 17 + seed as usize) % 23;
            base as f64 * 0.5 + (i as f64) * (j as f64 + 1.0) * 0.1
        });
        let k = cols.min(2);
        let pca = Pca::fit(&data, k).unwrap();
        let proj = pca.transform(&data).unwrap();
        prop_assert_eq!(proj.shape(), (rows, k));
        // Explained variance must be descending and non-negative (within fp noise).
        let ev = pca.explained_variance();
        prop_assert!(ev.windows(2).all(|w| w[0] >= w[1] - 1e-9));
        prop_assert!(ev.iter().all(|&v| v > -1e-9));
    }

    #[test]
    fn welford_matches_two_pass(xs in proptest::collection::vec(-100.0f64..100.0, 2..50)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        prop_assert!((w.mean() - mean).abs() < 1e-8);
        prop_assert!((w.variance() - var).abs() < 1e-6);
    }

    #[test]
    fn quantile_monotone_in_q(xs in proptest::collection::vec(-50.0f64..50.0, 1..40)) {
        let q25 = quantile(&xs, 0.25).unwrap();
        let q50 = quantile(&xs, 0.50).unwrap();
        let q75 = quantile(&xs, 0.75).unwrap();
        prop_assert!(q25 <= q50 && q50 <= q75);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(min <= q25 && q75 <= max);
    }

    #[test]
    fn ecdf_is_valid_distribution(xs in proptest::collection::vec(-50.0f64..50.0, 1..40)) {
        let (vals, fracs) = empirical_cdf(&xs).unwrap();
        prop_assert!(vals.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(fracs.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!((fracs.last().unwrap() - 1.0).abs() < 1e-12);
        prop_assert!(fracs[0] > 0.0);
    }

    #[test]
    fn vector_dot_cauchy_schwarz(
        a in proptest::collection::vec(-10.0f64..10.0, 1..20),
        seed in 0u64..100,
    ) {
        let b: Vec<f64> = a.iter().enumerate().map(|(i, _)| ((i as u64 + seed) % 7) as f64 - 3.0).collect();
        let d = vector::dot(&a, &b).unwrap().abs();
        let bound = vector::norm(&a) * vector::norm(&b);
        prop_assert!(d <= bound + 1e-9);
    }
}
