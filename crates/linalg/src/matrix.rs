//! Row-major dense `f64` matrix.
//!
//! [`Matrix`] is the workhorse value type of the workspace: the autodiff
//! engine stores activations and gradients in it, the ridge baseline builds
//! normal equations with it, and PCA projects through it. Matrix products
//! route through the packed, register-blocked kernels in [`crate::gemm`]
//! (with a naive fallback for tiny shapes); both paths produce
//! bit-identical results at every thread count.

// Indexed loops mirror the textbook formulations of these numeric
// kernels; iterator rewrites would obscure them.
#![allow(clippy::needless_range_loop)]

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::gemm;

/// Tile edge of the blocked [`Matrix::transpose`]: 32×32 doubles is 8 KiB,
/// small enough for both the source rows and destination columns of a
/// tile to stay L1-resident.
const TRANSPOSE_BLOCK: usize = 32;

/// Minimum `rows * cols` before `matvec` parallelises, mirroring
/// [`gemm::PAR_MIN_ELEMS`].
const MATVEC_PAR_ELEMS: usize = 1 << 17;

/// Rows per `matvec` job (each row is a single dot product).
const MATVEC_ROW_BLOCK: usize = 256;

/// Minimum row count before `col_means` switches to chunked
/// accumulation. Unlike the matmul gate this is a *size-only* gate — the
/// chunked path reassociates the column sums, so it must be taken
/// identically at every thread count (including 1) to keep results
/// thread-count independent.
const COL_STATS_PAR_ROWS: usize = 8192;

/// Rows per `col_means` chunk; boundaries are fixed by
/// [`env2vec_par::chunk_ranges`] and the fold runs in ascending chunk
/// order, so the reassociation is deterministic.
const COL_STATS_CHUNK: usize = 2048;

/// A dense matrix of `f64` stored in row-major order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix of the given shape filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns an error when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(Error::ShapeMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, f: impl FnMut(usize, usize) -> f64) -> Self {
        Matrix::from_fn_with(rows, cols, Vec::new(), f)
    }

    /// [`Matrix::from_fn`] writing into `storage` (cleared and refilled),
    /// so callers with a buffer pool can avoid the allocation.
    pub fn from_fn_with(
        rows: usize,
        cols: usize,
        mut storage: Vec<f64>,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> Self {
        storage.clear();
        storage.reserve(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                storage.push(f(i, j));
            }
        }
        Matrix {
            rows,
            cols,
            data: storage,
        }
    }

    /// Creates a single-row matrix from a slice.
    pub fn row_vector(v: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: v.len(),
            data: v.to_vec(),
        }
    }

    /// Creates a single-column matrix from a slice.
    pub fn col_vector(v: &[f64]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// Returns an error when the rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(Error::ShapeMismatch {
                    op: "from_rows",
                    lhs: (i, cols),
                    rhs: (i, r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as a `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major data vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Clone of `self` written into `storage` (cleared and refilled), so
    /// callers with a buffer pool can avoid the copy's allocation.
    pub fn clone_with(&self, mut storage: Vec<f64>) -> Matrix {
        storage.clear();
        storage.extend_from_slice(&self.data);
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: storage,
        }
    }

    /// Element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        self.data[i * self.cols + j]
    }

    /// Sets the element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        self.data[i * self.cols + j] = v;
    }

    /// Borrow of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    ///
    /// Allocates a fresh vector; hot loops that only need to *read* a
    /// column should use [`Matrix::col_iter`] instead.
    ///
    /// # Panics
    ///
    /// Panics when `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        self.col_iter(j).collect()
    }

    /// Allocation-free strided iterator over column `j`, top to bottom.
    ///
    /// # Panics
    ///
    /// Panics when `j >= cols`.
    pub fn col_iter(&self, j: usize) -> impl ExactSizeIterator<Item = f64> + '_ {
        assert!(j < self.cols, "column index out of bounds");
        self.data[j..].iter().step_by(self.cols.max(1)).copied()
    }

    /// The transpose, copied tile-by-tile ([`TRANSPOSE_BLOCK`]² blocks)
    /// so both the source and the destination of each tile stay
    /// cache-resident instead of one side streaming with a full-row
    /// stride.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        let (r, c) = (self.rows, self.cols);
        for i0 in (0..r).step_by(TRANSPOSE_BLOCK) {
            let i1 = (i0 + TRANSPOSE_BLOCK).min(r);
            for j0 in (0..c).step_by(TRANSPOSE_BLOCK) {
                let j1 = (j0 + TRANSPOSE_BLOCK).min(c);
                for i in i0..i1 {
                    for j in j0..j1 {
                        out.data[j * r + i] = self.data[i * c + j];
                    }
                }
            }
        }
        out
    }

    /// Matrix product `self * rhs` through the packed, register-blocked
    /// kernels of [`crate::gemm`] (naive `ikj` fallback for tiny
    /// shapes).
    ///
    /// Large products fan out over parallel row blocks; every output
    /// element is produced by the exact same ascending-`k` accumulation
    /// chain on every path, so the result is bit-identical for any
    /// thread count and for either kernel.
    ///
    /// Returns an error when the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        self.matmul_with(rhs, Vec::new())
    }

    /// [`Matrix::matmul`] writing into `storage` (cleared and resized),
    /// so callers with a buffer pool can avoid the output allocation.
    pub fn matmul_with(&self, rhs: &Matrix, storage: Vec<f64>) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(Error::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Self::zeros_with(self.rows, rhs.cols, storage);
        gemm::gemm_nn(
            &self.data,
            self.rows,
            self.cols,
            &rhs.data,
            rhs.cols,
            &mut out.data,
        );
        Ok(out)
    }

    /// Matrix product `self * rhsᵀ` without materialising the transpose;
    /// bit-identical to `self.matmul(&rhs.transpose())`.
    ///
    /// Returns an error when `self.cols != rhs.cols`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Result<Matrix> {
        self.matmul_nt_with(rhs, Vec::new())
    }

    /// [`Matrix::matmul_nt`] writing into `storage` (cleared and
    /// resized).
    pub fn matmul_nt_with(&self, rhs: &Matrix, storage: Vec<f64>) -> Result<Matrix> {
        if self.cols != rhs.cols {
            return Err(Error::ShapeMismatch {
                op: "matmul_nt",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Self::zeros_with(self.rows, rhs.rows, storage);
        gemm::gemm_nt(
            &self.data,
            self.rows,
            self.cols,
            &rhs.data,
            rhs.rows,
            &mut out.data,
        );
        Ok(out)
    }

    /// Matrix product `selfᵀ * rhs` without materialising the transpose;
    /// bit-identical to `self.transpose().matmul(&rhs)`.
    ///
    /// Returns an error when `self.rows != rhs.rows`.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Result<Matrix> {
        self.matmul_tn_with(rhs, Vec::new())
    }

    /// [`Matrix::matmul_tn`] writing into `storage` (cleared and
    /// resized).
    pub fn matmul_tn_with(&self, rhs: &Matrix, storage: Vec<f64>) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(Error::ShapeMismatch {
                op: "matmul_tn",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Self::zeros_with(self.cols, rhs.cols, storage);
        gemm::gemm_tn(
            &self.data,
            self.rows,
            self.cols,
            &rhs.data,
            rhs.cols,
            &mut out.data,
        );
        Ok(out)
    }

    /// Builds a zeroed `rows×cols` matrix on top of `storage`, reusing
    /// its heap allocation when the capacity suffices.
    /// All-zero matrix written into `storage` (cleared and resized), the
    /// buffer-pooling counterpart of [`Matrix::zeros`].
    pub fn zeros_with(rows: usize, cols: usize, mut storage: Vec<f64>) -> Matrix {
        storage.clear();
        storage.resize(rows * cols, 0.0);
        Matrix {
            rows,
            cols,
            data: storage,
        }
    }

    /// Matrix-vector product `self * v`.
    ///
    /// Parallelised over row blocks above [`MATVEC_PAR_ELEMS`]; each
    /// output element is a single dot product computed identically in
    /// both paths.
    ///
    /// Returns an error when `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(Error::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        let dot = |i: usize| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum();
        if self.rows.saturating_mul(self.cols) >= MATVEC_PAR_ELEMS {
            env2vec_par::par_for_chunks(&mut out, MATVEC_ROW_BLOCK, |bi, block| {
                for (r, o) in block.iter_mut().enumerate() {
                    *o = dot(bi * MATVEC_ROW_BLOCK + r);
                }
            });
        } else {
            for (i, o) in out.iter_mut().enumerate() {
                *o = dot(i);
            }
        }
        Ok(out)
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// Returns an error on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// [`Matrix::add`] writing into `storage` (cleared and refilled).
    pub fn add_with(&self, rhs: &Matrix, storage: Vec<f64>) -> Result<Matrix> {
        self.zip_with_storage(rhs, "add", storage, |a, b| a + b)
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// Returns an error on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// [`Matrix::sub`] writing into `storage` (cleared and refilled).
    pub fn sub_with(&self, rhs: &Matrix, storage: Vec<f64>) -> Result<Matrix> {
        self.zip_with_storage(rhs, "sub", storage, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product `self ⊙ rhs`.
    ///
    /// Returns an error on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    /// [`Matrix::hadamard`] writing into `storage` (cleared and
    /// refilled).
    pub fn hadamard_with(&self, rhs: &Matrix, storage: Vec<f64>) -> Result<Matrix> {
        self.zip_with_storage(rhs, "hadamard", storage, |a, b| a * b)
    }

    fn zip_with_storage(
        &self,
        rhs: &Matrix,
        op: &'static str,
        mut storage: Vec<f64>,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(Error::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        storage.clear();
        storage.extend(self.data.iter().zip(&rhs.data).map(|(&a, &b)| f(a, b)));
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: storage,
        })
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(Error::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// In-place element-wise addition of `rhs` scaled by `alpha`
    /// (`self += alpha * rhs`, the `axpy` idiom).
    ///
    /// Returns an error on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, rhs: &Matrix) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(Error::ShapeMismatch {
                op: "axpy",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Scalar multiple `alpha * self`.
    pub fn scale(&self, alpha: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| alpha * x).collect(),
        }
    }

    /// [`Matrix::scale`] writing into `storage` (cleared and refilled).
    pub fn scale_with(&self, alpha: f64, storage: Vec<f64>) -> Matrix {
        self.map_with(storage, |x| alpha * x)
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// [`Matrix::map`] writing into `storage` (cleared and refilled).
    pub fn map_with(&self, mut storage: Vec<f64>, f: impl Fn(f64) -> f64) -> Matrix {
        storage.clear();
        storage.extend(self.data.iter().map(|&x| f(x)));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: storage,
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element, or `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// Whether all elements are finite (no NaN or infinity).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// A new matrix consisting of the selected rows, in order.
    ///
    /// Returns an error when any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Matrix> {
        self.select_rows_with(indices, Vec::new())
    }

    /// [`Matrix::select_rows`] writing into `storage` (cleared and
    /// refilled), so callers with a buffer pool can avoid the allocation.
    ///
    /// Returns an error when any index is out of bounds.
    pub fn select_rows_with(&self, indices: &[usize], mut storage: Vec<f64>) -> Result<Matrix> {
        storage.clear();
        storage.reserve(indices.len() * self.cols);
        for &i in indices {
            if i >= self.rows {
                return Err(Error::IndexOutOfBounds {
                    index: i,
                    len: self.rows,
                });
            }
            storage.extend_from_slice(self.row(i));
        }
        Ok(Matrix {
            rows: indices.len(),
            cols: self.cols,
            data: storage,
        })
    }

    /// Stacks `self` on top of `below`.
    ///
    /// Returns an error when column counts differ.
    pub fn vstack(&self, below: &Matrix) -> Result<Matrix> {
        if self.cols != below.cols {
            return Err(Error::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: below.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&below.data);
        Ok(Matrix {
            rows: self.rows + below.rows,
            cols: self.cols,
            data,
        })
    }

    /// Concatenates `self` with `right` column-wise.
    ///
    /// Returns an error when row counts differ.
    pub fn hstack(&self, right: &Matrix) -> Result<Matrix> {
        if self.rows != right.rows {
            return Err(Error::ShapeMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: right.shape(),
            });
        }
        let cols = self.cols + right.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
            data.extend_from_slice(right.row(i));
        }
        Ok(Matrix {
            rows: self.rows,
            cols,
            data,
        })
    }

    /// Per-column means, or an empty vector for a matrix with no rows.
    ///
    /// Tall matrices (≥ [`COL_STATS_PAR_ROWS`] rows) accumulate per-chunk
    /// partial sums folded in fixed chunk order. The gate is on *size
    /// only*: the chunked path reassociates the sum, so taking it at
    /// every thread count (including 1) is what keeps the result
    /// thread-count independent.
    pub fn col_means(&self) -> Vec<f64> {
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        let mut means = if self.rows >= COL_STATS_PAR_ROWS {
            env2vec_par::par_map_reduce(
                self.rows,
                COL_STATS_CHUNK,
                |range| {
                    let mut partial = vec![0.0; self.cols];
                    for i in range {
                        for (m, &x) in partial.iter_mut().zip(self.row(i)) {
                            *m += x;
                        }
                    }
                    partial
                },
                |mut acc, partial| {
                    for (a, p) in acc.iter_mut().zip(&partial) {
                        *a += p;
                    }
                    acc
                },
            )
            .unwrap_or_else(|| vec![0.0; self.cols])
        } else {
            let mut sums = vec![0.0; self.cols];
            for i in 0..self.rows {
                for (m, &x) in sums.iter_mut().zip(self.row(i)) {
                    *m += x;
                }
            }
            sums
        };
        for m in &mut means {
            *m /= self.rows as f64;
        }
        means
    }

    /// The Gram matrix `selfᵀ * self`, exploiting symmetry.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut out = Matrix::zeros(n, n);
        for row in 0..self.rows {
            let r = self.row(row);
            let row_finite = r.iter().all(|x| x.is_finite());
            for i in 0..n {
                let ri = r[i];
                // envlint: allow(float-cmp) — exact sparsity skip: only a bitwise
                // zero contributes nothing, and only within a finite row
                // (IEEE-754: 0·NaN = 0·inf = NaN).
                if ri == 0.0 && row_finite {
                    continue;
                }
                for j in i..n {
                    out.data[i * n + j] += ri * r[j];
                }
            }
        }
        for i in 0..n {
            for j in 0..i {
                out.data[i * n + j] = out.data[j * n + i];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m23() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let m = m23();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
    }

    #[test]
    fn from_rows_empty_is_0x0() {
        let m = Matrix::from_rows(&[]).unwrap();
        assert_eq!(m.shape(), (0, 0));
        assert!(m.is_empty());
    }

    #[test]
    fn identity_matmul_is_noop() {
        let m = m23();
        let left = Matrix::identity(2).matmul(&m).unwrap();
        let right = m.matmul(&Matrix::identity(3)).unwrap();
        assert_eq!(left, m);
        assert_eq!(right, m);
    }

    #[test]
    fn matmul_known_product() {
        let a = m23();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = m23();
        assert!(a.matmul(&m23()).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let m = m23();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let m = m23();
        let v = [1.0, 0.5, -1.0];
        let got = m.matvec(&v).unwrap();
        let expect = m.matmul(&Matrix::col_vector(&v)).unwrap();
        assert_eq!(got, expect.into_vec());
    }

    #[test]
    fn elementwise_ops() {
        let a = m23();
        let b = a.scale(2.0);
        assert_eq!(a.add(&b).unwrap().get(0, 0), 3.0);
        assert_eq!(b.sub(&a).unwrap(), a);
        assert_eq!(a.hadamard(&a).unwrap().get(1, 2), 36.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::zeros(2, 3);
        a.axpy(0.5, &m23()).unwrap();
        assert_eq!(a.get(1, 1), 2.5);
        assert!(a.axpy(1.0, &Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn stacking() {
        let a = m23();
        let v = a.vstack(&a).unwrap();
        assert_eq!(v.shape(), (4, 3));
        assert_eq!(v.row(3), a.row(1));
        let h = a.hstack(&a).unwrap();
        assert_eq!(h.shape(), (2, 6));
        assert_eq!(h.get(0, 4), 2.0);
        assert!(a.vstack(&Matrix::zeros(1, 2)).is_err());
        assert!(a.hstack(&Matrix::zeros(3, 1)).is_err());
    }

    #[test]
    fn select_rows_orders_and_bounds() {
        let a = m23();
        let s = a.select_rows(&[1, 0, 1]).unwrap();
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(0), a.row(1));
        assert!(a.select_rows(&[2]).is_err());
    }

    #[test]
    fn reductions() {
        let a = m23();
        assert_eq!(a.sum(), 21.0);
        assert!((a.frobenius_norm() - 91.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(a.max_abs(), 6.0);
        assert_eq!(a.col_means(), vec![2.5, 3.5, 4.5]);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = m23();
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        for (x, y) in g.as_slice().iter().zip(explicit.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_times_nonfinite_propagates_through_matmul() {
        // Regression: the sparsity skip used to turn 0·NaN and 0·inf
        // into 0.0, hiding non-finite values from downstream checks.
        let zero = Matrix::from_vec(1, 1, vec![0.0]).unwrap();
        let nan = Matrix::from_vec(1, 1, vec![f64::NAN]).unwrap();
        let inf = Matrix::from_vec(1, 1, vec![f64::INFINITY]).unwrap();
        assert!(zero.matmul(&nan).unwrap().get(0, 0).is_nan());
        assert!(zero.matmul(&inf).unwrap().get(0, 0).is_nan());
        // Mixed case: a finite rhs row may still be skipped, a
        // non-finite one must not be.
        let a = Matrix::from_vec(1, 2, vec![0.0, 1.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![f64::NAN, 2.0, 3.0, 4.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert!(c.get(0, 0).is_nan(), "0·NaN lost: {}", c.get(0, 0));
        // The finite entries of the non-finite row still multiply
        // normally: 0·2 + 1·4 = 4.
        assert_eq!(c.get(0, 1), 4.0);
        let finite_b = Matrix::from_vec(2, 2, vec![9.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(a.matmul(&finite_b).unwrap().as_slice(), &[3.0, 4.0]);
    }

    #[test]
    fn zero_times_nonfinite_propagates_through_gram() {
        let m = Matrix::from_vec(1, 2, vec![0.0, f64::INFINITY]).unwrap();
        let g = m.gram();
        // Column 0 is all zeros but shares a row with inf: 0·0 = 0 is
        // fine, 0·inf must be NaN.
        assert_eq!(g.get(0, 0), 0.0);
        assert!(g.get(0, 1).is_nan());
        assert!(g.get(1, 0).is_nan());
        assert!(g.get(1, 1).is_infinite());
    }

    #[test]
    fn parallel_matmul_is_bit_identical_to_sequential() {
        // 64·64·64 = 262144 flops crosses MATMUL_PAR_FLOPS.
        let a = Matrix::from_fn(64, 64, |i, j| ((i * 37 + j * 17) % 101) as f64 / 7.0 - 5.0);
        let b = Matrix::from_fn(64, 64, |i, j| ((i * 13 + j * 29) % 97) as f64 / 3.0 - 11.0);
        let sequential = env2vec_par::with_thread_limit(1, || a.matmul(&b).unwrap());
        for threads in [2, 4] {
            let parallel = env2vec_par::with_thread_limit(threads, || a.matmul(&b).unwrap());
            for (s, p) in sequential.as_slice().iter().zip(parallel.as_slice()) {
                assert_eq!(s.to_bits(), p.to_bits(), "{threads} threads");
            }
        }
    }

    #[test]
    fn parallel_matvec_is_bit_identical_to_sequential() {
        // 512·512 = 262144 elements crosses MATVEC_PAR_ELEMS.
        let m = Matrix::from_fn(512, 512, |i, j| ((i * 31 + j * 7) % 89) as f64 / 9.0 - 4.0);
        let v: Vec<f64> = (0..512)
            .map(|i| ((i * 11) % 53) as f64 / 5.0 - 5.0)
            .collect();
        let sequential = env2vec_par::with_thread_limit(1, || m.matvec(&v).unwrap());
        let parallel = env2vec_par::with_thread_limit(4, || m.matvec(&v).unwrap());
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.to_bits(), p.to_bits());
        }
    }

    #[test]
    fn chunked_col_means_is_thread_count_independent() {
        // 8192 rows crosses COL_STATS_PAR_ROWS, so the chunked
        // (reassociated) path runs at every thread count.
        let m = Matrix::from_fn(8192, 3, |i, j| ((i * 7 + j) % 1009) as f64 * 1e-3 - 0.5);
        let one = env2vec_par::with_thread_limit(1, || m.col_means());
        let four = env2vec_par::with_thread_limit(4, || m.col_means());
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // And the chunked sum is still the right mean.
        let naive: Vec<f64> = (0..3)
            .map(|j| m.col(j).iter().sum::<f64>() / 8192.0)
            .collect();
        for (a, b) in one.iter().zip(&naive) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn finite_detection() {
        let mut a = m23();
        assert!(a.is_finite());
        a.set(0, 0, f64::NAN);
        assert!(!a.is_finite());
    }

    #[test]
    fn map_and_map_inplace_agree() {
        let a = m23();
        let mut b = a.clone();
        b.map_inplace(|x| x * x);
        assert_eq!(a.map(|x| x * x), b);
    }
}
