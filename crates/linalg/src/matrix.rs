//! Row-major dense `f64` matrix.
//!
//! [`Matrix`] is the workhorse value type of the workspace: the autodiff
//! engine stores activations and gradients in it, the ridge baseline builds
//! normal equations with it, and PCA projects through it. The implementation
//! favours clarity and cache-friendly loop orders (`ikj` matmul) over SIMD
//! tricks; at the model sizes of the paper (hidden layers of at most 1024
//! units) this is more than fast enough.

// Indexed loops mirror the textbook formulations of these numeric
// kernels; iterator rewrites would obscure them.
#![allow(clippy::needless_range_loop)]

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// A dense matrix of `f64` stored in row-major order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix of the given shape filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns an error when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(Error::ShapeMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a single-row matrix from a slice.
    pub fn row_vector(v: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: v.len(),
            data: v.to_vec(),
        }
    }

    /// Creates a single-column matrix from a slice.
    pub fn col_vector(v: &[f64]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// Returns an error when the rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(Error::ShapeMismatch {
                    op: "from_rows",
                    lhs: (i, cols),
                    rhs: (i, r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as a `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major data vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        self.data[i * self.cols + j]
    }

    /// Sets the element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        self.data[i * self.cols + j] = v;
    }

    /// Borrow of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    ///
    /// # Panics
    ///
    /// Panics when `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index out of bounds");
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Matrix product `self * rhs` using a cache-friendly `ikj` loop order.
    ///
    /// Returns an error when the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(Error::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in a_row.iter().enumerate() {
                // envlint: allow(float-cmp) — exact sparsity skip: only a bitwise
                // zero contributes nothing to the product row.
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// Returns an error when `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(Error::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = self.row(i);
            out[i] = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        Ok(out)
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// Returns an error on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// Returns an error on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product `self ⊙ rhs`.
    ///
    /// Returns an error on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(Error::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// In-place element-wise addition of `rhs` scaled by `alpha`
    /// (`self += alpha * rhs`, the `axpy` idiom).
    ///
    /// Returns an error on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, rhs: &Matrix) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(Error::ShapeMismatch {
                op: "axpy",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Scalar multiple `alpha * self`.
    pub fn scale(&self, alpha: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| alpha * x).collect(),
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element, or `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// Whether all elements are finite (no NaN or infinity).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// A new matrix consisting of the selected rows, in order.
    ///
    /// Returns an error when any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Matrix> {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            if i >= self.rows {
                return Err(Error::IndexOutOfBounds {
                    index: i,
                    len: self.rows,
                });
            }
            data.extend_from_slice(self.row(i));
        }
        Ok(Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        })
    }

    /// Stacks `self` on top of `below`.
    ///
    /// Returns an error when column counts differ.
    pub fn vstack(&self, below: &Matrix) -> Result<Matrix> {
        if self.cols != below.cols {
            return Err(Error::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: below.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&below.data);
        Ok(Matrix {
            rows: self.rows + below.rows,
            cols: self.cols,
            data,
        })
    }

    /// Concatenates `self` with `right` column-wise.
    ///
    /// Returns an error when row counts differ.
    pub fn hstack(&self, right: &Matrix) -> Result<Matrix> {
        if self.rows != right.rows {
            return Err(Error::ShapeMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: right.shape(),
            });
        }
        let cols = self.cols + right.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
            data.extend_from_slice(right.row(i));
        }
        Ok(Matrix {
            rows: self.rows,
            cols,
            data,
        })
    }

    /// Per-column means, or an empty vector for a matrix with no rows.
    pub fn col_means(&self) -> Vec<f64> {
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        let mut means = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (m, &x) in means.iter_mut().zip(self.row(i)) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= self.rows as f64;
        }
        means
    }

    /// The Gram matrix `selfᵀ * self`, exploiting symmetry.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut out = Matrix::zeros(n, n);
        for row in 0..self.rows {
            let r = self.row(row);
            for i in 0..n {
                let ri = r[i];
                // envlint: allow(float-cmp) — exact sparsity skip: only a bitwise
                // zero contributes nothing to the accumulation.
                if ri == 0.0 {
                    continue;
                }
                for j in i..n {
                    out.data[i * n + j] += ri * r[j];
                }
            }
        }
        for i in 0..n {
            for j in 0..i {
                out.data[i * n + j] = out.data[j * n + i];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m23() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let m = m23();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
    }

    #[test]
    fn from_rows_empty_is_0x0() {
        let m = Matrix::from_rows(&[]).unwrap();
        assert_eq!(m.shape(), (0, 0));
        assert!(m.is_empty());
    }

    #[test]
    fn identity_matmul_is_noop() {
        let m = m23();
        let left = Matrix::identity(2).matmul(&m).unwrap();
        let right = m.matmul(&Matrix::identity(3)).unwrap();
        assert_eq!(left, m);
        assert_eq!(right, m);
    }

    #[test]
    fn matmul_known_product() {
        let a = m23();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = m23();
        assert!(a.matmul(&m23()).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let m = m23();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let m = m23();
        let v = [1.0, 0.5, -1.0];
        let got = m.matvec(&v).unwrap();
        let expect = m.matmul(&Matrix::col_vector(&v)).unwrap();
        assert_eq!(got, expect.into_vec());
    }

    #[test]
    fn elementwise_ops() {
        let a = m23();
        let b = a.scale(2.0);
        assert_eq!(a.add(&b).unwrap().get(0, 0), 3.0);
        assert_eq!(b.sub(&a).unwrap(), a);
        assert_eq!(a.hadamard(&a).unwrap().get(1, 2), 36.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::zeros(2, 3);
        a.axpy(0.5, &m23()).unwrap();
        assert_eq!(a.get(1, 1), 2.5);
        assert!(a.axpy(1.0, &Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn stacking() {
        let a = m23();
        let v = a.vstack(&a).unwrap();
        assert_eq!(v.shape(), (4, 3));
        assert_eq!(v.row(3), a.row(1));
        let h = a.hstack(&a).unwrap();
        assert_eq!(h.shape(), (2, 6));
        assert_eq!(h.get(0, 4), 2.0);
        assert!(a.vstack(&Matrix::zeros(1, 2)).is_err());
        assert!(a.hstack(&Matrix::zeros(3, 1)).is_err());
    }

    #[test]
    fn select_rows_orders_and_bounds() {
        let a = m23();
        let s = a.select_rows(&[1, 0, 1]).unwrap();
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(0), a.row(1));
        assert!(a.select_rows(&[2]).is_err());
    }

    #[test]
    fn reductions() {
        let a = m23();
        assert_eq!(a.sum(), 21.0);
        assert!((a.frobenius_norm() - 91.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(a.max_abs(), 6.0);
        assert_eq!(a.col_means(), vec![2.5, 3.5, 4.5]);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = m23();
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        for (x, y) in g.as_slice().iter().zip(explicit.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn finite_detection() {
        let mut a = m23();
        assert!(a.is_finite());
        a.set(0, 0, f64::NAN);
        assert!(!a.is_finite());
    }

    #[test]
    fn map_and_map_inplace_agree() {
        let a = m23();
        let mut b = a.clone();
        b.map_inplace(|x| x * x);
        assert_eq!(a.map(|x| x * x), b);
    }
}
