//! Error type shared by all fallible linear-algebra routines.

use std::fmt;

/// Convenient alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Error raised by a linear-algebra routine.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A matrix expected to be symmetric positive definite was not.
    NotPositiveDefinite {
        /// Index of the pivot where the factorisation broke down.
        pivot: usize,
    },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the routine.
        routine: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The input was empty where at least one element is required.
    Empty {
        /// Name of the routine that required non-empty input.
        routine: &'static str,
    },
    /// An index was out of bounds for the given dimension.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The length of the dimension being indexed.
        len: usize,
    },
    /// A numeric argument was invalid (NaN, non-positive, etc.).
    InvalidArgument {
        /// Description of the violated requirement.
        what: &'static str,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            Error::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            Error::NoConvergence {
                routine,
                iterations,
            } => write!(
                f,
                "{routine} did not converge after {iterations} iterations"
            ),
            Error::Empty { routine } => write!(f, "{routine} requires non-empty input"),
            Error::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            Error::InvalidArgument { what } => write!(f, "invalid argument: {what}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = Error::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(
            e.to_string(),
            "shape mismatch in matmul: lhs is 2x3, rhs is 4x5"
        );
    }

    #[test]
    fn display_not_positive_definite() {
        let e = Error::NotPositiveDefinite { pivot: 3 };
        assert!(e.to_string().contains("pivot 3"));
    }

    #[test]
    fn display_no_convergence() {
        let e = Error::NoConvergence {
            routine: "jacobi",
            iterations: 100,
        };
        assert!(e.to_string().contains("jacobi"));
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&Error::Empty { routine: "mean" });
    }
}
