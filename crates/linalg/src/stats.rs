//! Descriptive statistics used across the evaluation harness.
//!
//! The paper's evaluation leans on a handful of statistical primitives:
//! mean/standard deviation of the prediction-error distribution (the
//! anomaly threshold `μ ± γσ`), quantiles for the residual boxplots of
//! Figure 1, empirical CDFs for Figure 4, and a paired t-test for the
//! significance claims of §4.1.2. This module provides them with numerically
//! stable (Welford) accumulation.

use crate::error::{Error, Result};

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean, or `0.0` before any observation.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance, or `0.0` with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (divides by `n`), or `0.0` with no observations.
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
    }
}

/// Arithmetic mean of a non-empty slice.
///
/// Returns an error for empty input.
pub fn mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(Error::Empty { routine: "mean" });
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Unbiased sample standard deviation; `0.0` for a single observation.
///
/// Returns an error for empty input.
pub fn std_dev(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(Error::Empty { routine: "std_dev" });
    }
    let mut w = Welford::new();
    for &x in xs {
        w.push(x);
    }
    Ok(w.std_dev())
}

/// Quantile with linear interpolation between order statistics.
///
/// `q` must lie in `[0, 1]`. Returns an error for empty input or an
/// out-of-range `q`.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(Error::Empty {
            routine: "quantile",
        });
    }
    if !(0.0..=1.0).contains(&q) || q.is_nan() {
        return Err(Error::InvalidArgument {
            what: "quantile q must be in [0, 1]",
        });
    }
    let mut sorted = xs.to_vec();
    // `total_cmp` orders NaN after every number, so the sort cannot
    // fail; NaN inputs surface in the quantile value instead.
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (the 0.5 quantile).
///
/// Returns an error for empty input.
pub fn median(xs: &[f64]) -> Result<f64> {
    quantile(xs, 0.5)
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns an error on length mismatch or empty input; returns `0.0` when
/// either sample has zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(Error::ShapeMismatch {
            op: "pearson",
            lhs: (xs.len(), 1),
            rhs: (ys.len(), 1),
        });
    }
    if xs.is_empty() {
        return Err(Error::Empty { routine: "pearson" });
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    // envlint: allow(float-cmp) — exact zero-guard: a constant input
    // has variance identically 0.0 and must not divide.
    if vx == 0.0 || vy == 0.0 {
        return Ok(0.0);
    }
    Ok(cov / (vx.sqrt() * vy.sqrt()))
}

/// Lag-`k` autocorrelation of a series (population convention).
///
/// Returns `0.0` for constant series; an error when the series has fewer
/// than `k + 2` points or `k == 0`.
pub fn autocorrelation(xs: &[f64], lag: usize) -> Result<f64> {
    if lag == 0 {
        return Err(Error::InvalidArgument {
            what: "autocorrelation lag must be at least 1",
        });
    }
    if xs.len() < lag + 2 {
        return Err(Error::InvalidArgument {
            what: "autocorrelation needs at least lag + 2 points",
        });
    }
    let m = mean(xs)?;
    let var: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    // envlint: allow(float-cmp) — exact zero-guard: a constant series
    // has variance identically 0.0 and must not divide.
    if var == 0.0 {
        return Ok(0.0);
    }
    let cov: f64 = xs.windows(lag + 1).map(|w| (w[0] - m) * (w[lag] - m)).sum();
    Ok(cov / var)
}

/// Five-number summary used for the residual boxplots of Figure 1.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxplotSummary {
    /// Minimum observation.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum observation.
    pub max: f64,
}

impl BoxplotSummary {
    /// Computes the five-number summary of a non-empty sample.
    ///
    /// Returns an error for empty input.
    pub fn of(xs: &[f64]) -> Result<Self> {
        if xs.is_empty() {
            return Err(Error::Empty { routine: "boxplot" });
        }
        Ok(BoxplotSummary {
            min: quantile(xs, 0.0)?,
            q1: quantile(xs, 0.25)?,
            median: quantile(xs, 0.5)?,
            q3: quantile(xs, 0.75)?,
            max: quantile(xs, 1.0)?,
        })
    }
}

/// Normal (Gaussian) distribution with explicit parameters.
///
/// This is the error model used by the paper's anomaly detector: prediction
/// errors of non-problematic builds are fitted as `N(μ_error, σ_error)` and
/// a new error is anomalous when it deviates more than `γ σ` from `μ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    /// Mean.
    pub mean: f64,
    /// Standard deviation (non-negative).
    pub std_dev: f64,
}

impl Gaussian {
    /// Fits mean and (sample) standard deviation to data.
    ///
    /// Returns an error for empty input.
    pub fn fit(xs: &[f64]) -> Result<Self> {
        Ok(Gaussian {
            mean: mean(xs)?,
            std_dev: std_dev(xs)?,
        })
    }

    /// Number of standard deviations `x` lies from the mean.
    ///
    /// Returns `0.0` when the distribution is degenerate (`σ = 0`) and `x`
    /// equals the mean, and `+∞` when it does not.
    pub fn z_score(&self, x: f64) -> f64 {
        // envlint: allow(float-cmp) — exact zero-guard: the documented
        // degenerate behaviour (0 or +inf) needs sigma identically 0.0.
        if self.std_dev == 0.0 {
            if x == self.mean {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (x - self.mean).abs() / self.std_dev
        }
    }

    /// Cumulative distribution function via the error function.
    pub fn cdf(&self, x: f64) -> f64 {
        // envlint: allow(float-cmp) — exact zero-guard: a degenerate
        // distribution has a step CDF instead of an erf evaluation.
        if self.std_dev == 0.0 {
            return if x < self.mean { 0.0 } else { 1.0 };
        }
        0.5 * (1.0 + erf((x - self.mean) / (self.std_dev * std::f64::consts::SQRT_2)))
    }
}

/// Error function approximation (Abramowitz & Stegun 7.1.26, |ε| ≤ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Empirical CDF evaluated over its own sample points.
///
/// Returns `(sorted_values, cumulative_fractions)` where
/// `cumulative_fractions[i]` is the fraction of samples `<= sorted_values[i]`.
/// Returns an error for empty input.
pub fn empirical_cdf(xs: &[f64]) -> Result<(Vec<f64>, Vec<f64>)> {
    if xs.is_empty() {
        return Err(Error::Empty {
            routine: "empirical_cdf",
        });
    }
    let mut sorted = xs.to_vec();
    // `total_cmp` orders NaN after every number, so the sort cannot
    // fail; NaN inputs surface in the CDF support instead.
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len() as f64;
    let fracs = (1..=sorted.len()).map(|i| i as f64 / n).collect();
    Ok((sorted, fracs))
}

/// Result of a paired two-sided t-test.
#[derive(Debug, Clone, Copy)]
pub struct TTest {
    /// The t statistic.
    pub t: f64,
    /// Degrees of freedom (`n - 1`).
    pub df: usize,
    /// Two-sided p-value.
    pub p_value: f64,
}

impl TTest {
    /// Whether the difference is significant at level `alpha`.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Paired two-sided t-test on equal-length samples.
///
/// This is the significance test used in §4.1.2 of the paper (α = 0.05) to
/// compare method means. Returns an error on length mismatch or fewer than
/// two pairs. With zero variance of differences, `t` is `±∞` (p = 0) when
/// the mean difference is non-zero and `0` (p = 1) otherwise.
pub fn paired_t_test(xs: &[f64], ys: &[f64]) -> Result<TTest> {
    if xs.len() != ys.len() {
        return Err(Error::ShapeMismatch {
            op: "paired_t_test",
            lhs: (xs.len(), 1),
            rhs: (ys.len(), 1),
        });
    }
    if xs.len() < 2 {
        return Err(Error::InvalidArgument {
            what: "paired t-test needs at least two pairs",
        });
    }
    let diffs: Vec<f64> = xs.iter().zip(ys).map(|(a, b)| a - b).collect();
    let md = mean(&diffs)?;
    let sd = std_dev(&diffs)?;
    let n = diffs.len();
    let df = n - 1;
    // envlint: allow(float-cmp) — exact zero-guard: zero-variance
    // differences must not divide in the t statistic.
    if sd == 0.0 {
        // envlint: allow(float-cmp) — exact degenerate case: identical
        // paired samples give t = 0 by definition, not by tolerance.
        return Ok(if md == 0.0 {
            TTest {
                t: 0.0,
                df,
                p_value: 1.0,
            }
        } else {
            TTest {
                t: md.signum() * f64::INFINITY,
                df,
                p_value: 0.0,
            }
        });
    }
    let t = md / (sd / (n as f64).sqrt());
    let p = 2.0 * (1.0 - student_t_cdf(t.abs(), df as f64));
    Ok(TTest {
        t,
        df,
        p_value: p.clamp(0.0, 1.0),
    })
}

/// CDF of the Student t distribution via the regularised incomplete beta
/// function.
fn student_t_cdf(t: f64, df: f64) -> f64 {
    // envlint: allow(float-cmp) — exact symmetry point: t identically
    // 0.0 short-circuits to CDF = 0.5 before the beta evaluation.
    if t == 0.0 {
        return 0.5;
    }
    let x = df / (df + t * t);
    let ib = incomplete_beta(0.5 * df, 0.5, x);
    if t > 0.0 {
        1.0 - 0.5 * ib
    } else {
        0.5 * ib
    }
}

/// Regularised incomplete beta function `I_x(a, b)` by continued fraction
/// (Numerical Recipes `betacf`).
fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_beta = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b);
    let front = (ln_beta + a * x.ln() + b * (1.0 - x).ln()).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 200;
    const EPS: f64 = 3e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Natural log of the gamma function (Lanczos approximation).
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015;
    for c in COEFFS {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.population_variance() - 4.0).abs() < 1e-12);
        assert_eq!(w.count(), 8);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..20] {
            a.push(x);
        }
        for &x in &xs[20..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
        // Merging into/with empty.
        let mut empty = Welford::new();
        empty.merge(&all);
        assert!((empty.mean() - all.mean()).abs() < 1e-12);
        all.merge(&Welford::new());
        assert_eq!(all.count(), 50);
    }

    #[test]
    fn quantiles_and_median() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert_eq!(median(&xs).unwrap(), 2.5);
        assert!(quantile(&xs, 1.5).is_err());
        assert!(quantile(&[], 0.5).is_err());
    }

    #[test]
    fn autocorrelation_of_known_processes() {
        // A slow ramp is highly autocorrelated at lag 1.
        let ramp: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(autocorrelation(&ramp, 1).unwrap() > 0.9);
        // Alternating series is anti-correlated at lag 1, correlated at 2.
        let alt: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&alt, 1).unwrap() < -0.9);
        assert!(autocorrelation(&alt, 2).unwrap() > 0.9);
        // Constant series: defined as 0.
        assert_eq!(autocorrelation(&[5.0; 10], 1).unwrap(), 0.0);
        // Errors.
        assert!(autocorrelation(&ramp, 0).is_err());
        assert!(autocorrelation(&[1.0, 2.0], 1).is_err());
    }

    #[test]
    fn boxplot_summary() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        let b = BoxplotSummary::of(&xs).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.max, 5.0);
        assert!(BoxplotSummary::of(&[]).is_err());
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let xs = [1.0, 2.0, 3.0];
        assert!((pearson(&xs, &[2.0, 4.0, 6.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &[3.0, 2.0, 1.0]).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[1.0, 1.0, 1.0]).unwrap(), 0.0);
        assert!(pearson(&xs, &[1.0]).is_err());
    }

    #[test]
    fn gaussian_z_score_and_cdf() {
        let g = Gaussian {
            mean: 10.0,
            std_dev: 2.0,
        };
        assert_eq!(g.z_score(14.0), 2.0);
        assert_eq!(g.z_score(6.0), 2.0);
        assert!((g.cdf(10.0) - 0.5).abs() < 1e-7);
        assert!((g.cdf(12.0) - 0.8413).abs() < 1e-3);
        let degenerate = Gaussian {
            mean: 1.0,
            std_dev: 0.0,
        };
        assert_eq!(degenerate.z_score(1.0), 0.0);
        assert!(degenerate.z_score(2.0).is_infinite());
        assert_eq!(degenerate.cdf(0.5), 0.0);
        assert_eq!(degenerate.cdf(1.5), 1.0);
    }

    #[test]
    fn gaussian_fit() {
        let g = Gaussian::fit(&[1.0, 3.0]).unwrap();
        assert_eq!(g.mean, 2.0);
        assert!((g.std_dev - 2.0_f64.sqrt()).abs() < 1e-12);
        assert!(Gaussian::fit(&[]).is_err());
    }

    #[test]
    fn erf_reference_values() {
        // The A&S 7.1.26 approximation has |error| <= 1.5e-7, so even
        // erf(0) is only zero to that tolerance.
        assert!(erf(0.0).abs() < 1.5e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn ecdf_monotone_and_complete() {
        let (vals, fracs) = empirical_cdf(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(vals, vec![1.0, 2.0, 3.0]);
        assert_eq!(fracs.last().copied(), Some(1.0));
        assert!(fracs.windows(2).all(|w| w[0] <= w[1]));
        assert!(empirical_cdf(&[]).is_err());
    }

    #[test]
    fn t_test_detects_shift() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x + 1.0).collect();
        let t = paired_t_test(&xs, &ys).unwrap();
        assert!(t.significant(0.05));
        assert!(t.t < 0.0);
    }

    #[test]
    fn t_test_no_difference_not_significant() {
        let xs: Vec<f64> = (0..30).map(|i| (i as f64 * 0.7).sin()).collect();
        let t = paired_t_test(&xs, &xs).unwrap();
        assert!(!t.significant(0.05));
        assert_eq!(t.p_value, 1.0);
    }

    #[test]
    fn t_test_noise_symmetric() {
        // Differences alternate ±1 → mean 0, not significant.
        let xs: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| x + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let t = paired_t_test(&xs, &ys).unwrap();
        assert!(!t.significant(0.05));
    }

    #[test]
    fn t_test_argument_errors() {
        assert!(paired_t_test(&[1.0], &[1.0]).is_err());
        assert!(paired_t_test(&[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn t_test_degenerate_constant_shift() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 3.0, 4.0];
        let t = paired_t_test(&xs, &ys).unwrap();
        assert_eq!(t.p_value, 0.0);
        assert!(t.t.is_infinite());
    }

    #[test]
    fn student_t_cdf_reference() {
        // t = 2.0, df = 10 → one-sided p ≈ 0.0367 (two-sided 0.0734).
        let p = 2.0 * (1.0 - student_t_cdf(2.0, 10.0));
        assert!((p - 0.0734).abs() < 2e-3, "p = {p}");
        // Symmetry.
        assert!((student_t_cdf(-1.3, 7.0) + student_t_cdf(1.3, 7.0) - 1.0).abs() < 1e-10);
    }
}
