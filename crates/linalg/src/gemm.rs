//! Packed, register-blocked GEMM kernels behind [`crate::Matrix::matmul`]
//! and its transposed variants.
//!
//! Three layouts share one microkernel: `nn` (`A·B`), `nt` (`A·Bᵀ`) and
//! `tn` (`Aᵀ·B`). The left operand is packed into `MR`-row panels
//! (`MR` values contiguous per `k`), the right operand into `NR`-column
//! panels (`NR` values contiguous per `k`), and an `MR×NR` register
//! accumulator walks the **full** inner dimension in ascending order.
//! The per-`k` finiteness of the right operand — which the zero-skip
//! predicate needs — is computed *during* packing, which already reads
//! every element, so the skip support costs no extra pass over B.
//!
//! # Why results are bit-identical to the naive `ikj` loop
//!
//! Every output element is one IEEE-754 accumulation chain: start at
//! `0.0`, add `a[i][k]·b[k][j]` for ascending `k`, skipping exactly the
//! terms the naive kernel skips (bitwise-zero `a` against a finite `b`
//! row). Register accumulation instead of memory accumulation does not
//! reassociate that chain, and Rust never contracts `mul`+`add` into a
//! fused multiply-add implicitly, so the packed kernel, the naive
//! kernel and every thread count produce identical bits. The one thing
//! that *would* break this is KC-blocking (partial sums over `k`
//! re-added to memory) — deliberately not done here.
//!
//! The zero-skip follows the same IEEE-754 reasoning as the original
//! kernel: `0·NaN = 0·inf = NaN`, so a bitwise-zero left entry is only
//! skipped when the opposing `k`-slice of the right operand is entirely
//! finite. Skipping also matters for `-0.0` arithmetic (a chain of all
//! skipped terms yields `+0.0`, a chain of `-0.0` products yields
//! `-0.0`), which is why the packed and naive paths share the exact
//! same skip predicate rather than approximating it.

use std::cell::Cell;
use std::ops::Range;
use std::sync::OnceLock;
use std::thread::LocalKey;

/// Rows per register tile of the microkernel.
pub(crate) const MR: usize = 4;

/// Columns per register tile of the microkernel. The builds here target
/// baseline x86-64 (SSE2: sixteen 128-bit registers), so the 4×4
/// accumulator is 16 doubles = 8 vector registers — register-resident
/// with room left for the `a` broadcast and the packed-B loads. A wider
/// tile (4×8) needs the whole register file and spills every update.
pub(crate) const NR: usize = 4;

/// Minimum `2·m·k·n` flops before packing pays for itself; below this
/// the naive loops win on overhead. Per-element accumulation chains are
/// identical in both paths, so the gate affects wall-clock only, never
/// bits.
const PACK_MIN_FLOPS: usize = 8192;

/// Minimum output columns for the packed path: narrower products waste
/// most of the `NR`-wide tile on padding.
const PACK_MIN_COLS: usize = NR;

/// Minimum `m * k * n` before the product fans row blocks out to the
/// worker pool. Below this the spawn/join overhead (~µs per scope) is
/// comparable to the multiply itself. Per-output-row work is identical
/// in both paths, so the gate affects wall-clock only, never bits.
pub(crate) const PAR_MIN_ELEMS: usize = 1 << 17;

/// Rows per parallel job: big enough to amortise queue traffic, small
/// enough to balance load across workers on paper-sized matrices. A
/// multiple of [`MR`] so only the final block packs a ragged panel.
pub(crate) const ROW_BLOCK: usize = 16;

thread_local! {
    /// Packed right-operand panels, reused across calls on each thread.
    static PB_SCRATCH: Cell<Vec<f64>> = const { Cell::new(Vec::new()) };
    /// Packed left-operand panel, reused across calls/jobs on each
    /// thread (worker threads are persistent, so steady-state training
    /// loops stop allocating here entirely).
    static PA_SCRATCH: Cell<Vec<f64>> = const { Cell::new(Vec::new()) };
    /// Per-`k` finiteness of the right operand (1 = finite slice),
    /// filled as a by-product of packing B.
    static FIN_SCRATCH: Cell<Vec<u8>> = const { Cell::new(Vec::new()) };
}

/// Runs `f` with the thread-local buffer taken out of its cell, putting
/// it back afterwards so the allocation is reused by the next call.
fn with_scratch<T: Default, R>(key: &'static LocalKey<Cell<T>>, f: impl FnOnce(&mut T) -> R) -> R {
    key.with(|cell| {
        let mut buf = cell.take();
        let out = f(&mut buf);
        cell.set(buf);
        out
    })
}

/// The `MR×NR` register microkernel: one full-`k` pass over a packed A
/// panel (`MR` values per `k`) and a packed B panel (`NR` values per
/// `k`), accumulating into registers in ascending-`k` order.
///
/// Each `k` step dispatches once: if the A column holds no bitwise zero
/// — or the opposing B slice is non-finite, which forbids skipping —
/// no skip can fire, so the update runs a branch-free `MR×NR` rank-1
/// accumulation that the compiler vectorizes. Only columns that really
/// contain a skippable zero take the per-row branchy lane. Both lanes
/// add the exact same terms in the exact same order, so the dispatch is
/// invisible in the bits.
#[inline]
fn microkernel(pa: &[f64], pb: &[f64], finite: &[u8], acc: &mut [[f64; NR]; MR]) {
    let (a_cols, _) = pa.as_chunks::<MR>();
    let (b_rows, _) = pb.as_chunks::<NR>();
    for ((a_col, b_row), &fin) in a_cols.iter().zip(b_rows).zip(finite.iter()) {
        // envlint: allow(float-cmp) — exact sparsity test: only a
        // bitwise-zero left entry is ever skippable.
        let any_zero = a_col.contains(&0.0);
        if any_zero && fin != 0 {
            for (acc_row, &a) in acc.iter_mut().zip(a_col) {
                // envlint: allow(float-cmp) — exact sparsity skip: only
                // a bitwise zero contributes nothing, and only against a
                // finite rhs slice (IEEE-754: 0·NaN = 0·inf = NaN).
                if a == 0.0 {
                    continue;
                }
                for (o, &b) in acc_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        } else {
            for (acc_row, &a) in acc.iter_mut().zip(a_col) {
                for (o, &b) in acc_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
    }
}

/// Computes the C rows in `rows` (a contiguous slab `out_rows`, row
/// stride `n`) from pre-packed B panels. `pack_a_panel(first, h, dest)`
/// fills `dest` (`k·MR` doubles) with rows `first..first+h` of the
/// effective left operand; the unused `MR - h` lanes are padded with
/// `1.0` (never `0.0`, so padding cannot push a dense column onto the
/// microkernel's skipping lane — padded results are discarded at store).
///
/// All A panels for the row slab are packed once up front; the B-panel
/// loop is outermost so each packed B panel is reused across every A
/// panel while it is cache-hot.
fn gemm_rows(
    out_rows: &mut [f64],
    rows: Range<usize>,
    n: usize,
    k: usize,
    pb: &[f64],
    finite: &[u8],
    mut pack_a_panel: impl FnMut(usize, usize, &mut [f64]),
) {
    with_scratch(&PA_SCRATCH, |pa| {
        let h_total = rows.len();
        let a_panels = h_total.div_ceil(MR);
        let need = a_panels * k * MR;
        if pa.len() < need {
            pa.resize(need, 0.0);
        }
        let pa = &mut pa[..need];
        for (pi, panel) in pa.chunks_exact_mut(k * MR).enumerate() {
            let p0 = pi * MR;
            pack_a_panel(rows.start + p0, MR.min(h_total - p0), panel);
        }
        let mut j0 = 0;
        while j0 < n {
            let w = NR.min(n - j0);
            let b_panel = &pb[(j0 / NR) * k * NR..][..k * NR];
            for (pi, a_panel) in pa.chunks_exact(k * MR).enumerate() {
                let p0 = pi * MR;
                let h = MR.min(h_total - p0);
                let mut acc = [[0.0_f64; NR]; MR];
                microkernel(a_panel, b_panel, finite, &mut acc);
                for (r, acc_row) in acc.iter().enumerate().take(h) {
                    let dst = &mut out_rows[(p0 + r) * n + j0..][..w];
                    dst.copy_from_slice(&acc_row[..w]);
                }
            }
            j0 += NR;
        }
    });
}

/// Doubles a packed B copy needs for a `k`-deep right operand with `n`
/// effective columns.
fn packed_b_len(k: usize, n: usize) -> usize {
    n.div_ceil(NR) * k * NR
}

/// Packs `b` (`k×n`, row-major) into `NR`-column panels, zero-padding
/// the last panel's unused lanes (the scratch buffer may hold stale
/// data from a previous product, so every lane is written). Also fills
/// `fin[kk]` with row `kk`'s finiteness — the pack touches every
/// element anyway, so the skip predicate's scan of B rides along free.
fn pack_b_nn(b: &[f64], k: usize, n: usize, pb: &mut Vec<f64>, fin: &mut Vec<u8>) {
    let need = packed_b_len(k, n);
    if pb.len() < need {
        pb.resize(need, 0.0);
    }
    fin.clear();
    fin.resize(k, 1);
    for (p, dst) in pb[..need].chunks_exact_mut(k * NR).enumerate() {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        for (kk, lane) in dst.chunks_exact_mut(NR).enumerate() {
            let src = &b[kk * n + j0..][..w];
            lane[..w].copy_from_slice(src);
            lane[w..].fill(0.0);
            if !src.iter().all(|x| x.is_finite()) {
                fin[kk] = 0;
            }
        }
    }
}

/// Packs `b` (`n×k`, row-major; the `nt` right operand) into
/// `NR`-column panels of `Bᵀ`, accumulating per-`k` finiteness of the
/// gathered columns into `fin` as it goes (see [`pack_b_nn`]).
fn pack_b_nt(b: &[f64], n: usize, k: usize, pb: &mut Vec<f64>, fin: &mut Vec<u8>) {
    let need = packed_b_len(k, n);
    if pb.len() < need {
        pb.resize(need, 0.0);
    }
    fin.clear();
    fin.resize(k, 1);
    for (p, dst) in pb[..need].chunks_exact_mut(k * NR).enumerate() {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        for c in 0..NR {
            if c < w {
                let src = &b[(j0 + c) * k..][..k];
                for (kk, &v) in src.iter().enumerate() {
                    dst[kk * NR + c] = v;
                    if !v.is_finite() {
                        fin[kk] = 0;
                    }
                }
            } else {
                for kk in 0..k {
                    dst[kk * NR + c] = 0.0;
                }
            }
        }
    }
}

/// Whether a product of this shape should take the packed path.
fn packable(m: usize, k: usize, n: usize) -> bool {
    n >= PACK_MIN_COLS && m >= 2 && k >= 2 && 2 * m * k * n >= PACK_MIN_FLOPS
}

/// Whether a product of this shape should fan out to the worker pool.
fn parallel(m: usize, k: usize, n: usize) -> bool {
    m.saturating_mul(k).saturating_mul(n) >= PAR_MIN_ELEMS && env2vec_par::max_threads() > 1
}

/// Computes `out = A·B` (`a` is `m×k`, `b` is `k×n`), matching the
/// naive kernel bit-for-bit.
pub(crate) fn gemm_nn(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
    debug_assert_eq!(out.len(), m * n);
    if packable(m, k, n) {
        with_scratch(&PB_SCRATCH, |pb| {
            with_scratch(&FIN_SCRATCH, |fin| {
                pack_b_nn(b, k, n, pb, fin);
                let pb = &pb[..packed_b_len(k, n)];
                run_packed(out, m, n, k, |rows, out_block| {
                    gemm_rows(out_block, rows, n, k, pb, fin, |first, h, dest| {
                        pack_a_rows(a, k, first, h, dest);
                    });
                });
            });
        });
    } else {
        naive_nn(a, m, k, b, n, out);
    }
}

/// Computes `out = A·Bᵀ` (`a` is `m×k`, `b` is `n×k`), bit-identical
/// to `a.matmul(&b.transpose())`.
pub(crate) fn gemm_nt(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
    debug_assert_eq!(out.len(), m * n);
    if packable(m, k, n) {
        with_scratch(&PB_SCRATCH, |pb| {
            with_scratch(&FIN_SCRATCH, |fin| {
                pack_b_nt(b, n, k, pb, fin);
                let pb = &pb[..packed_b_len(k, n)];
                run_packed(out, m, n, k, |rows, out_block| {
                    gemm_rows(out_block, rows, n, k, pb, fin, |first, h, dest| {
                        pack_a_rows(a, k, first, h, dest);
                    });
                });
            });
        });
    } else {
        naive_nt(a, m, k, b, n, out);
    }
}

/// Computes `out = Aᵀ·B` (`a` is `k×m`, `b` is `k×n`), bit-identical
/// to `a.transpose().matmul(&b)`.
pub(crate) fn gemm_tn(a: &[f64], k: usize, m: usize, b: &[f64], n: usize, out: &mut [f64]) {
    debug_assert_eq!(out.len(), m * n);
    if packable(m, k, n) {
        with_scratch(&PB_SCRATCH, |pb| {
            with_scratch(&FIN_SCRATCH, |fin| {
                pack_b_nn(b, k, n, pb, fin);
                let pb = &pb[..packed_b_len(k, n)];
                run_packed(out, m, n, k, |rows, out_block| {
                    gemm_rows(out_block, rows, n, k, pb, fin, |first, h, dest| {
                        pack_a_cols(a, m, k, first, h, dest);
                    });
                });
            });
        });
    } else {
        naive_tn(a, k, m, b, n, out);
    }
}

/// Dispatches packed row-block work either sequentially or across the
/// pool. `run_block(rows, out_block)` must compute exactly those C rows;
/// blocks never overlap, so any schedule yields the same bits.
fn run_packed(
    out: &mut [f64],
    m: usize,
    n: usize,
    k: usize,
    run_block: impl Fn(Range<usize>, &mut [f64]) + Sync,
) {
    if parallel(m, k, n) {
        let block_elems = ROW_BLOCK * n;
        env2vec_par::scope(|s| {
            for (bi, out_block) in out.chunks_mut(block_elems).enumerate() {
                let run_block = &run_block;
                s.spawn(move || {
                    let i0 = bi * ROW_BLOCK;
                    run_block(i0..i0 + out_block.len() / n, out_block);
                });
            }
        });
    } else {
        run_block(0..m, out);
    }
}

/// Packs `h` rows of a row-major `·×k` slab (rows `first..first+h`)
/// into a `k·MR` panel. Lanes `h..MR` are padded with `1.0` — a value
/// the zero-skip can never fire on — so a ragged panel still takes the
/// microkernel's dense lane; the padded products land in accumulator
/// rows the caller discards.
fn pack_a_rows(a: &[f64], k: usize, first: usize, h: usize, dest: &mut [f64]) {
    for r in 0..MR {
        if r < h {
            for (kk, &v) in a[(first + r) * k..][..k].iter().enumerate() {
                dest[kk * MR + r] = v;
            }
        } else {
            for kk in 0..k {
                dest[kk * MR + r] = 1.0;
            }
        }
    }
}

/// Packs `h` columns of a row-major `k×m` slab (columns
/// `first..first+h`) into a `k·MR` panel, padding lanes `h..MR` with
/// `1.0` (see [`pack_a_rows`]).
fn pack_a_cols(a: &[f64], m: usize, k: usize, first: usize, h: usize, dest: &mut [f64]) {
    for kk in 0..k {
        let src = &a[kk * m..][..m];
        for r in 0..MR {
            dest[kk * MR + r] = if r < h { src[first + r] } else { 1.0 };
        }
    }
}

/// Per-row finiteness of the right operand, computed at most once per
/// product and only when a bitwise zero is first encountered on the
/// left (the naive paths keep the original lazy behaviour).
fn lazy_row_finite(b: &[f64], k: usize, n: usize, cache: &OnceLock<Vec<bool>>, kk: usize) -> bool {
    cache.get_or_init(|| {
        (0..k)
            .map(|r| b[r * n..(r + 1) * n].iter().all(|x| x.is_finite()))
            .collect()
    })[kk]
}

/// The original `ikj` kernel: accumulates `a_row · b` into one output
/// row. Shared by the sequential and parallel naive paths so the
/// per-row result is bit-identical regardless of scheduling.
fn mul_row_into(
    a_row: &[f64],
    b: &[f64],
    k: usize,
    n: usize,
    out_row: &mut [f64],
    row_finite: &OnceLock<Vec<bool>>,
) {
    for (kk, &a) in a_row.iter().enumerate() {
        // envlint: allow(float-cmp) — exact sparsity skip: only a bitwise
        // zero contributes nothing, and only against a finite rhs row.
        if a == 0.0 && lazy_row_finite(b, k, n, row_finite, kk) {
            continue;
        }
        let b_row = &b[kk * n..(kk + 1) * n];
        for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
            *o += a * bv;
        }
    }
}

/// Naive `A·B` with the original row-block parallel fan-out for large
/// shapes the packed path declines (e.g. single-column outputs).
fn naive_nn(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
    let row_finite = OnceLock::new();
    if parallel(m, k, n) {
        let block_elems = ROW_BLOCK * n;
        env2vec_par::scope(|s| {
            for (bi, out_block) in out.chunks_mut(block_elems).enumerate() {
                let row_finite = &row_finite;
                s.spawn(move || {
                    for (r, out_row) in out_block.chunks_mut(n).enumerate() {
                        let i = bi * ROW_BLOCK + r;
                        mul_row_into(&a[i * k..(i + 1) * k], b, k, n, out_row, row_finite);
                    }
                });
            }
        });
    } else if n == 1 {
        // Single-column product (the model's output heads): keep the
        // accumulator in a register instead of re-loading the one-element
        // output row on every `k` step. Same chain: `out` is pre-zeroed,
        // so both forms start at `0.0` and add the same terms ascending.
        // The `n == 1` "row" of B is the single element already in hand,
        // so the skip predicate needs no finiteness table at all.
        for (i, o) in out.iter_mut().enumerate() {
            let a_row = &a[i * k..(i + 1) * k];
            let mut acc = 0.0;
            for (&av, &bv) in a_row.iter().zip(b.iter()) {
                // envlint: allow(float-cmp) — exact sparsity skip, same
                // predicate as `mul_row_into` specialised to one column.
                if av == 0.0 && bv.is_finite() {
                    continue;
                }
                acc += av * bv;
            }
            *o = acc;
        }
    } else {
        for i in 0..m {
            let out_row = &mut out[i * n..(i + 1) * n];
            mul_row_into(&a[i * k..(i + 1) * k], b, k, n, out_row, &row_finite);
        }
    }
}

/// Naive `A·Bᵀ` as row-by-row dot products (`b` is `n×k`, so both
/// streams are contiguous).
fn naive_nt(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
    if k == 1 {
        // Rank-1 outer product (the backward pass of a single-column
        // forward product): one multiply per output element, streamed
        // row-major. `out` is pre-zeroed, so accumulating into it is the
        // same `0.0 + a·b` chain the dot-product loop builds. The single
        // `k`-slice's finiteness is one bool, scanned on first demand.
        let mut fin0: Option<bool> = None;
        for (a_row, out_row) in a.chunks_exact(1).zip(out.chunks_exact_mut(n)).take(m) {
            let av = a_row[0];
            // envlint: allow(float-cmp) — exact sparsity skip, same
            // predicate as the general loop with `kk == 0`.
            if av == 0.0 && *fin0.get_or_insert_with(|| b.iter().all(|x| x.is_finite())) {
                continue;
            }
            for (o, &bv) in out_row.iter_mut().zip(b.iter()) {
                *o += av * bv;
            }
        }
        return;
    }
    with_scratch(&FIN_SCRATCH, |fin| {
        col_finiteness(b, n, k, fin);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (kk, (&av, &bv)) in a_row.iter().zip(b_row.iter()).enumerate() {
                    // envlint: allow(float-cmp) — exact sparsity skip,
                    // same predicate as the packed kernel.
                    if av == 0.0 && fin[kk] != 0 {
                        continue;
                    }
                    acc += av * bv;
                }
                out[i * n + j] = acc;
            }
        }
    });
}

/// Naive `Aᵀ·B` in `k`-outer order (`a` is `k×m`): both operands are
/// streamed row-major and every output element still accumulates in
/// ascending-`k` order.
fn naive_tn(a: &[f64], k: usize, m: usize, b: &[f64], n: usize, out: &mut [f64]) {
    if n == 1 {
        // Single-column product (the output head's weight gradient):
        // `out[i] = Σ_k a[k·m+i]·b[k]` with the accumulator in a
        // register. The per-element chain is ascending `k` in both loop
        // orders, and the `n == 1` "row" of B is the element in hand, so
        // no finiteness table is needed.
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (kk, &bv) in b.iter().enumerate() {
                let av = a[kk * m + i];
                // envlint: allow(float-cmp) — exact sparsity skip, same
                // predicate as the general loop specialised to one column.
                if av == 0.0 && bv.is_finite() {
                    continue;
                }
                acc += av * bv;
            }
            *o = acc;
        }
        return;
    }
    with_scratch(&FIN_SCRATCH, |fin| {
        row_finiteness(b, k, n, fin);
        for kk in 0..k {
            let a_row = &a[kk * m..(kk + 1) * m];
            let b_row = &b[kk * n..(kk + 1) * n];
            for (i, &av) in a_row.iter().enumerate() {
                // envlint: allow(float-cmp) — exact sparsity skip, same
                // predicate as the packed kernel.
                if av == 0.0 && fin[kk] != 0 {
                    continue;
                }
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += av * bv;
                }
            }
        }
    });
}

/// Per-row finiteness of a `rows×cols` row-major slab (1 = finite row).
fn row_finiteness(data: &[f64], rows: usize, cols: usize, fin: &mut Vec<u8>) {
    fin.clear();
    fin.extend(
        (0..rows).map(|r| u8::from(data[r * cols..(r + 1) * cols].iter().all(|x| x.is_finite()))),
    );
}

/// Per-column finiteness of a `rows×cols` row-major slab.
fn col_finiteness(data: &[f64], rows: usize, cols: usize, fin: &mut Vec<u8>) {
    fin.clear();
    fin.resize(cols, 1);
    for r in 0..rows {
        for (f, x) in fin.iter_mut().zip(&data[r * cols..(r + 1) * cols]) {
            *f &= u8::from(x.is_finite());
        }
    }
}
