//! Cyclic Jacobi eigendecomposition for symmetric matrices.
//!
//! PCA (paper Figure 6) needs the eigenvectors of a small covariance matrix
//! — at most `10 k × 10 k` where `k` is the number of environment-metadata
//! features, typically 40×40. The cyclic Jacobi method is exact, simple,
//! and unconditionally stable for symmetric input, which makes it the right
//! tool at this scale.

use crate::error::{Error, Result};
use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition: `A = V diag(λ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Matrix whose *columns* are the unit eigenvectors, ordered to match
    /// [`SymmetricEigen::values`].
    pub vectors: Matrix,
}

/// Maximum number of full Jacobi sweeps before reporting non-convergence.
const MAX_SWEEPS: usize = 100;

/// Computes the eigendecomposition of a symmetric matrix.
///
/// Only symmetry up to floating-point noise is assumed; the routine
/// symmetrises its working copy by averaging `a` with its transpose.
/// Returns an error when the matrix is not square or Jacobi sweeps fail to
/// drive the off-diagonal mass below tolerance.
pub fn symmetric_eigen(a: &Matrix) -> Result<SymmetricEigen> {
    if a.rows() != a.cols() {
        return Err(Error::ShapeMismatch {
            op: "symmetric_eigen",
            lhs: a.shape(),
            rhs: a.shape(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(SymmetricEigen {
            values: Vec::new(),
            vectors: Matrix::zeros(0, 0),
        });
    }
    // Symmetrised working copy.
    let mut m = Matrix::from_fn(n, n, |i, j| 0.5 * (a.get(i, j) + a.get(j, i)));
    let mut v = Matrix::identity(n);
    let tol = 1e-12 * m.frobenius_norm().max(1.0);

    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m.get(i, j).abs();
            }
        }
        if off < tol {
            return Ok(sorted(m, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() < tol / (n * n) as f64 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Classic Jacobi rotation angle.
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                rotate(&mut m, &mut v, p, q, c, s);
            }
        }
    }
    Err(Error::NoConvergence {
        routine: "symmetric_eigen",
        iterations: MAX_SWEEPS,
    })
}

/// Applies the Jacobi rotation `J(p, q, θ)` to `m` (two-sided) and
/// accumulates it into the eigenvector matrix `v` (one-sided).
fn rotate(m: &mut Matrix, v: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = m.rows();
    for k in 0..n {
        let mkp = m.get(k, p);
        let mkq = m.get(k, q);
        m.set(k, p, c * mkp - s * mkq);
        m.set(k, q, s * mkp + c * mkq);
    }
    for k in 0..n {
        let mpk = m.get(p, k);
        let mqk = m.get(q, k);
        m.set(p, k, c * mpk - s * mqk);
        m.set(q, k, s * mpk + c * mqk);
    }
    for k in 0..n {
        let vkp = v.get(k, p);
        let vkq = v.get(k, q);
        v.set(k, p, c * vkp - s * vkq);
        v.set(k, q, s * vkp + c * vkq);
    }
}

/// Sorts eigenpairs by descending eigenvalue.
fn sorted(m: Matrix, v: Matrix) -> SymmetricEigen {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    // `total_cmp` is a NaN-safe total order, so the sort cannot fail
    // even if the iteration left a non-finite diagonal entry.
    order.sort_by(|&a, &b| diag[b].total_cmp(&diag[a]));
    let values = order.iter().map(|&i| diag[i]).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| v.get(i, order[j]));
    SymmetricEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-8, "{a} vs {b}");
    }

    #[test]
    fn diagonal_matrix_eigenvalues_sorted() {
        let a = Matrix::from_vec(3, 3, vec![2.0, 0.0, 0.0, 0.0, 5.0, 0.0, 0.0, 0.0, 1.0]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert_close(e.values[0], 5.0);
        assert_close(e.values[1], 2.0);
        assert_close(e.values[2], 1.0);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert_close(e.values[0], 3.0);
        assert_close(e.values[1], 1.0);
    }

    #[test]
    fn reconstructs_input() {
        let a =
            Matrix::from_vec(3, 3, vec![4.0, 1.0, -2.0, 1.0, 3.0, 0.5, -2.0, 0.5, 5.0]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        let lam = Matrix::from_fn(3, 3, |i, j| if i == j { e.values[i] } else { 0.0 });
        let rec = e
            .vectors
            .matmul(&lam)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap();
        for (x, y) in rec.as_slice().iter().zip(a.as_slice()) {
            assert_close(*x, *y);
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_vec(
            4,
            4,
            vec![
                10.0, 2.0, 3.0, 1.0, 2.0, 8.0, 0.5, 0.0, 3.0, 0.5, 6.0, 2.0, 1.0, 0.0, 2.0, 4.0,
            ],
        )
        .unwrap();
        let e = symmetric_eigen(&a).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert_close(vtv.get(i, j), want);
            }
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = Matrix::from_vec(3, 3, vec![1.0, 2.0, 0.0, 2.0, 7.0, 1.0, 0.0, 1.0, 3.0]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        let trace = a.get(0, 0) + a.get(1, 1) + a.get(2, 2);
        assert_close(e.values.iter().sum::<f64>(), trace);
    }

    #[test]
    fn rejects_non_square_and_handles_empty() {
        assert!(symmetric_eigen(&Matrix::zeros(2, 3)).is_err());
        let e = symmetric_eigen(&Matrix::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
    }
}
