//! Cholesky factorisation and SPD linear solves.
//!
//! The ridge baselines of the paper (`Ridge`, `Ridge_ts`, and the per-chain
//! linear models behind Figure 1) are solved in closed form from the normal
//! equations `(XᵀX + αI) w = Xᵀy`. The system matrix is symmetric positive
//! definite for any `α > 0`, so a Cholesky factorisation followed by two
//! triangular solves is the canonical method — the same route scikit-learn
//! takes for its `cholesky` solver.

// Indexed loops mirror the textbook formulations of these numeric
// kernels; iterator rewrites would obscure them.
#![allow(clippy::needless_range_loop)]

use crate::error::{Error, Result};
use crate::matrix::Matrix;

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// The lower-triangular factor `L` with `A = L Lᵀ`.
    l: Matrix,
}

impl Cholesky {
    /// Factorises a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; the strict upper triangle is
    /// ignored, so callers may pass a matrix whose upper half is stale.
    /// Returns [`Error::NotPositiveDefinite`] when a pivot is non-positive.
    pub fn decompose(a: &Matrix) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(Error::ShapeMismatch {
                op: "cholesky",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(Error::NotPositiveDefinite { pivot: i });
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` given the factorisation of `A`.
    ///
    /// Returns an error when `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(Error::ShapeMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward substitution: L z = b.
        let mut z = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l.get(i, k) * z[k];
            }
            z[i] = sum / self.l.get(i, i);
        }
        // Back substitution: Lᵀ x = z.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = z[i];
            for k in (i + 1)..n {
                sum -= self.l.get(k, i) * x[k];
            }
            x[i] = sum / self.l.get(i, i);
        }
        Ok(x)
    }

    /// Solves `A X = B` column-by-column.
    ///
    /// Returns an error when `B` has the wrong number of rows.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.l.rows();
        if b.rows() != n {
            return Err(Error::ShapeMismatch {
                op: "cholesky solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        let mut col = Vec::with_capacity(n);
        for j in 0..b.cols() {
            col.clear();
            col.extend(b.col_iter(j));
            let x = self.solve(&col)?;
            for (i, v) in x.into_iter().enumerate() {
                out.set(i, j, v);
            }
        }
        Ok(out)
    }

    /// Log-determinant of the factorised matrix, `2 Σ ln L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows())
            .map(|i| self.l.get(i, i).ln())
            .sum::<f64>()
            * 2.0
    }
}

/// Solves the SPD system `A x = b` in one call.
///
/// Returns an error when `A` is not square, not positive definite, or the
/// dimensions disagree.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Cholesky::decompose(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = M Mᵀ + I for a fixed M, guaranteed SPD.
        Matrix::from_vec(3, 3, vec![5.0, 2.0, 1.0, 2.0, 6.0, 3.0, 1.0, 3.0, 7.0]).unwrap()
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let ch = Cholesky::decompose(&a).unwrap();
        let l = ch.factor();
        let rec = l.matmul(&l.transpose()).unwrap();
        for (x, y) in rec.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd3();
        let b = [1.0, -2.0, 0.5];
        let x = solve_spd(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (got, want) in ax.iter().zip(b.iter()) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_matrix_identity_gives_inverse() {
        let a = spd3();
        let ch = Cholesky::decompose(&a).unwrap();
        let inv = ch.solve_matrix(&Matrix::identity(3)).unwrap();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((prod.get(i, j) - want).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(Error::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square_and_bad_rhs() {
        let a = Matrix::zeros(2, 3);
        assert!(Cholesky::decompose(&a).is_err());
        let ch = Cholesky::decompose(&spd3()).unwrap();
        assert!(ch.solve(&[1.0, 2.0]).is_err());
        assert!(ch.solve_matrix(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn log_det_of_identity_is_zero() {
        let ch = Cholesky::decompose(&Matrix::identity(4)).unwrap();
        assert!(ch.log_det().abs() < 1e-12);
    }

    #[test]
    fn reads_lower_triangle_only() {
        // Same lower triangle as spd3 but garbage above the diagonal.
        let mut a = spd3();
        a.set(0, 1, 99.0);
        a.set(0, 2, -99.0);
        a.set(1, 2, 42.0);
        let ch = Cholesky::decompose(&a).unwrap();
        let clean = Cholesky::decompose(&spd3()).unwrap();
        for (x, y) in ch.factor().as_slice().iter().zip(clean.factor().as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
