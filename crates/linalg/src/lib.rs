//! Dense linear-algebra substrate for the Env2Vec reproduction.
//!
//! The Env2Vec paper ran its deep-learning pipeline on Keras/TensorFlow and
//! its classical baselines on scikit-learn. Neither stack is available as a
//! mature Rust dependency, so this crate provides the numerical kernels that
//! everything above it (the autodiff engine, the ridge/forest/SVR baselines,
//! the PCA embedding visualisation of Figure 6) is built on:
//!
//! - [`Matrix`]: a row-major dense `f64` matrix with the usual arithmetic,
//!   matrix multiplication, and transposition.
//! - [`cholesky`]: Cholesky factorisation and SPD linear solves (used by the
//!   closed-form ridge-regression baseline).
//! - [`eigen`]: a cyclic Jacobi eigendecomposition for symmetric matrices.
//! - [`pca`]: principal component analysis on top of [`eigen`], used to
//!   project the learned environment embeddings to 2-D (paper Figure 6).
//! - [`stats`]: descriptive statistics (Welford mean/variance, quantiles,
//!   Pearson correlation) used throughout the evaluation harness.
//!
//! All routines are deterministic and allocation-explicit. Large
//! `matmul`/`matvec`/`col_means` calls fan out over the
//! [`env2vec_par`] worker pool, under that crate's contract that results
//! stay bit-identical to single-threaded execution (fixed chunk
//! boundaries, fixed reduction order). Fallible operations return
//! [`Error`] rather than panicking.

#![warn(missing_docs)]

pub mod cholesky;
pub mod eigen;
pub mod error;
mod gemm;
pub mod matrix;
pub mod pca;
pub mod stats;
pub mod vector;

pub use error::{Error, Result};
pub use matrix::Matrix;
