//! Principal component analysis.
//!
//! Figure 6 of the paper projects the concatenated environment embeddings of
//! every test execution to two dimensions with PCA, showing that executions
//! with the same build type cluster together. This module implements exactly
//! that pipeline: centre the samples, form the covariance matrix, take its
//! leading eigenvectors (via [`crate::eigen`]), and project.

use crate::eigen::symmetric_eigen;
use crate::error::{Error, Result};
use crate::matrix::Matrix;

/// A fitted PCA transform.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// Component matrix: one principal axis per *row*.
    components: Matrix,
    /// Variance explained by each retained component, descending.
    explained_variance: Vec<f64>,
}

impl Pca {
    /// Fits a PCA with `n_components` axes on the rows of `data`.
    ///
    /// Each row of `data` is one sample. Returns an error when `data` has no
    /// rows, `n_components` is zero, or exceeds the feature count.
    pub fn fit(data: &Matrix, n_components: usize) -> Result<Self> {
        if data.rows() == 0 {
            return Err(Error::Empty { routine: "pca fit" });
        }
        if n_components == 0 || n_components > data.cols() {
            return Err(Error::InvalidArgument {
                what: "n_components must be in 1..=cols",
            });
        }
        let mean = data.col_means();
        let centered = Matrix::from_fn(data.rows(), data.cols(), |i, j| data.get(i, j) - mean[j]);
        // Covariance with the 1/(n-1) convention (1/n degenerate case: n=1).
        let denom = if data.rows() > 1 {
            (data.rows() - 1) as f64
        } else {
            1.0
        };
        let cov = centered.gram().scale(1.0 / denom);
        let eig = symmetric_eigen(&cov)?;
        let components = Matrix::from_fn(n_components, data.cols(), |i, j| eig.vectors.get(j, i));
        let explained_variance = eig.values[..n_components].to_vec();
        Ok(Pca {
            mean,
            components,
            explained_variance,
        })
    }

    /// Projects samples (rows of `data`) into the principal subspace.
    ///
    /// Returns an error when the feature count differs from the fit data.
    pub fn transform(&self, data: &Matrix) -> Result<Matrix> {
        if data.cols() != self.mean.len() {
            return Err(Error::ShapeMismatch {
                op: "pca transform",
                lhs: data.shape(),
                rhs: (1, self.mean.len()),
            });
        }
        let centered = Matrix::from_fn(data.rows(), data.cols(), |i, j| {
            data.get(i, j) - self.mean[j]
        });
        centered.matmul(&self.components.transpose())
    }

    /// Fits on `data` and immediately projects it.
    pub fn fit_transform(data: &Matrix, n_components: usize) -> Result<(Pca, Matrix)> {
        let pca = Pca::fit(data, n_components)?;
        let projected = pca.transform(data)?;
        Ok((pca, projected))
    }

    /// Variance captured by each retained component, descending.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Fraction of total variance captured by each retained component.
    ///
    /// Based on the retained eigenvalues over the total variance of the
    /// training data; sums to ≤ 1.
    pub fn explained_variance_ratio(&self, total_variance: f64) -> Vec<f64> {
        if total_variance <= 0.0 {
            return vec![0.0; self.explained_variance.len()];
        }
        self.explained_variance
            .iter()
            .map(|v| v / total_variance)
            .collect()
    }

    /// The per-feature mean subtracted before projection.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Principal axes, one per row.
    pub fn components(&self) -> &Matrix {
        &self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Samples lying (noisily) on the line y = 2x in 2-D.
    fn line_data() -> Matrix {
        let xs = [-2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0];
        Matrix::from_rows(&xs.iter().map(|&x| vec![x, 2.0 * x]).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn first_component_aligns_with_dominant_direction() {
        let pca = Pca::fit(&line_data(), 1).unwrap();
        let c = pca.components().row(0);
        // Direction (1, 2)/sqrt(5), up to sign.
        let expect = [1.0 / 5.0_f64.sqrt(), 2.0 / 5.0_f64.sqrt()];
        let dot: f64 = c.iter().zip(expect.iter()).map(|(a, b)| a * b).sum();
        assert!(dot.abs() > 0.999, "component {c:?}");
    }

    #[test]
    fn projection_preserves_pairwise_order_on_line() {
        let data = line_data();
        let (_, proj) = Pca::fit_transform(&data, 1).unwrap();
        // Projections must be monotone in x (up to global sign).
        let sign = (proj.get(6, 0) - proj.get(0, 0)).signum();
        for i in 1..proj.rows() {
            assert!(sign * (proj.get(i, 0) - proj.get(i - 1, 0)) > 0.0);
        }
    }

    #[test]
    fn second_component_captures_no_variance_on_exact_line() {
        let pca = Pca::fit(&line_data(), 2).unwrap();
        assert!(pca.explained_variance()[1].abs() < 1e-10);
    }

    #[test]
    fn transform_centers_training_mean_to_origin() {
        let data = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 14.0]]).unwrap();
        let pca = Pca::fit(&data, 2).unwrap();
        let mean_row = Matrix::row_vector(&[2.0, 12.0]);
        let proj = pca.transform(&mean_row).unwrap();
        assert!(proj.get(0, 0).abs() < 1e-10);
        assert!(proj.get(0, 1).abs() < 1e-10);
    }

    #[test]
    fn rejects_bad_arguments() {
        let data = line_data();
        assert!(Pca::fit(&data, 0).is_err());
        assert!(Pca::fit(&data, 3).is_err());
        assert!(Pca::fit(&Matrix::zeros(0, 2), 1).is_err());
        let pca = Pca::fit(&data, 1).unwrap();
        assert!(pca.transform(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn explained_variance_ratio_bounds() {
        let data = line_data();
        let pca = Pca::fit(&data, 2).unwrap();
        let total: f64 = pca.explained_variance().iter().sum();
        let ratio = pca.explained_variance_ratio(total);
        assert!((ratio.iter().sum::<f64>() - 1.0).abs() < 1e-10);
        assert!(pca.explained_variance_ratio(0.0).iter().all(|&r| r == 0.0));
    }
}
