//! Free functions on `&[f64]` vectors.
//!
//! These helpers cover the dot products, norms, and element-wise combinations
//! used in the GRU recurrence, the SVR kernel evaluations, and the anomaly
//! scoring. They are deliberately slice-based so callers can use plain
//! `Vec<f64>` rows without wrapping them in [`crate::Matrix`].

use crate::error::{Error, Result};

/// Dot product of two equal-length vectors.
///
/// Returns an error when lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(Error::ShapeMismatch {
            op: "dot",
            lhs: (a.len(), 1),
            rhs: (b.len(), 1),
        });
    }
    Ok(a.iter().zip(b).map(|(x, y)| x * y).sum())
}

/// Euclidean (L2) norm.
pub fn norm(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Squared Euclidean distance between two equal-length vectors.
///
/// Returns an error when lengths differ.
pub fn squared_distance(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(Error::ShapeMismatch {
            op: "squared_distance",
            lhs: (a.len(), 1),
            rhs: (b.len(), 1),
        });
    }
    Ok(a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum())
}

/// Element-wise sum of two equal-length vectors.
///
/// Returns an error when lengths differ.
pub fn add(a: &[f64], b: &[f64]) -> Result<Vec<f64>> {
    if a.len() != b.len() {
        return Err(Error::ShapeMismatch {
            op: "vec add",
            lhs: (a.len(), 1),
            rhs: (b.len(), 1),
        });
    }
    Ok(a.iter().zip(b).map(|(x, y)| x + y).collect())
}

/// `a + alpha * b` for equal-length vectors, in place on `a`.
///
/// Returns an error when lengths differ.
pub fn axpy(a: &mut [f64], alpha: f64, b: &[f64]) -> Result<()> {
    if a.len() != b.len() {
        return Err(Error::ShapeMismatch {
            op: "vec axpy",
            lhs: (a.len(), 1),
            rhs: (b.len(), 1),
        });
    }
    for (x, &y) in a.iter_mut().zip(b) {
        *x += alpha * y;
    }
    Ok(())
}

/// Scales every element of `a` by `alpha` in place.
pub fn scale(a: &mut [f64], alpha: f64) {
    for x in a {
        *x *= alpha;
    }
}

/// Element-wise (Hadamard) product of two equal-length vectors.
///
/// Returns an error when lengths differ.
pub fn hadamard(a: &[f64], b: &[f64]) -> Result<Vec<f64>> {
    if a.len() != b.len() {
        return Err(Error::ShapeMismatch {
            op: "vec hadamard",
            lhs: (a.len(), 1),
            rhs: (b.len(), 1),
        });
    }
    Ok(a.iter().zip(b).map(|(x, y)| x * y).collect())
}

/// Index and value of the maximum element.
///
/// Returns an error for an empty slice; ties resolve to the first maximum.
pub fn argmax(a: &[f64]) -> Result<(usize, f64)> {
    if a.is_empty() {
        return Err(Error::Empty { routine: "argmax" });
    }
    let mut best = (0, a[0]);
    for (i, &x) in a.iter().enumerate().skip(1) {
        if x > best.1 {
            best = (i, x);
        }
    }
    Ok(best)
}

/// Index and value of the minimum element.
///
/// Returns an error for an empty slice; ties resolve to the first minimum.
pub fn argmin(a: &[f64]) -> Result<(usize, f64)> {
    if a.is_empty() {
        return Err(Error::Empty { routine: "argmin" });
    }
    let mut best = (0, a[0]);
    for (i, &x) in a.iter().enumerate().skip(1) {
        if x < best.1 {
            best = (i, x);
        }
    }
    Ok(best)
}

/// Normalises `a` to unit L2 norm in place; a zero vector is left unchanged.
pub fn normalize(a: &mut [f64]) {
    let n = norm(a);
    if n > 0.0 {
        scale(a, 1.0 / n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]).unwrap(), 11.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert!(dot(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn distances() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]).unwrap(), 25.0);
        assert!(squared_distance(&[0.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn add_and_hadamard() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]).unwrap(), vec![4.0, 6.0]);
        assert_eq!(hadamard(&[1.0, 2.0], &[3.0, 4.0]).unwrap(), vec![3.0, 8.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = vec![1.0, 1.0];
        axpy(&mut a, 2.0, &[1.0, 3.0]).unwrap();
        assert_eq!(a, vec![3.0, 7.0]);
        scale(&mut a, 0.5);
        assert_eq!(a, vec![1.5, 3.5]);
    }

    #[test]
    fn arg_extrema() {
        let v = [1.0, 5.0, 5.0, -2.0];
        assert_eq!(argmax(&v).unwrap(), (1, 5.0));
        assert_eq!(argmin(&v).unwrap(), (3, -2.0));
        assert!(argmax(&[]).is_err());
        assert!(argmin(&[]).is_err());
    }

    #[test]
    fn normalize_unit_and_zero() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }
}
