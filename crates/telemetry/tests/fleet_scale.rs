//! Fleet-scale golden regression: the sharded, compressed engine must
//! return bit-identical query results to a naive uncompressed reference
//! at the ROADMAP's working scale — 10k series × 1k samples (10M
//! samples), generated with `datagen`'s stochastic-process helpers so
//! values are full-precision floats (the XOR codec's hardest case, not
//! its friendliest).
//!
//! The reference implementation lives in this file on purpose: it is the
//! old storage model (one `Vec<Sample>` per series, sorted insert,
//! linear matcher scan), kept alive as an executable specification that
//! cannot silently evolve with the engine.

use env2vec_datagen::process;
use env2vec_telemetry::{LabelMatcher, LabelSet, Sample, TimeSeriesDb};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SERIES: usize = 10_000;
const SAMPLES_PER_SERIES: usize = 1_000;
/// Scrape stride in logical time units.
const STRIDE: i64 = 30;

/// The pre-shard storage model: label set + sorted `Vec<Sample>`, one
/// entry per series, matchers applied by linear scan.
struct NaiveDb {
    series: Vec<(LabelSet, Vec<Sample>)>,
}

impl NaiveDb {
    fn new() -> Self {
        NaiveDb { series: Vec::new() }
    }

    /// Sorted insert, equal timestamps kept in arrival order — the
    /// append semantics the engine documents.
    fn append(&mut self, idx: usize, s: Sample) {
        let samples = &mut self.series[idx].1;
        let at = samples.partition_point(|x| x.timestamp <= s.timestamp);
        samples.insert(at, s);
    }

    fn query_range(
        &self,
        matchers: &[LabelMatcher],
        start: i64,
        end: i64,
    ) -> Vec<(LabelSet, Vec<Sample>)> {
        let mut out: Vec<(LabelSet, Vec<Sample>)> = self
            .series
            .iter()
            .filter(|(labels, _)| labels.matches(matchers))
            .map(|(labels, samples)| {
                let lo = samples.partition_point(|x| x.timestamp < start);
                let hi = samples.partition_point(|x| x.timestamp <= end);
                (labels.clone(), samples[lo..hi].to_vec())
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn query_instant(&self, matchers: &[LabelMatcher], at: i64) -> Vec<(LabelSet, Sample)> {
        let mut out: Vec<(LabelSet, Sample)> = self
            .series
            .iter()
            .filter(|(labels, _)| labels.matches(matchers))
            .filter_map(|(labels, samples)| {
                let hi = samples.partition_point(|x| x.timestamp <= at);
                if hi == 0 {
                    None
                } else {
                    Some((labels.clone(), samples[hi - 1]))
                }
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

fn fleet_labels() -> Vec<LabelSet> {
    (0..SERIES)
        .map(|i| {
            LabelSet::new()
                .with("env", format!("EM_{:04}", i % 400))
                .with("exec", format!("run_{:05}", i / 400))
                .with("testbed", format!("Testbed_{}", i % 97))
        })
        .collect()
}

/// Per-series signal: shared diurnal load shape (phase-shifted per
/// series) plus AR(1) noise — full-precision values, no quantization.
fn series_values(series: usize, diurnal: &[f64]) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(0x5eed ^ (series as u64).wrapping_mul(0x9e37_79b9));
    let noise = process::ar1(&mut rng, SAMPLES_PER_SERIES, 0.8, 2.5);
    (0..SAMPLES_PER_SERIES)
        .map(|t| 20.0 + 55.0 * diurnal[(t + series * 7) % diurnal.len()] + noise[t])
        .collect()
}

fn assert_range_identical(
    engine: &[env2vec_telemetry::tsdb::Series],
    naive: &[(LabelSet, Vec<Sample>)],
    what: &str,
) {
    assert_eq!(engine.len(), naive.len(), "{what}: series count");
    for (got, want) in engine.iter().zip(naive) {
        assert_eq!(got.labels, want.0, "{what}: series order");
        assert_eq!(
            got.samples.len(),
            want.1.len(),
            "{what}: sample count for {}",
            got.labels
        );
        for (a, b) in got.samples.iter().zip(&want.1) {
            assert_eq!(a.timestamp, b.timestamp, "{what}: timestamp");
            assert_eq!(
                a.value.to_bits(),
                b.value.to_bits(),
                "{what}: value bits at t={}",
                a.timestamp
            );
        }
    }
}

#[test]
fn fleet_scale_matches_naive_reference() {
    let labels = fleet_labels();
    let diurnal = process::diurnal(SAMPLES_PER_SERIES, 5.0, 0.0);

    // Default config: 16 shards, compression on — 10M samples seal
    // roughly 3 chunks per series, so most data is read back through
    // the codec.
    let db = TimeSeriesDb::new();
    let mut naive = NaiveDb::new();
    for (i, ls) in labels.iter().enumerate() {
        let values = series_values(i, &diurnal);
        let samples: Vec<Sample> = values
            .iter()
            .enumerate()
            .map(|(t, &v)| Sample {
                timestamp: t as i64 * STRIDE,
                value: v,
            })
            .collect();
        db.append_series("cpu_usage", ls, &samples);
        naive.series.push((ls.clone(), samples));
    }
    assert_eq!(db.num_series(), SERIES);
    assert_eq!(db.num_samples(), SERIES * SAMPLES_PER_SERIES);

    // Late out-of-order stragglers (below sealed chunks) plus duplicate
    // timestamps, mirrored into the reference the same way.
    for (i, ls) in labels.iter().take(50).enumerate() {
        for k in 0..5i64 {
            let s = Sample {
                timestamp: 10 * STRIDE + k * STRIDE + 1,
                value: 1000.0 + i as f64 + k as f64 / 7.0,
            };
            db.append("cpu_usage", ls, s);
            naive.append(i, s);
        }
        // An exact duplicate of an existing sealed timestamp.
        let dup = Sample {
            timestamp: 5 * STRIDE,
            value: f64::NAN,
        };
        db.append("cpu_usage", ls, dup);
        naive.append(i, dup);
    }
    let stats = db.stats();
    assert!(stats.out_of_order_inserts > 0, "splice path exercised");
    assert!(stats.sealed_chunks >= SERIES, "bulk data mostly sealed");

    let span = SAMPLES_PER_SERIES as i64 * STRIDE;

    // One env — 25 series, full range (includes the spliced series).
    for env in ["EM_0000", "EM_0017", "EM_0399"] {
        let m = [LabelMatcher::eq("env", env)];
        assert_range_identical(
            &db.query_range("cpu_usage", &m, i64::MIN, i64::MAX),
            &naive.query_range(&m, i64::MIN, i64::MAX),
            env,
        );
    }

    // Conjunction pinning one exact series, interior window.
    let m = [
        LabelMatcher::eq("env", "EM_0123"),
        LabelMatcher::eq("exec", "run_00003"),
    ];
    assert_range_identical(
        &db.query_range("cpu_usage", &m, span / 4, 3 * span / 4),
        &naive.query_range(&m, span / 4, 3 * span / 4),
        "conjunction",
    );

    // In-matcher across three envs, mid window.
    let m = [LabelMatcher::In(
        "env".into(),
        vec!["EM_0001".into(), "EM_0042".into(), "EM_0300".into()],
    )];
    assert_range_identical(
        &db.query_range("cpu_usage", &m, span / 3, span / 2),
        &naive.query_range(&m, span / 3, span / 2),
        "in-matcher",
    );

    // Negation hits ~9975 series — keep the window narrow so the
    // comparison stays cheap.
    let m = [LabelMatcher::NotEq("env".into(), "EM_0000".into())];
    assert_range_identical(
        &db.query_range("cpu_usage", &m, 100 * STRIDE, 103 * STRIDE),
        &naive.query_range(&m, 100 * STRIDE, 103 * STRIDE),
        "negation",
    );

    // Matcher on an absent label selects nothing.
    let m = [LabelMatcher::eq("no_such_label", "x")];
    assert!(db.query_range("cpu_usage", &m, 0, span).is_empty());

    // Instant queries, including probes inside sealed chunks and before
    // the first sample.
    for (at, m) in [
        (span / 2, vec![LabelMatcher::eq("env", "EM_0007")]),
        (7 * STRIDE + 1, vec![LabelMatcher::eq("env", "EM_0000")]),
        (-1, vec![LabelMatcher::eq("env", "EM_0001")]),
    ] {
        let got = db.query_instant("cpu_usage", &m, at);
        let want = naive.query_instant(&m, at);
        assert_eq!(got.len(), want.len(), "instant at {at}: series count");
        for (a, b) in got.iter().zip(&want) {
            assert_eq!(a.0, b.0, "instant at {at}: labels");
            assert_eq!(a.1.timestamp, b.1.timestamp, "instant at {at}: ts");
            assert_eq!(
                a.1.value.to_bits(),
                b.1.value.to_bits(),
                "instant at {at}: value bits"
            );
        }
    }
}
