//! Property-based tests for the telemetry substrate.

use env2vec_telemetry::alarms::{AlarmStore, NewAlarm};
use env2vec_telemetry::codec;
use env2vec_telemetry::discovery::{ScrapeTarget, ServiceDiscovery};
use env2vec_telemetry::labels::{LabelMatcher, LabelSet};
use env2vec_telemetry::tsdb::{Sample, TimeSeriesDb, TsdbConfig};
use proptest::prelude::*;

proptest! {
    /// The Gorilla codec round-trips arbitrary samples bit-for-bit:
    /// any timestamps (unsorted, duplicated, extreme) and any value bit
    /// patterns (including NaNs with payloads, infinities, subnormals).
    #[test]
    fn codec_round_trip_is_bit_exact(
        raw in proptest::collection::vec(
            (i64::MIN..=i64::MAX, u64::MIN..=u64::MAX),
            0..120,
        ),
    ) {
        let samples: Vec<Sample> = raw
            .iter()
            .map(|&(timestamp, bits)| Sample { timestamp, value: f64::from_bits(bits) })
            .collect();
        let encoded = codec::encode(&samples);
        let decoded = codec::decode(&encoded).expect("well-formed stream must decode");
        prop_assert_eq!(decoded.len(), samples.len());
        for (a, b) in samples.iter().zip(&decoded) {
            prop_assert_eq!(a.timestamp, b.timestamp);
            prop_assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
    }

    /// Sealing/compression never changes what queries return: the same
    /// writes into a compressed and an uncompressed database yield
    /// bit-identical range results, whatever the shard count.
    #[test]
    fn compressed_db_matches_uncompressed(
        raw in proptest::collection::vec((0i64..2000, u64::MIN..=u64::MAX), 1..400),
        num_shards in 1usize..8,
    ) {
        let compressed = TimeSeriesDb::with_config(TsdbConfig {
            num_shards,
            seal_after: 32,
            compress: true,
        });
        let flat = TimeSeriesDb::with_config(TsdbConfig {
            num_shards: 1,
            compress: false,
            ..TsdbConfig::default()
        });
        let labels = LabelSet::new().with("env", "E");
        for &(timestamp, bits) in &raw {
            let s = Sample { timestamp, value: f64::from_bits(bits) };
            compressed.append("m", &labels, s);
            flat.append("m", &labels, s);
        }
        let a = compressed.query_range("m", &[], i64::MIN, i64::MAX);
        let b = flat.query_range("m", &[], i64::MIN, i64::MAX);
        prop_assert_eq!(a.len(), 1);
        prop_assert_eq!(a[0].samples.len(), b[0].samples.len());
        for (x, y) in a[0].samples.iter().zip(&b[0].samples) {
            prop_assert_eq!(x.timestamp, y.timestamp);
            prop_assert_eq!(x.value.to_bits(), y.value.to_bits());
        }
    }

    /// Whatever order samples arrive in, range queries return them sorted
    /// and complete.
    #[test]
    fn tsdb_returns_sorted_complete_series(
        mut timestamps in proptest::collection::vec(0i64..1000, 1..50),
    ) {
        let db = TimeSeriesDb::new();
        let labels = LabelSet::new().with("env", "E");
        for &t in &timestamps {
            db.append("m", &labels, Sample { timestamp: t, value: t as f64 });
        }
        let series = db.query_range("m", &[], i64::MIN, i64::MAX);
        prop_assert_eq!(series.len(), 1);
        let got: Vec<i64> = series[0].samples.iter().map(|s| s.timestamp).collect();
        timestamps.sort_unstable();
        prop_assert_eq!(got, timestamps);
    }

    /// An instant query returns the latest sample at or before the probe,
    /// for any probe point.
    #[test]
    fn tsdb_instant_is_latest_at_or_before(
        timestamps in proptest::collection::btree_set(0i64..500, 1..30),
        probe in -10i64..510,
    ) {
        let db = TimeSeriesDb::new();
        let labels = LabelSet::new().with("env", "E");
        for &t in &timestamps {
            db.append("m", &labels, Sample { timestamp: t, value: t as f64 });
        }
        let res = db.query_instant("m", &[], probe);
        let expected = timestamps.iter().copied().filter(|&t| t <= probe).max();
        match expected {
            None => prop_assert!(res.is_empty()),
            Some(t) => {
                prop_assert_eq!(res.len(), 1);
                prop_assert_eq!(res[0].1.timestamp, t);
            }
        }
    }

    /// Range queries partition cleanly: [a, m] ∪ (m, b] = [a, b].
    #[test]
    fn tsdb_range_partition(
        timestamps in proptest::collection::btree_set(0i64..200, 1..40),
        mid in 0i64..200,
    ) {
        let db = TimeSeriesDb::new();
        let labels = LabelSet::new().with("env", "E");
        for &t in &timestamps {
            db.append("m", &labels, Sample { timestamp: t, value: 1.0 });
        }
        let count = |lo: i64, hi: i64| -> usize {
            db.query_range("m", &[], lo, hi)
                .first()
                .map(|s| s.samples.len())
                .unwrap_or(0)
        };
        prop_assert_eq!(count(0, 199), count(0, mid) + count(mid + 1, 199));
    }

    /// Matchers are consistent: Eq and NotEq partition any series set.
    #[test]
    fn matchers_partition_series(n_series in 1usize..10, probe in 0usize..10) {
        let db = TimeSeriesDb::new();
        for s in 0..n_series {
            let labels = LabelSet::new().with("env", format!("E{s}"));
            db.append("m", &labels, Sample { timestamp: 0, value: 0.0 });
        }
        let key = format!("E{probe}");
        let eq = db.query_range("m", &[LabelMatcher::eq("env", key.clone())], 0, 0).len();
        let ne = db
            .query_range("m", &[LabelMatcher::NotEq("env".into(), key)], 0, 0)
            .len();
        prop_assert_eq!(eq + ne, n_series);
    }

    /// Alarm ids are dense and queries never invent alarms.
    #[test]
    fn alarm_store_id_density(count in 0usize..30) {
        let store = AlarmStore::new();
        for i in 0..count {
            let id = store.push(NewAlarm {
                env: LabelSet::new().with("env", format!("E{}", i % 3)),
                metric: "cpu".into(),
                start: i as i64,
                end: i as i64 + 1,
                gamma: 1.0,
                predicted: 0.0,
                observed: 10.0,
                message: String::new(),
            });
            prop_assert_eq!(id, i as u64);
        }
        prop_assert_eq!(store.len(), count);
        let by_env: usize = (0..3).map(|e| store.by_env_label("env", &format!("E{e}")).len()).sum();
        prop_assert_eq!(by_env, count);
    }

    /// Service-discovery JSON round-trips for arbitrary registrations.
    #[test]
    fn discovery_json_round_trip(envs in proptest::collection::vec("[A-Za-z0-9_]{1,12}", 0..10)) {
        let mut sd = ServiceDiscovery::new();
        for (i, env) in envs.iter().enumerate() {
            sd.register(ScrapeTarget::for_env(format!("10.0.0.{i}:9100"), env.clone()));
        }
        let back = ServiceDiscovery::from_json(&sd.to_json()).unwrap();
        prop_assert_eq!(back, sd);
    }
}
