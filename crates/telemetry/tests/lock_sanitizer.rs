//! Runtime lock-order sanitizer tests (only built with the
//! `lock-sanitizer` feature: `cargo test -p env2vec-telemetry
//! --features lock-sanitizer`).
//!
//! Each test uses its own fresh lock instances, so the process-global
//! order graph never couples one test to another.
#![cfg(feature = "lock-sanitizer")]

use std::sync::{Arc, Condvar};

use env2vec_telemetry::locks::{self, TrackedMutex, TrackedRwLock};

#[test]
fn consistent_order_is_silent() {
    let a = TrackedMutex::new("ok.a", 1u64);
    let b = TrackedMutex::new("ok.b", 2u64);
    for _ in 0..3 {
        let ga = a.lock();
        let gb = b.lock();
        assert_eq!(*ga + *gb, 3);
    }
}

#[test]
#[should_panic(expected = "lock-order cycle")]
fn abba_nesting_panics_with_both_stacks() {
    // The sanitizer needs each order *observed*, not an actual collision:
    // one thread exercising a→b then b→a is a deliberate deadlock-in-
    // waiting and must trip on the second nesting.
    let a = TrackedMutex::new("abba.a", ());
    let b = TrackedMutex::new("abba.b", ());
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    {
        let _gb = b.lock();
        let _ga = a.lock(); // cycle: order b→a after a→b
    }
}

#[test]
#[should_panic(expected = "lock-order cycle")]
fn cross_thread_abba_panics() {
    // The conflicting orders come from different threads; the graph is
    // process-wide, so the second thread still trips.
    let a = Arc::new(TrackedMutex::new("xthread.a", ()));
    let b = Arc::new(TrackedMutex::new("xthread.b", ()));
    {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        std::thread::spawn(move || {
            let _ga = a.lock();
            let _gb = b.lock();
        })
        .join()
        .expect("first-order thread");
    }
    let _gb = b.lock();
    let _ga = a.lock();
}

#[test]
#[should_panic(expected = "reentrant")]
fn reentrant_mutex_acquisition_panics() {
    let m = TrackedMutex::new("reentrant.m", ());
    let _g1 = m.lock();
    let _g2 = m.lock(); // would self-deadlock without the sanitizer
}

#[test]
#[should_panic(expected = "lock-order cycle")]
fn rwlock_participates_in_the_order_graph() {
    let m = TrackedMutex::new("rw.m", ());
    let r = TrackedRwLock::new("rw.r", ());
    {
        let _gm = m.lock();
        let _gr = r.read();
    }
    {
        let _gr = r.write();
        let _gm = m.lock();
    }
}

#[test]
fn transitive_cycle_through_three_locks_panics() {
    // a→b, b→c recorded; acquiring a while holding c closes the cycle
    // through the transitive path, not a direct reverse edge.
    let result = std::thread::Builder::new()
        .name("transitive".to_string())
        .spawn(|| {
            let a = TrackedMutex::new("tri.a", ());
            let b = TrackedMutex::new("tri.b", ());
            let c = TrackedMutex::new("tri.c", ());
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            {
                let _gb = b.lock();
                let _gc = c.lock();
            }
            let _gc = c.lock();
            let _ga = a.lock();
        })
        .expect("spawn")
        .join();
    let payload = result.expect_err("transitive cycle must panic");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        msg.contains("lock-order cycle"),
        "unexpected message: {msg}"
    );
    assert!(msg.contains("tri.a") && msg.contains("tri.c"), "{msg}");
}

#[test]
fn condvar_wait_releases_the_held_id() {
    // A consumer parked in wait() must not count as "holding" the mutex:
    // the producer locking the same mutex plus another lock would
    // otherwise record phantom edges. Exercises the take/re-register
    // path in locks::wait end to end.
    let pair = Arc::new((TrackedMutex::new("cv.m", false), Condvar::new()));
    let waiter = {
        let pair = Arc::clone(&pair);
        std::thread::spawn(move || {
            let (m, cv) = (&pair.0, &pair.1);
            let mut ready = m.lock();
            while !*ready {
                ready = locks::wait(cv, ready);
            }
            true
        })
    };
    // Give the waiter a moment to park, then flip the flag.
    std::thread::sleep(std::time::Duration::from_millis(20));
    {
        let (m, cv) = (&pair.0, &pair.1);
        *m.lock() = true;
        cv.notify_all();
    }
    assert!(waiter.join().expect("waiter thread"));
}

#[test]
fn guards_deref_to_the_protected_data() {
    let m = TrackedMutex::new("deref.m", vec![1, 2]);
    m.lock().push(3);
    assert_eq!(*m.lock(), vec![1, 2, 3]);
    let r = TrackedRwLock::new("deref.r", 10u32);
    *r.write() += 5;
    assert_eq!(*r.read(), 15);
}
