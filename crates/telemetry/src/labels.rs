//! Label sets and matchers (the Prometheus data model).
//!
//! A time series is identified by its metric name plus a [`LabelSet`] —
//! sorted `key=value` pairs. Queries select series with [`LabelMatcher`]s.
//! In the paper's workflow the critical label is `env`, the environment-
//! metadata record id linking every sample to its testbed/SUT/test-case/
//! build tuple.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A sorted set of `key=value` labels.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LabelSet {
    labels: BTreeMap<String, String>,
}

impl LabelSet {
    /// Creates an empty label set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insertion.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.insert(key.into(), value.into());
        self
    }

    /// Inserts or replaces a label.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.labels.insert(key.into(), value.into());
    }

    /// Value of a label, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.labels.get(key).map(String::as_str)
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the set has no labels.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterates over `(key, value)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.labels.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Whether this set satisfies every matcher.
    pub fn matches(&self, matchers: &[LabelMatcher]) -> bool {
        matchers.iter().all(|m| m.matches(self))
    }
}

impl fmt::Display for LabelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{k}=\"{v}\"")?;
        }
        write!(f, "}}")
    }
}

/// A selector over label sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelMatcher {
    /// Label must exist and equal the value.
    Eq(String, String),
    /// Label must be absent or differ from the value.
    NotEq(String, String),
    /// Label must exist and be one of the values.
    In(String, Vec<String>),
}

impl LabelMatcher {
    /// Convenience constructor for equality matching.
    pub fn eq(key: impl Into<String>, value: impl Into<String>) -> Self {
        LabelMatcher::Eq(key.into(), value.into())
    }

    /// Whether a label set satisfies this matcher.
    pub fn matches(&self, labels: &LabelSet) -> bool {
        match self {
            LabelMatcher::Eq(k, v) => labels.get(k) == Some(v.as_str()),
            LabelMatcher::NotEq(k, v) => labels.get(k) != Some(v.as_str()),
            LabelMatcher::In(k, vs) => labels
                .get(k)
                .map(|actual| vs.iter().any(|v| v == actual))
                .unwrap_or(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_labels() -> LabelSet {
        LabelSet::new()
            .with("env", "EM_0042")
            .with("testbed", "Testbed_13")
            .with("metric_kind", "cpu")
    }

    #[test]
    fn get_set_and_len() {
        let mut ls = sample_labels();
        assert_eq!(ls.get("env"), Some("EM_0042"));
        assert_eq!(ls.get("missing"), None);
        assert_eq!(ls.len(), 3);
        ls.set("env", "EM_0001");
        assert_eq!(ls.get("env"), Some("EM_0001"));
        assert_eq!(ls.len(), 3);
    }

    #[test]
    fn display_is_sorted_prometheus_style() {
        let ls = LabelSet::new().with("b", "2").with("a", "1");
        assert_eq!(ls.to_string(), "{a=\"1\",b=\"2\"}");
        assert_eq!(LabelSet::new().to_string(), "{}");
    }

    #[test]
    fn eq_and_noteq_matchers() {
        let ls = sample_labels();
        assert!(LabelMatcher::eq("env", "EM_0042").matches(&ls));
        assert!(!LabelMatcher::eq("env", "other").matches(&ls));
        assert!(!LabelMatcher::eq("absent", "x").matches(&ls));
        assert!(LabelMatcher::NotEq("env".into(), "other".into()).matches(&ls));
        assert!(!LabelMatcher::NotEq("env".into(), "EM_0042".into()).matches(&ls));
        // NotEq matches when the label is absent.
        assert!(LabelMatcher::NotEq("absent".into(), "x".into()).matches(&ls));
    }

    #[test]
    fn in_matcher() {
        let ls = sample_labels();
        let m = LabelMatcher::In(
            "testbed".into(),
            vec!["Testbed_12".into(), "Testbed_13".into()],
        );
        assert!(m.matches(&ls));
        let m2 = LabelMatcher::In("testbed".into(), vec!["Testbed_01".into()]);
        assert!(!m2.matches(&ls));
        let m3 = LabelMatcher::In("absent".into(), vec!["x".into()]);
        assert!(!m3.matches(&ls));
    }

    #[test]
    fn matches_all_requires_every_matcher() {
        let ls = sample_labels();
        let ms = vec![
            LabelMatcher::eq("env", "EM_0042"),
            LabelMatcher::eq("metric_kind", "cpu"),
        ];
        assert!(ls.matches(&ms));
        let bad = vec![
            LabelMatcher::eq("env", "EM_0042"),
            LabelMatcher::eq("metric_kind", "memory"),
        ];
        assert!(!ls.matches(&bad));
        assert!(ls.matches(&[]));
    }

    #[test]
    fn serde_round_trip() {
        let ls = sample_labels();
        let json = serde_json::to_string(&ls).unwrap();
        let back: LabelSet = serde_json::from_str(&json).unwrap();
        assert_eq!(ls, back);
    }
}
