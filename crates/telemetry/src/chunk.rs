//! Chunked per-series storage: an open head plus sealed compressed tail.
//!
//! Each series in the TSDB is a [`SeriesStore`]: a time-ordered run of
//! [`Chunk`]s where every chunk except the last is [`Chunk::Sealed`]
//! (Gorilla-compressed via [`crate::codec`]) and the last is always the
//! [`Chunk::Open`] head taking new writes. Once the head reaches the
//! database's seal threshold it is compressed in place and a fresh head
//! is opened.
//!
//! Invariants, maintained by every mutation:
//!
//! - samples within a chunk are sorted by timestamp (duplicates allowed);
//! - chunk time ranges never overlap: `chunk[i].end <= chunk[i+1].start`,
//!   and every head sample is `>=` the last sealed end;
//! - decode is exact — a sealed chunk yields the same `f64` bit patterns
//!   that were appended.
//!
//! Writes that land inside sealed territory (out-of-order scraper
//! traffic) decode the owning chunk, splice, and re-seal; callers get
//! that fact back so the database can count it.

use crate::codec::{self, EncodedChunk};
use crate::tsdb::Sample;

/// A compressed, immutable-until-rewritten run of samples.
#[derive(Debug, Clone)]
pub struct SealedChunk {
    encoded: EncodedChunk,
    /// Timestamp of the first (earliest) sample.
    start: i64,
    /// Timestamp of the last (latest) sample.
    end: i64,
}

impl SealedChunk {
    /// Compresses `samples` (must be non-empty and time-sorted).
    fn seal(samples: &[Sample]) -> Option<SealedChunk> {
        let (first, last) = (samples.first()?, samples.last()?);
        Some(SealedChunk {
            start: first.timestamp,
            end: last.timestamp,
            encoded: codec::encode(samples),
        })
    }

    /// Decompresses back into the exact original samples.
    ///
    /// Chunks are only ever built by `codec::encode` in this process, so
    /// the stream is always well-formed; the empty fallback is
    /// unreachable short of memory corruption.
    fn samples(&self) -> Vec<Sample> {
        codec::decode(&self.encoded).unwrap_or_default()
    }

    /// Number of samples inside.
    fn count(&self) -> usize {
        self.encoded.count()
    }
}

/// One storage unit of a series: either the mutable head or a sealed
/// compressed block.
#[derive(Debug, Clone)]
pub enum Chunk {
    /// The uncompressed head taking new appends, sorted by timestamp.
    Open(Vec<Sample>),
    /// A compressed block of older samples.
    Sealed(SealedChunk),
}

/// What a write did, so the database can keep its counters without
/// re-deriving anything under the shard lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// A new sample was stored (false: an upsert replaced in place).
    pub inserted: bool,
    /// The write landed inside already-sealed territory and forced a
    /// decode/splice/re-seal cycle.
    pub rewrote_sealed: bool,
}

/// All chunks of one series, oldest first, with the open head last.
#[derive(Debug, Clone, Default)]
pub struct SeriesStore {
    /// Zero or more `Sealed` chunks followed by exactly one `Open` head
    /// (an empty store is just an empty vector until the first write).
    chunks: Vec<Chunk>,
    num_samples: usize,
}

impl SeriesStore {
    /// Creates an empty store.
    pub fn new() -> SeriesStore {
        SeriesStore::default()
    }

    /// Total samples across all chunks. O(1).
    pub fn len(&self) -> usize {
        self.num_samples
    }

    /// True when no samples remain (e.g. after retention).
    pub fn is_empty(&self) -> bool {
        self.num_samples == 0
    }

    /// Number of sealed (compressed) chunks.
    pub fn sealed_chunks(&self) -> usize {
        self.chunks
            .iter()
            .filter(|c| matches!(c, Chunk::Sealed(_)))
            .count()
    }

    /// Compressed payload bytes across sealed chunks.
    pub fn compressed_bytes(&self) -> usize {
        self.sealed().map(|s| s.encoded.compressed_bytes()).sum()
    }

    /// Bytes the sealed samples would occupy uncompressed.
    pub fn sealed_uncompressed_bytes(&self) -> usize {
        self.sealed().map(|s| s.encoded.uncompressed_bytes()).sum()
    }

    fn sealed(&self) -> impl Iterator<Item = &SealedChunk> {
        self.chunks.iter().filter_map(|c| match c {
            Chunk::Sealed(s) => Some(s),
            Chunk::Open(_) => None,
        })
    }

    /// Timestamp of the last sealed sample, if any chunk is sealed.
    fn last_sealed_end(&self) -> Option<i64> {
        self.chunks.iter().rev().find_map(|c| match c {
            Chunk::Sealed(s) => Some(s.end),
            Chunk::Open(_) => None,
        })
    }

    /// The open head, created on first use. Always the last chunk.
    fn head_mut(&mut self) -> &mut Vec<Sample> {
        if !matches!(self.chunks.last(), Some(Chunk::Open(_))) {
            self.chunks.push(Chunk::Open(Vec::new()));
        }
        match self.chunks.last_mut() {
            Some(Chunk::Open(head)) => head,
            // Unreachable: an Open head was just pushed above.
            _ => unreachable!("head ensured above"), // envlint: allow(no-panic) — the branch above guarantees the last chunk is Open
        }
    }

    /// Decodes sealed chunk at `idx` (an index into `chunks` that must
    /// hold a `Sealed`), applies `f`, and re-seals the result.
    fn rewrite_sealed(&mut self, idx: usize, f: impl FnOnce(&mut Vec<Sample>)) {
        let samples = match self.chunks.get(idx) {
            Some(Chunk::Sealed(s)) => s.samples(),
            _ => return,
        };
        let mut samples = samples;
        f(&mut samples);
        match SealedChunk::seal(&samples) {
            Some(sealed) => self.chunks[idx] = Chunk::Sealed(sealed),
            None => {
                // The rewrite emptied the chunk (retention only).
                self.chunks.remove(idx);
            }
        }
    }

    /// Index (into `chunks`) of the sealed chunk that should absorb an
    /// out-of-order append at `ts`: the last sealed chunk whose start is
    /// `<= ts`, or the first chunk when `ts` precedes everything. Callers
    /// ensure at least one sealed chunk exists.
    fn sealed_index_for_append(&self, ts: i64) -> usize {
        let mut idx = 0;
        for (i, c) in self.chunks.iter().enumerate() {
            if let Chunk::Sealed(s) = c {
                if s.start <= ts {
                    idx = i;
                }
            }
        }
        idx
    }

    /// Appends a sample, preserving sort order; a duplicate timestamp is
    /// inserted after its equals (append semantics). `seal_limit` is the
    /// head size that triggers compression (`None`: never seal).
    pub fn append(&mut self, sample: Sample, seal_limit: Option<usize>) -> WriteOutcome {
        self.num_samples += 1;
        let in_head = match self.last_sealed_end() {
            None => true,
            Some(end) => sample.timestamp >= end,
        };
        if in_head {
            let head = self.head_mut();
            match head.last() {
                Some(last) if last.timestamp > sample.timestamp => {
                    let pos = head.partition_point(|s| s.timestamp <= sample.timestamp);
                    head.insert(pos, sample);
                }
                _ => head.push(sample),
            }
            self.seal_if_due(seal_limit);
            return WriteOutcome {
                inserted: true,
                rewrote_sealed: false,
            };
        }
        let idx = self.sealed_index_for_append(sample.timestamp);
        self.rewrite_sealed(idx, |samples| {
            let pos = samples.partition_point(|s| s.timestamp <= sample.timestamp);
            samples.insert(pos, sample);
        });
        WriteOutcome {
            inserted: true,
            rewrote_sealed: true,
        }
    }

    /// Upserts a sample: an existing sample at exactly the same timestamp
    /// has its value replaced (the first such, matching the flat-vector
    /// behaviour); otherwise the sample is inserted before its would-be
    /// equals.
    pub fn upsert(&mut self, sample: Sample, seal_limit: Option<usize>) -> WriteOutcome {
        let ts = sample.timestamp;
        // The first chunk whose end reaches ts is the only one that can
        // contain an equal timestamp (ranges are non-overlapping).
        let target = self.chunks.iter().position(|c| match c {
            Chunk::Sealed(s) => s.end >= ts,
            Chunk::Open(_) => false,
        });
        if let Some(idx) = target {
            let mut inserted = false;
            self.rewrite_sealed(idx, |samples| {
                let pos = samples.partition_point(|s| s.timestamp < ts);
                match samples.get_mut(pos) {
                    Some(existing) if existing.timestamp == ts => existing.value = sample.value,
                    _ => {
                        samples.insert(pos, sample);
                        inserted = true;
                    }
                }
            });
            if inserted {
                self.num_samples += 1;
            }
            return WriteOutcome {
                inserted,
                rewrote_sealed: true,
            };
        }
        let head = self.head_mut();
        let pos = head.partition_point(|s| s.timestamp < ts);
        let inserted = match head.get_mut(pos) {
            Some(existing) if existing.timestamp == ts => {
                existing.value = sample.value;
                false
            }
            _ => {
                head.insert(pos, sample);
                true
            }
        };
        if inserted {
            self.num_samples += 1;
            self.seal_if_due(seal_limit);
        }
        WriteOutcome {
            inserted,
            rewrote_sealed: false,
        }
    }

    /// Compresses the head into a sealed chunk once it reaches
    /// `seal_limit` samples, opening a fresh head for subsequent writes.
    fn seal_if_due(&mut self, seal_limit: Option<usize>) {
        let limit = match seal_limit {
            Some(l) if l > 0 => l,
            _ => return,
        };
        let due = matches!(self.chunks.last(), Some(Chunk::Open(head)) if head.len() >= limit);
        if !due {
            return;
        }
        if let Some(Chunk::Open(head)) = self.chunks.last() {
            if let Some(sealed) = SealedChunk::seal(head) {
                let idx = self.chunks.len() - 1;
                self.chunks[idx] = Chunk::Sealed(sealed);
                self.chunks.push(Chunk::Open(Vec::new()));
            }
        }
    }

    /// All samples with `start <= timestamp <= end`, in time order.
    pub fn samples_between(&self, start: i64, end: i64) -> Vec<Sample> {
        let mut out = Vec::new();
        if start > end {
            return out;
        }
        for chunk in &self.chunks {
            match chunk {
                Chunk::Sealed(s) => {
                    if s.end < start || s.start > end {
                        continue;
                    }
                    let all = s.samples();
                    if s.start >= start && s.end <= end {
                        out.extend_from_slice(&all);
                    } else {
                        let lo = all.partition_point(|x| x.timestamp < start);
                        let hi = all.partition_point(|x| x.timestamp <= end);
                        out.extend_from_slice(&all[lo..hi]);
                    }
                }
                Chunk::Open(head) => {
                    let lo = head.partition_point(|x| x.timestamp < start);
                    let hi = head.partition_point(|x| x.timestamp <= end);
                    out.extend_from_slice(&head[lo..hi]);
                }
            }
        }
        out
    }

    /// Every sample in time order (decodes all sealed chunks).
    pub fn all_samples(&self) -> Vec<Sample> {
        let mut out = Vec::with_capacity(self.num_samples);
        for chunk in &self.chunks {
            match chunk {
                Chunk::Sealed(s) => out.extend_from_slice(&s.samples()),
                Chunk::Open(head) => out.extend_from_slice(head),
            }
        }
        out
    }

    /// The latest sample at or before `at`, if any.
    pub fn latest_at_or_before(&self, at: i64) -> Option<Sample> {
        for chunk in self.chunks.iter().rev() {
            match chunk {
                Chunk::Open(head) => {
                    let idx = head.partition_point(|s| s.timestamp <= at);
                    if idx > 0 {
                        return Some(head[idx - 1]);
                    }
                }
                Chunk::Sealed(s) => {
                    if s.start > at {
                        continue;
                    }
                    let all = s.samples();
                    let idx = all.partition_point(|x| x.timestamp <= at);
                    if idx > 0 {
                        return Some(all[idx - 1]);
                    }
                }
            }
        }
        None
    }

    /// Drops every sample with `timestamp < cutoff`; whole sealed chunks
    /// below the cutoff are discarded without decoding. Returns the
    /// number of samples dropped.
    pub fn retain_from(&mut self, cutoff: i64) -> usize {
        let mut dropped = 0;
        self.chunks.retain(|c| match c {
            Chunk::Sealed(s) if s.end < cutoff => {
                dropped += s.count();
                false
            }
            _ => true,
        });
        // At most one sealed chunk can now straddle the cutoff: the first.
        if let Some(Chunk::Sealed(s)) = self.chunks.first() {
            if s.start < cutoff {
                let before = s.count();
                self.rewrite_sealed(0, |samples| {
                    let keep_from = samples.partition_point(|x| x.timestamp < cutoff);
                    samples.drain(..keep_from);
                });
                let after = match self.chunks.first() {
                    Some(Chunk::Sealed(s)) => s.count(),
                    _ => 0,
                };
                dropped += before - after;
            }
        }
        if let Some(Chunk::Open(head)) = self.chunks.last_mut() {
            let keep_from = head.partition_point(|x| x.timestamp < cutoff);
            head.drain(..keep_from);
            dropped += keep_from;
        }
        self.num_samples -= dropped;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(t: i64, v: f64) -> Sample {
        Sample {
            timestamp: t,
            value: v,
        }
    }

    /// A store sealing every 4 samples, fed 0..n in order.
    fn sequential(n: i64) -> SeriesStore {
        let mut store = SeriesStore::new();
        for t in 0..n {
            store.append(s(t, t as f64 * 0.5), Some(4));
        }
        store
    }

    #[test]
    fn sealing_compresses_the_tail_and_keeps_all_samples() {
        let store = sequential(10);
        assert_eq!(store.len(), 10);
        assert_eq!(store.sealed_chunks(), 2, "two full chunks of four");
        let all = store.all_samples();
        assert_eq!(all.len(), 10);
        for (i, smp) in all.iter().enumerate() {
            assert_eq!(smp.timestamp, i as i64);
            assert_eq!(smp.value.to_bits(), (i as f64 * 0.5).to_bits());
        }
        assert!(store.compressed_bytes() < store.sealed_uncompressed_bytes());
    }

    #[test]
    fn range_queries_cross_seal_boundaries() {
        let store = sequential(10);
        let got: Vec<i64> = store
            .samples_between(2, 8)
            .iter()
            .map(|x| x.timestamp)
            .collect();
        assert_eq!(got, vec![2, 3, 4, 5, 6, 7, 8]);
        assert!(store.samples_between(8, 2).is_empty(), "inverted range");
        assert!(store.samples_between(100, 200).is_empty());
    }

    #[test]
    fn latest_at_or_before_searches_sealed_chunks() {
        let store = sequential(10);
        assert_eq!(store.latest_at_or_before(-1), None);
        assert_eq!(store.latest_at_or_before(0).map(|x| x.timestamp), Some(0));
        assert_eq!(store.latest_at_or_before(5).map(|x| x.timestamp), Some(5));
        assert_eq!(store.latest_at_or_before(99).map(|x| x.timestamp), Some(9));
    }

    #[test]
    fn out_of_order_append_rewrites_the_owning_chunk() {
        let mut store = sequential(10);
        let outcome = store.append(s(2, 99.0), Some(4));
        assert!(
            outcome.rewrote_sealed,
            "t=2 lives in the first sealed chunk"
        );
        assert_eq!(store.len(), 11);
        let got: Vec<i64> = store
            .samples_between(i64::MIN, i64::MAX)
            .iter()
            .map(|x| x.timestamp)
            .collect();
        assert_eq!(got, vec![0, 1, 2, 2, 3, 4, 5, 6, 7, 8, 9]);
        // Duplicate goes after its equal: the new 99.0 follows the old 1.0.
        let vals: Vec<f64> = store
            .samples_between(2, 2)
            .iter()
            .map(|x| x.value)
            .collect();
        assert_eq!(vals.len(), 2);
        assert_eq!(vals[0].to_bits(), 1.0f64.to_bits());
        assert_eq!(vals[1].to_bits(), 99.0f64.to_bits());
    }

    #[test]
    fn append_before_everything_lands_in_first_chunk() {
        let mut store = sequential(8);
        let outcome = store.append(s(-5, 7.0), Some(4));
        assert!(outcome.rewrote_sealed);
        let all = store.all_samples();
        assert_eq!(all[0].timestamp, -5);
        assert_eq!(store.len(), 9);
    }

    #[test]
    fn upsert_replaces_inside_sealed_chunks() {
        let mut store = sequential(10);
        let outcome = store.upsert(s(1, 123.0), Some(4));
        assert!(!outcome.inserted, "t=1 already exists");
        assert!(outcome.rewrote_sealed);
        assert_eq!(store.len(), 10);
        let vals = store.samples_between(1, 1);
        assert_eq!(vals.len(), 1);
        assert_eq!(vals[0].value.to_bits(), 123.0f64.to_bits());
        // Upsert at a fresh timestamp inside sealed territory inserts.
        let outcome = store.upsert(s(3, 0.25), Some(4));
        // t=3 exists in sequential(10) — replaced, not inserted.
        assert!(!outcome.inserted);
        // A genuinely new timestamp in a gap: build one.
        let mut gappy = SeriesStore::new();
        for t in [0i64, 2, 4, 6, 8, 10, 12, 14] {
            gappy.append(s(t, t as f64), Some(4));
        }
        let outcome = gappy.upsert(s(3, -1.0), Some(4));
        assert!(outcome.inserted);
        assert!(outcome.rewrote_sealed);
        assert_eq!(gappy.len(), 9);
        let got: Vec<i64> = gappy.all_samples().iter().map(|x| x.timestamp).collect();
        assert_eq!(got, vec![0, 2, 3, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn upsert_in_head_matches_flat_vector_semantics() {
        let mut store = SeriesStore::new();
        store.upsert(s(5, 1.0), Some(100));
        store.upsert(s(5, 2.0), Some(100));
        assert_eq!(store.len(), 1);
        assert_eq!(store.all_samples()[0].value.to_bits(), 2.0f64.to_bits());
        store.upsert(s(3, 0.5), Some(100));
        store.upsert(s(7, 3.0), Some(100));
        let got: Vec<i64> = store.all_samples().iter().map(|x| x.timestamp).collect();
        assert_eq!(got, vec![3, 5, 7]);
    }

    #[test]
    fn no_seal_limit_keeps_everything_open() {
        let mut store = SeriesStore::new();
        for t in 0..100 {
            store.append(s(t, t as f64), None);
        }
        assert_eq!(store.sealed_chunks(), 0);
        assert_eq!(store.compressed_bytes(), 0);
        assert_eq!(store.len(), 100);
    }

    #[test]
    fn retention_drops_whole_chunks_and_splits_straddlers() {
        let mut store = sequential(10); // sealed [0..3], [4..7], head [8, 9]
        let dropped = store.retain_from(5);
        assert_eq!(dropped, 5, "samples 0..=4");
        assert_eq!(store.len(), 5);
        let got: Vec<i64> = store.all_samples().iter().map(|x| x.timestamp).collect();
        assert_eq!(got, vec![5, 6, 7, 8, 9]);
        assert_eq!(store.sealed_chunks(), 1, "first chunk gone, second split");
        // Cutoff past everything empties the store.
        let dropped = store.retain_from(100);
        assert_eq!(dropped, 5);
        assert!(store.is_empty());
        assert_eq!(store.retain_from(100), 0, "idempotent");
    }

    #[test]
    fn duplicate_timestamps_at_seal_boundary() {
        let mut store = SeriesStore::new();
        for _ in 0..4 {
            store.append(s(10, 1.0), Some(4)); // seals [10,10,10,10]
        }
        assert_eq!(store.sealed_chunks(), 1);
        // Equal timestamp goes to the head (after sealed equals).
        let outcome = store.append(s(10, 2.0), Some(4));
        assert!(!outcome.rewrote_sealed);
        let vals: Vec<u64> = store
            .samples_between(10, 10)
            .iter()
            .map(|x| x.value.to_bits())
            .collect();
        assert_eq!(vals.len(), 5);
        assert_eq!(vals[4], 2.0f64.to_bits(), "new duplicate is last");
        // Upsert at the same timestamp replaces the FIRST equal, which
        // lives in the sealed chunk.
        let outcome = store.upsert(s(10, 3.0), Some(4));
        assert!(!outcome.inserted);
        assert!(outcome.rewrote_sealed);
        let vals: Vec<u64> = store
            .samples_between(10, 10)
            .iter()
            .map(|x| x.value.to_bits())
            .collect();
        assert_eq!(vals[0], 3.0f64.to_bits());
    }
}
