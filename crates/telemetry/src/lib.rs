//! Testing-workflow substrate for the Env2Vec reproduction.
//!
//! Figure 2 of the paper wires the ML model into a concrete toolchain:
//! metrics flow from testbeds into **Prometheus** (step 1) keyed by an
//! environment-metadata record referenced from a service-discovery JSON
//! file; the prediction pipeline reads dataframes back over HTTP (step 3);
//! alarms land in **PostgreSQL** (step 4); and models are fetched from the
//! training pipeline's HTTP server (step 5). None of those services can be
//! assumed here, so this crate implements in-process equivalents with the
//! same interfaces and semantics:
//!
//! - [`labels`]: label sets and matchers (the Prometheus data model).
//! - [`tsdb`]: a sharded, label-indexed in-memory time-series database
//!   with instant and range queries, safe for concurrent collectors;
//!   closed chunks are Gorilla-compressed ([`codec`]) behind the
//!   open-head/sealed-tail layout of [`chunk`].
//! - [`discovery`]: scrape-target records carrying the `env` label,
//!   serialised to exactly the JSON shape shown in §3 step 1.
//! - [`alarms`]: the alarm store — each alarm pinpoints the testbed and
//!   the time interval of the deviation, as §3 step 4 requires.
//! - [`registry`]: a versioned model registry standing in for the training
//!   pipeline's HTTP model server.

#![warn(missing_docs)]

pub mod alarms;
pub mod chunk;
pub mod codec;
pub mod discovery;
pub mod labels;
pub mod locks;
pub mod registry;
pub mod tsdb;

pub use alarms::{Alarm, AlarmStore};
pub use labels::{LabelMatcher, LabelSet};
pub use tsdb::{Sample, TimeSeriesDb, TsdbConfig, TsdbStats};
