//! Alarm store — the PostgreSQL stand-in.
//!
//! §3 step 4: "Upon detecting anomalies, Env2Vec pushes an alarm into a
//! PostgreSQL database. This alarm contains all the relevant information
//! to allow a testing engineer ... to pinpoint on which testbed the issue
//! occurred, and during which time interval." [`Alarm`] carries exactly
//! those fields; [`AlarmStore`] supports the queries the workflow needs
//! (by environment, by time overlap) and is safe for concurrent
//! detectors.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::labels::LabelSet;

/// One raised alarm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alarm {
    /// Monotonically increasing id assigned by the store.
    pub id: u64,
    /// Environment labels (testbed, SUT, test case, build) of the
    /// offending execution.
    pub env: LabelSet,
    /// Metric the deviation was observed on (e.g. `cpu_usage`).
    pub metric: String,
    /// First timestep of the anomalous interval.
    pub start: i64,
    /// Last timestep of the anomalous interval (inclusive).
    pub end: i64,
    /// The detector's γ setting when the alarm fired.
    pub gamma: f64,
    /// Model-predicted value at the peak deviation.
    pub predicted: f64,
    /// Observed value at the peak deviation.
    pub observed: f64,
    /// Free-text description for the engineer.
    pub message: String,
}

impl Alarm {
    /// Whether this alarm's interval overlaps `[start, end]`.
    pub fn overlaps(&self, start: i64, end: i64) -> bool {
        self.start <= end && start <= self.end
    }
}

/// Fields for a new alarm (the store assigns the id).
#[derive(Debug, Clone)]
pub struct NewAlarm {
    /// Environment labels of the offending execution.
    pub env: LabelSet,
    /// Metric the deviation was observed on.
    pub metric: String,
    /// First anomalous timestep.
    pub start: i64,
    /// Last anomalous timestep (inclusive).
    pub end: i64,
    /// Detector γ.
    pub gamma: f64,
    /// Predicted value at peak deviation.
    pub predicted: f64,
    /// Observed value at peak deviation.
    pub observed: f64,
    /// Free-text description.
    pub message: String,
}

/// Concurrent alarm database.
#[derive(Debug, Default)]
pub struct AlarmStore {
    inner: RwLock<Vec<Alarm>>,
}

impl AlarmStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts an alarm, returning its assigned id.
    pub fn push(&self, new: NewAlarm) -> u64 {
        let mut inner = self.inner.write();
        let id = inner.len() as u64;
        inner.push(Alarm {
            id,
            env: new.env,
            metric: new.metric,
            start: new.start,
            end: new.end,
            gamma: new.gamma,
            predicted: new.predicted,
            observed: new.observed,
            message: new.message,
        });
        id
    }

    /// Total number of alarms.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// All alarms, in insertion order.
    pub fn all(&self) -> Vec<Alarm> {
        self.inner.read().clone()
    }

    /// Alarms whose environment carries `label = value`.
    pub fn by_env_label(&self, label: &str, value: &str) -> Vec<Alarm> {
        self.inner
            .read()
            .iter()
            .filter(|a| a.env.get(label) == Some(value))
            .cloned()
            .collect()
    }

    /// Alarms overlapping the time interval `[start, end]`.
    pub fn in_interval(&self, start: i64, end: i64) -> Vec<Alarm> {
        self.inner
            .read()
            .iter()
            .filter(|a| a.overlaps(start, end))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn new_alarm(env_id: &str, start: i64, end: i64) -> NewAlarm {
        NewAlarm {
            env: LabelSet::new()
                .with("env", env_id)
                .with("testbed", "Testbed_01"),
            metric: "cpu_usage".into(),
            start,
            end,
            gamma: 2.0,
            predicted: 45.0,
            observed: 78.0,
            message: "CPU deviates from baseline".into(),
        }
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let store = AlarmStore::new();
        assert_eq!(store.push(new_alarm("EM_1", 0, 5)), 0);
        assert_eq!(store.push(new_alarm("EM_2", 10, 12)), 1);
        assert_eq!(store.len(), 2);
        assert!(!store.is_empty());
    }

    #[test]
    fn query_by_env_label() {
        let store = AlarmStore::new();
        store.push(new_alarm("EM_1", 0, 5));
        store.push(new_alarm("EM_2", 3, 8));
        store.push(new_alarm("EM_1", 20, 25));
        let hits = store.by_env_label("env", "EM_1");
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|a| a.env.get("env") == Some("EM_1")));
        assert!(store.by_env_label("env", "EM_9").is_empty());
    }

    #[test]
    fn interval_overlap_queries() {
        let store = AlarmStore::new();
        store.push(new_alarm("EM_1", 0, 5));
        store.push(new_alarm("EM_2", 10, 20));
        assert_eq!(store.in_interval(4, 12).len(), 2);
        assert_eq!(store.in_interval(6, 9).len(), 0);
        assert_eq!(store.in_interval(5, 5).len(), 1);
    }

    #[test]
    fn alarm_pinpoints_testbed_and_interval() {
        // The paper's requirement: enough information to locate the issue.
        let store = AlarmStore::new();
        store.push(new_alarm("EM_7", 42, 48));
        let alarm = &store.all()[0];
        assert_eq!(alarm.env.get("testbed"), Some("Testbed_01"));
        assert_eq!((alarm.start, alarm.end), (42, 48));
        assert!(alarm.observed > alarm.predicted);
    }

    #[test]
    fn concurrent_pushes_assign_unique_ids() {
        use std::sync::Arc;
        let store = Arc::new(AlarmStore::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    store.push(new_alarm("EM_X", i, i + 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut ids: Vec<u64> = store.all().iter().map(|a| a.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 400);
    }
}
