//! Versioned model registry — the HTTP model server stand-in.
//!
//! §3 step 5: "The Env2Vec prediction pipeline fetches the latest model
//! (essentially a weight matrix), before beginning execution, from the
//! training pipeline HTTP server." The training pipeline publishes
//! serialised model blobs here; prediction pipelines fetch the latest
//! version. Blobs are opaque bytes so the registry does not depend on any
//! model crate.

use parking_lot::RwLock;

/// One published model version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelVersion {
    /// Monotonically increasing version number (1-based).
    pub version: u64,
    /// Human-readable tag, e.g. the training date.
    pub tag: String,
    /// Serialised model bytes.
    pub blob: Vec<u8>,
}

/// Concurrent, append-only model registry.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    inner: RwLock<Vec<ModelVersion>>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a model blob, returning the assigned version number.
    pub fn publish(&self, tag: impl Into<String>, blob: Vec<u8>) -> u64 {
        let mut inner = self.inner.write();
        let version = inner.len() as u64 + 1;
        inner.push(ModelVersion {
            version,
            tag: tag.into(),
            blob,
        });
        version
    }

    /// The most recently published model, if any (the "fetch latest" of
    /// §3 step 5).
    pub fn latest(&self) -> Option<ModelVersion> {
        self.inner.read().last().cloned()
    }

    /// A specific version (1-based), if it exists.
    pub fn get(&self, version: u64) -> Option<ModelVersion> {
        let inner = self.inner.read();
        if version == 0 || version as usize > inner.len() {
            return None;
        }
        Some(inner[version as usize - 1].clone())
    }

    /// Number of published versions.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether no model has been published yet.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_fetch_latest() {
        let reg = ModelRegistry::new();
        assert!(reg.latest().is_none());
        assert!(reg.is_empty());
        let v1 = reg.publish("2020-04-27", vec![1, 2, 3]);
        let v2 = reg.publish("2020-04-28", vec![4, 5]);
        assert_eq!((v1, v2), (1, 2));
        let latest = reg.latest().unwrap();
        assert_eq!(latest.version, 2);
        assert_eq!(latest.blob, vec![4, 5]);
        assert_eq!(latest.tag, "2020-04-28");
    }

    #[test]
    fn get_specific_versions() {
        let reg = ModelRegistry::new();
        reg.publish("a", vec![1]);
        reg.publish("b", vec![2]);
        assert_eq!(reg.get(1).unwrap().blob, vec![1]);
        assert_eq!(reg.get(2).unwrap().tag, "b");
        assert!(reg.get(0).is_none());
        assert!(reg.get(3).is_none());
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn concurrent_publishes_get_distinct_versions() {
        use std::sync::Arc;
        let reg = Arc::new(ModelRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    reg.publish("t", vec![0]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.len(), 200);
        assert_eq!(reg.latest().unwrap().version, 200);
    }
}
