//! Versioned model registry — the HTTP model server stand-in.
//!
//! §3 step 5: "The Env2Vec prediction pipeline fetches the latest model
//! (essentially a weight matrix), before beginning execution, from the
//! training pipeline HTTP server." The training pipeline publishes
//! serialised model blobs here; prediction pipelines fetch the latest
//! version. Blobs are opaque bytes so the registry does not depend on any
//! model crate.
//!
//! # Concurrency
//!
//! The registry is append-only under a [`TrackedRwLock`]. Version
//! numbers are assigned *inside* the write critical section (`len + 1`
//! under the write guard) — never by a separate atomic counter — so
//! they are dense, gapless, and each version's entry is in the vector
//! before any thread can learn its number.
//!
//! [`ModelRegistry::latest_version`] is the lock-free fast path the
//! serving hot loop probes on every request to decide whether its
//! cached, deserialised model is stale. The counter is stored with
//! `Release` ordering while the write guard is still held and read with
//! `Acquire`; together with the guard's own release fence that
//! guarantees a reader who observes version `v` will find `get(v)`
//! populated — no torn or forward-dated reads, which is exactly the
//! read-modify-write hazard a detached `fetch_add` counter would have
//! introduced (counter bumped before the push is visible). The threaded
//! stress test below hammers that invariant from concurrent publishers
//! and readers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::locks::TrackedRwLock;

/// One published model version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelVersion {
    /// Monotonically increasing version number (1-based).
    pub version: u64,
    /// Human-readable tag, e.g. the training date.
    pub tag: String,
    /// Serialised model bytes.
    pub blob: Vec<u8>,
}

/// Concurrent, append-only model registry.
#[derive(Debug)]
pub struct ModelRegistry {
    inner: TrackedRwLock<Vec<ModelVersion>>,
    /// Version of the most recent fully-published entry; 0 when empty.
    /// Written only under the `inner` write guard.
    latest: AtomicU64,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        ModelRegistry {
            inner: TrackedRwLock::new("telemetry.registry.versions", Vec::new()),
            latest: AtomicU64::new(0),
        }
    }
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a model blob, returning the assigned version number.
    pub fn publish(&self, tag: impl Into<String>, blob: Vec<u8>) -> u64 {
        let mut inner = self.inner.write();
        let version = inner.len() as u64 + 1;
        inner.push(ModelVersion {
            version,
            tag: tag.into(),
            blob,
        });
        // Advertise the new version only after the push, still under the
        // write guard: any reader that Acquire-loads `version` is
        // guaranteed to find `get(version)` populated.
        self.latest.store(version, Ordering::Release);
        version
    }

    /// The newest published version number without taking the lock — the
    /// per-request staleness probe for serving caches. Returns 0 when
    /// nothing has been published.
    ///
    /// Guaranteed torn-free and never ahead of the data: a non-zero
    /// return `v` means `get(v)` succeeds (see the module docs for the
    /// ordering argument).
    pub fn latest_version(&self) -> u64 {
        self.latest.load(Ordering::Acquire)
    }

    /// The most recently published model, if any (the "fetch latest" of
    /// §3 step 5).
    pub fn latest(&self) -> Option<ModelVersion> {
        self.inner.read().last().cloned()
    }

    /// A specific version (1-based), if it exists.
    pub fn get(&self, version: u64) -> Option<ModelVersion> {
        let inner = self.inner.read();
        if version == 0 || version as usize > inner.len() {
            return None;
        }
        Some(inner[version as usize - 1].clone())
    }

    /// Number of published versions.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether no model has been published yet.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

/// A set of named per-environment registries — the serving tier's view
/// of the training pipeline, one [`ModelRegistry`] per environment
/// (§2: "one model is trained per environment").
#[derive(Debug)]
pub struct RegistryHub {
    inner: TrackedRwLock<std::collections::BTreeMap<String, Arc<ModelRegistry>>>,
}

impl Default for RegistryHub {
    fn default() -> Self {
        Self::new()
    }
}

impl RegistryHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        RegistryHub {
            inner: TrackedRwLock::new("telemetry.registry.hub", std::collections::BTreeMap::new()),
        }
    }

    /// The registry for `env`, created empty on first use.
    pub fn registry(&self, env: &str) -> Arc<ModelRegistry> {
        if let Some(reg) = self.inner.read().get(env) {
            return Arc::clone(reg);
        }
        let mut inner = self.inner.write();
        // Double-check: another thread may have created it between the
        // read and write acquisitions.
        Arc::clone(
            inner
                .entry(env.to_string())
                .or_insert_with(|| Arc::new(ModelRegistry::new())),
        )
    }

    /// The registry for `env` if one exists, without creating it.
    pub fn get(&self, env: &str) -> Option<Arc<ModelRegistry>> {
        self.inner.read().get(env).map(Arc::clone)
    }

    /// All environment names with a registry, sorted.
    pub fn names(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_fetch_latest() {
        let reg = ModelRegistry::new();
        assert!(reg.latest().is_none());
        assert!(reg.is_empty());
        assert_eq!(reg.latest_version(), 0);
        let v1 = reg.publish("2020-04-27", vec![1, 2, 3]);
        let v2 = reg.publish("2020-04-28", vec![4, 5]);
        assert_eq!((v1, v2), (1, 2));
        assert_eq!(reg.latest_version(), 2);
        let latest = reg.latest().unwrap();
        assert_eq!(latest.version, 2);
        assert_eq!(latest.blob, vec![4, 5]);
        assert_eq!(latest.tag, "2020-04-28");
    }

    #[test]
    fn get_specific_versions() {
        let reg = ModelRegistry::new();
        reg.publish("a", vec![1]);
        reg.publish("b", vec![2]);
        assert_eq!(reg.get(1).unwrap().blob, vec![1]);
        assert_eq!(reg.get(2).unwrap().tag, "b");
        assert!(reg.get(0).is_none());
        assert!(reg.get(3).is_none());
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn concurrent_publishes_get_distinct_versions() {
        let reg = Arc::new(ModelRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    reg.publish("t", vec![0]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.len(), 200);
        assert_eq!(reg.latest().unwrap().version, 200);
        assert_eq!(reg.latest_version(), 200);
    }

    #[test]
    fn latest_version_is_never_torn_or_ahead_of_the_data() {
        // The publish-while-fetch stress: publishers append (the blob
        // encodes the version so a fetched entry is self-checking) while
        // readers spin on the lock-free probe. Every reader asserts the
        // two invariants the serving cache depends on: a version the
        // probe advertises is always fetchable, and the probe never goes
        // backwards.
        let reg = Arc::new(ModelRegistry::new());
        let mut handles = Vec::new();
        for p in 0..2u64 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let v = reg.publish(format!("p{p}-{i}"), Vec::new());
                    // Self-check on the writer side too: our own publish
                    // must be visible to the probe immediately.
                    assert!(reg.latest_version() >= v);
                }
            }));
        }
        for _ in 0..4 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                let mut last = 0u64;
                for _ in 0..2000 {
                    let v = reg.latest_version();
                    assert!(v >= last, "probe went backwards: {v} < {last}");
                    last = v;
                    if v > 0 {
                        let fetched = reg
                            .get(v)
                            .unwrap_or_else(|| panic!("advertised version {v} not fetchable"));
                        assert_eq!(fetched.version, v);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.latest_version(), 1000);
    }

    #[test]
    fn hub_creates_one_registry_per_env() {
        let hub = RegistryHub::new();
        assert!(hub.get("edge-a").is_none());
        let a = hub.registry("edge-a");
        let a2 = hub.registry("edge-a");
        assert!(Arc::ptr_eq(&a, &a2), "same env must share one registry");
        a.publish("t", vec![9]);
        assert_eq!(hub.get("edge-a").unwrap().latest_version(), 1);
        hub.registry("edge-b");
        assert_eq!(hub.names(), vec!["edge-a", "edge-b"]);
    }

    #[test]
    fn hub_get_or_create_is_race_free() {
        let hub = Arc::new(RegistryHub::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let hub = Arc::clone(&hub);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let reg = hub.registry(&format!("env-{}", i % 5));
                    reg.publish("t", Vec::new());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every publish landed in one of exactly 5 shared registries.
        let total: usize = hub.names().iter().map(|n| hub.get(n).unwrap().len()).sum();
        assert_eq!(hub.names().len(), 5);
        assert_eq!(total, 200);
    }
}
