//! Label-indexed in-memory time-series database.
//!
//! The Prometheus stand-in: series are keyed by metric name plus label
//! set, samples are `(timestamp, value)` pairs kept in time order, and
//! queries select by matchers with instant (latest-at-or-before) or range
//! semantics. Interior locking makes one database shareable between the
//! metric collector and the prediction pipeline, mirroring the paper's
//! workflow where both sides talk to the same Prometheus.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::labels::{LabelMatcher, LabelSet};

/// One observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Unix-style timestamp (the generators use timestep indices).
    pub timestamp: i64,
    /// Observed value.
    pub value: f64,
}

/// Identity of one series.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    metric: String,
    labels: LabelSet,
}

/// A queryable series (metric, labels, samples).
#[derive(Debug, Clone)]
pub struct Series {
    /// Metric name.
    pub metric: String,
    /// Label set identifying the series.
    pub labels: LabelSet,
    /// Samples in ascending time order.
    pub samples: Vec<Sample>,
}

/// Point-in-time operation counts for one database (see
/// [`TimeSeriesDb::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TsdbStats {
    /// Samples inserted since creation.
    pub inserts: u64,
    /// Queries served since creation (instant, range, and step).
    pub queries: u64,
    /// Current number of distinct series.
    pub num_series: usize,
    /// Current total number of samples.
    pub num_samples: usize,
}

/// An in-memory TSDB safe for concurrent writers and readers.
///
/// Series live in a `BTreeMap` so every scan — queries, name listings,
/// retention — walks them in `(metric, labels)` order; results are
/// deterministic with no per-process hash randomisation (envlint
/// `hash-iter`).
#[derive(Debug, Default)]
pub struct TimeSeriesDb {
    inner: RwLock<BTreeMap<SeriesKey, Vec<Sample>>>,
    /// Insert/query tallies kept as plain atomics so reading them never
    /// contends with the data lock.
    inserts: AtomicU64,
    queries: AtomicU64,
}

impl TimeSeriesDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample to the series `(metric, labels)`, creating it on
    /// first write. Samples may arrive slightly out of order; the series
    /// is kept sorted by timestamp.
    pub fn append(&self, metric: &str, labels: &LabelSet, sample: Sample) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.write();
        let series = inner
            .entry(SeriesKey {
                metric: metric.to_string(),
                labels: labels.clone(),
            })
            .or_default();
        match series.last() {
            Some(last) if last.timestamp > sample.timestamp => {
                let pos = series.partition_point(|s| s.timestamp <= sample.timestamp);
                series.insert(pos, sample);
            }
            _ => series.push(sample),
        }
    }

    /// Like [`TimeSeriesDb::append`], but if the series already holds a
    /// sample at exactly `sample.timestamp`, that sample's value is
    /// replaced instead of a duplicate point being inserted. This is the
    /// write primitive for idempotent scrapes: re-scraping the same
    /// registry at the same timestamp converges instead of growing.
    pub fn upsert(&self, metric: &str, labels: &LabelSet, sample: Sample) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.write();
        let series = inner
            .entry(SeriesKey {
                metric: metric.to_string(),
                labels: labels.clone(),
            })
            .or_default();
        let pos = series.partition_point(|s| s.timestamp < sample.timestamp);
        match series.get_mut(pos) {
            Some(existing) if existing.timestamp == sample.timestamp => {
                existing.value = sample.value;
            }
            _ => series.insert(pos, sample),
        }
    }

    /// Appends a whole vector of samples (already time-ordered) at once.
    pub fn append_series(&self, metric: &str, labels: &LabelSet, samples: &[Sample]) {
        for &s in samples {
            self.append(metric, labels, s);
        }
    }

    /// Number of distinct series.
    pub fn num_series(&self) -> usize {
        self.inner.read().len()
    }

    /// Total number of samples across all series.
    pub fn num_samples(&self) -> usize {
        self.inner.read().values().map(Vec::len).sum()
    }

    /// Instant query: for every matching series, the latest sample at or
    /// before `at`.
    pub fn query_instant(
        &self,
        metric: &str,
        matchers: &[LabelMatcher],
        at: i64,
    ) -> Vec<(LabelSet, Sample)> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let inner = self.inner.read();
        let mut out = Vec::new();
        for (key, samples) in inner.iter() {
            if key.metric != metric || !key.labels.matches(matchers) {
                continue;
            }
            let idx = samples.partition_point(|s| s.timestamp <= at);
            if idx > 0 {
                out.push((key.labels.clone(), samples[idx - 1]));
            }
        }
        // Map iteration is already (metric, labels)-ordered.
        out
    }

    /// Range query: for every matching series, the samples with
    /// `start <= timestamp <= end`.
    pub fn query_range(
        &self,
        metric: &str,
        matchers: &[LabelMatcher],
        start: i64,
        end: i64,
    ) -> Vec<Series> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let inner = self.inner.read();
        let mut out = Vec::new();
        for (key, samples) in inner.iter() {
            if key.metric != metric || !key.labels.matches(matchers) {
                continue;
            }
            let lo = samples.partition_point(|s| s.timestamp < start);
            let hi = samples.partition_point(|s| s.timestamp <= end);
            if lo < hi {
                out.push(Series {
                    metric: key.metric.clone(),
                    labels: key.labels.clone(),
                    samples: samples[lo..hi].to_vec(),
                });
            }
        }
        out
    }

    /// Step-aligned range query (Prometheus-style): for every matching
    /// series, one sample per aligned timestamp `start, start+step, …, ≤
    /// end`, each carrying the latest raw value at or before that instant.
    /// Aligned points before a series' first sample are omitted.
    ///
    /// Downsampling queries like this are how dashboards read a
    /// 15-minute-cadence metric at, say, 1-hour resolution.
    ///
    /// # Panics
    ///
    /// Panics when `step` is zero.
    pub fn query_range_step(
        &self,
        metric: &str,
        matchers: &[LabelMatcher],
        start: i64,
        end: i64,
        step: i64,
    ) -> Vec<Series> {
        assert!(step > 0, "step must be positive");
        self.queries.fetch_add(1, Ordering::Relaxed);
        let inner = self.inner.read();
        let mut out = Vec::new();
        for (key, samples) in inner.iter() {
            if key.metric != metric || !key.labels.matches(matchers) {
                continue;
            }
            let mut points = Vec::new();
            let mut t = start;
            while t <= end {
                let idx = samples.partition_point(|s| s.timestamp <= t);
                if idx > 0 {
                    points.push(Sample {
                        timestamp: t,
                        value: samples[idx - 1].value,
                    });
                }
                t += step;
            }
            if !points.is_empty() {
                out.push(Series {
                    metric: key.metric.clone(),
                    labels: key.labels.clone(),
                    samples: points,
                });
            }
        }
        out
    }

    /// Applies a retention policy: drops every sample with
    /// `timestamp < cutoff` and removes series left empty. Returns the
    /// number of samples dropped.
    pub fn retain_from(&self, cutoff: i64) -> usize {
        let mut inner = self.inner.write();
        let mut dropped = 0;
        inner.retain(|_, samples| {
            let keep_from = samples.partition_point(|s| s.timestamp < cutoff);
            dropped += keep_from;
            samples.drain(..keep_from);
            !samples.is_empty()
        });
        dropped
    }

    /// Operation counts and current sizes, for the observability layer's
    /// `tsdb_*` metrics.
    pub fn stats(&self) -> TsdbStats {
        TsdbStats {
            inserts: self.inserts.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            num_series: self.num_series(),
            num_samples: self.num_samples(),
        }
    }

    /// All metric names currently stored, sorted and deduplicated.
    pub fn metric_names(&self) -> Vec<String> {
        let inner = self.inner.read();
        let mut names: Vec<String> = inner.keys().map(|k| k.metric.clone()).collect();
        names.dedup();
        names
    }

    /// All label sets for a metric, sorted.
    pub fn series_for(&self, metric: &str) -> Vec<LabelSet> {
        let inner = self.inner.read();
        inner
            .keys()
            .filter(|k| k.metric == metric)
            .map(|k| k.labels.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(id: &str) -> LabelSet {
        LabelSet::new().with("env", id)
    }

    fn filled_db() -> TimeSeriesDb {
        let db = TimeSeriesDb::new();
        for t in 0..10 {
            db.append(
                "cpu_usage",
                &env("EM_1"),
                Sample {
                    timestamp: t,
                    value: t as f64 * 10.0,
                },
            );
            db.append(
                "cpu_usage",
                &env("EM_2"),
                Sample {
                    timestamp: t,
                    value: 1.0,
                },
            );
        }
        db.append(
            "mem_usage",
            &env("EM_1"),
            Sample {
                timestamp: 5,
                value: 64.0,
            },
        );
        db
    }

    #[test]
    fn series_and_sample_counts() {
        let db = filled_db();
        assert_eq!(db.num_series(), 3);
        assert_eq!(db.num_samples(), 21);
        assert_eq!(db.metric_names(), vec!["cpu_usage", "mem_usage"]);
        assert_eq!(db.series_for("cpu_usage").len(), 2);
    }

    #[test]
    fn upsert_replaces_at_equal_timestamp_and_inserts_otherwise() {
        let db = TimeSeriesDb::new();
        let s = |t: i64, v: f64| Sample {
            timestamp: t,
            value: v,
        };
        db.upsert("cpu_usage", &env("EM_1"), s(5, 1.0));
        db.upsert("cpu_usage", &env("EM_1"), s(5, 2.0));
        assert_eq!(db.num_samples(), 1, "same timestamp must not duplicate");
        assert_eq!(
            db.query_instant("cpu_usage", &[], 5)[0].1.value,
            2.0,
            "latest upsert wins"
        );
        // Different timestamps insert in sorted position.
        db.upsert("cpu_usage", &env("EM_1"), s(3, 0.5));
        db.upsert("cpu_usage", &env("EM_1"), s(7, 3.0));
        assert_eq!(db.num_samples(), 3);
        let range = db.query_range("cpu_usage", &[], 0, 10);
        let ts: Vec<i64> = range[0].samples.iter().map(|x| x.timestamp).collect();
        assert_eq!(ts, vec![3, 5, 7]);
    }

    #[test]
    fn stats_count_operations_and_sizes() {
        let db = filled_db();
        let s = db.stats();
        assert_eq!(s.inserts, 21);
        assert_eq!(s.queries, 0);
        assert_eq!(s.num_series, 3);
        assert_eq!(s.num_samples, 21);
        db.query_instant("cpu_usage", &[], 5);
        db.query_range("cpu_usage", &[], 0, 9);
        db.query_range_step("cpu_usage", &[], 0, 9, 2);
        assert_eq!(db.stats().queries, 3);
    }

    #[test]
    fn instant_query_latest_at_or_before() {
        let db = filled_db();
        let res = db.query_instant("cpu_usage", &[LabelMatcher::eq("env", "EM_1")], 7);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].1.value, 70.0);
        // Before the first sample: nothing.
        let res = db.query_instant("cpu_usage", &[LabelMatcher::eq("env", "EM_1")], -1);
        assert!(res.is_empty());
        // Exactly at a timestamp is inclusive.
        let res = db.query_instant("cpu_usage", &[LabelMatcher::eq("env", "EM_1")], 0);
        assert_eq!(res[0].1.value, 0.0);
    }

    #[test]
    fn range_query_bounds_inclusive() {
        let db = filled_db();
        let res = db.query_range("cpu_usage", &[LabelMatcher::eq("env", "EM_1")], 3, 6);
        assert_eq!(res.len(), 1);
        let ts: Vec<i64> = res[0].samples.iter().map(|s| s.timestamp).collect();
        assert_eq!(ts, vec![3, 4, 5, 6]);
        // Empty window yields no series rather than an empty series.
        let res = db.query_range("cpu_usage", &[LabelMatcher::eq("env", "EM_1")], 100, 200);
        assert!(res.is_empty());
    }

    #[test]
    fn matchers_select_series() {
        let db = filled_db();
        let all = db.query_range("cpu_usage", &[], 0, 100);
        assert_eq!(all.len(), 2);
        let not1 = db.query_range(
            "cpu_usage",
            &[LabelMatcher::NotEq("env".into(), "EM_1".into())],
            0,
            100,
        );
        assert_eq!(not1.len(), 1);
        assert_eq!(not1[0].labels.get("env"), Some("EM_2"));
    }

    #[test]
    fn step_query_downsamples_and_carries_last_value() {
        let db = filled_db();
        // cpu_usage for EM_1 has samples at t = 0..9, value = 10 t.
        let res = db.query_range_step("cpu_usage", &[LabelMatcher::eq("env", "EM_1")], 0, 9, 3);
        assert_eq!(res.len(), 1);
        let pts: Vec<(i64, f64)> = res[0]
            .samples
            .iter()
            .map(|s| (s.timestamp, s.value))
            .collect();
        assert_eq!(pts, vec![(0, 0.0), (3, 30.0), (6, 60.0), (9, 90.0)]);
        // Aligned instants past the data carry the last value forward…
        let res = db.query_range_step("cpu_usage", &[LabelMatcher::eq("env", "EM_1")], 8, 20, 5);
        let pts: Vec<(i64, f64)> = res[0]
            .samples
            .iter()
            .map(|s| (s.timestamp, s.value))
            .collect();
        assert_eq!(pts, vec![(8, 80.0), (13, 90.0), (18, 90.0)]);
        // …and instants before the first sample are omitted (here the
        // aligned instants are -5 and 0; only t = 0 has data).
        let res = db.query_range_step("cpu_usage", &[LabelMatcher::eq("env", "EM_1")], -5, 4, 5);
        let pts: Vec<(i64, f64)> = res[0]
            .samples
            .iter()
            .map(|s| (s.timestamp, s.value))
            .collect();
        assert_eq!(pts, vec![(0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn step_query_rejects_zero_step() {
        let db = filled_db();
        db.query_range_step("cpu_usage", &[], 0, 10, 0);
    }

    #[test]
    fn retention_drops_old_samples_and_empty_series() {
        let db = filled_db();
        assert_eq!(db.num_samples(), 21);
        // mem_usage only has a sample at t = 5; cutting at 6 removes it.
        let dropped = db.retain_from(6);
        assert_eq!(dropped, 2 * 6 + 1);
        assert_eq!(db.num_samples(), 8);
        assert_eq!(db.metric_names(), vec!["cpu_usage"]);
        // Remaining samples all survive the cutoff.
        for s in db.query_range("cpu_usage", &[], i64::MIN, i64::MAX) {
            assert!(s.samples.iter().all(|x| x.timestamp >= 6));
        }
        // Idempotent at the same cutoff.
        assert_eq!(db.retain_from(6), 0);
    }

    #[test]
    fn out_of_order_appends_are_sorted() {
        let db = TimeSeriesDb::new();
        for &t in &[5i64, 1, 3, 2, 4] {
            db.append(
                "m",
                &env("E"),
                Sample {
                    timestamp: t,
                    value: t as f64,
                },
            );
        }
        let res = db.query_range("m", &[], 0, 10);
        let ts: Vec<i64> = res[0].samples.iter().map(|s| s.timestamp).collect();
        assert_eq!(ts, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn append_series_bulk() {
        let db = TimeSeriesDb::new();
        let samples: Vec<Sample> = (0..100)
            .map(|t| Sample {
                timestamp: t,
                value: t as f64,
            })
            .collect();
        db.append_series("bulk", &env("E"), &samples);
        assert_eq!(db.num_samples(), 100);
    }

    #[test]
    fn concurrent_writers_do_not_lose_samples() {
        use std::sync::Arc;
        let db = Arc::new(TimeSeriesDb::new());
        let mut handles = Vec::new();
        for w in 0..4 {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                for t in 0..250 {
                    db.append(
                        "concurrent",
                        &env(&format!("E{w}")),
                        Sample {
                            timestamp: t,
                            value: w as f64,
                        },
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.num_samples(), 1000);
        assert_eq!(db.num_series(), 4);
    }
}
