//! Sharded, compressed, label-indexed in-memory time-series database.
//!
//! The Prometheus stand-in: series are keyed by metric name plus label
//! set, samples are `(timestamp, value)` pairs kept in time order, and
//! queries select by matchers with instant (latest-at-or-before) or range
//! semantics. Interior locking makes one database shareable between the
//! metric collector and the prediction pipeline, mirroring the paper's
//! workflow where both sides talk to the same Prometheus.
//!
//! At fleet scale ("millions of samples, 100k testbeds") a single locked
//! map stops being a database and starts being a queue, so storage is
//! organised for sustained concurrent ingest:
//!
//! - **Sharding.** Series are distributed over [`TsdbConfig::num_shards`]
//!   independently-locked shards by an FNV-1a hash of `(metric, labels)`
//!   — a fixed hash function, so shard assignment is deterministic across
//!   processes (no per-process `RandomState`). Within a shard, series
//!   live in a `BTreeMap`; cross-shard query results are merged and
//!   sorted by key, so every public result is in `(metric, labels)` order
//!   regardless of shard count (envlint `hash-iter`-clean).
//! - **Compression.** Each series is a [`crate::chunk::SeriesStore`]: an
//!   open head plus Gorilla-compressed sealed chunks
//!   ([`crate::codec`]). Decode is exact to the bit, so turning
//!   compression off ([`TsdbConfig::compress`]) changes memory use, never
//!   results.
//! - **Self-observation.** Sample/series counts are maintained by
//!   per-shard atomics on the write path (`stats()` never walks samples),
//!   out-of-order writes that force a sealed-chunk rewrite are counted,
//!   and append/instant/range latencies land in internal log-bucket
//!   histograms exported through [`TsdbStats`].

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::chunk::SeriesStore;
use crate::labels::{LabelMatcher, LabelSet};
use crate::locks::TrackedRwLock;

/// One observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Unix-style timestamp (the generators use timestep indices).
    pub timestamp: i64,
    /// Observed value.
    pub value: f64,
}

/// Identity of one series.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    metric: String,
    labels: LabelSet,
}

/// A queryable series (metric, labels, samples).
#[derive(Debug, Clone)]
pub struct Series {
    /// Metric name.
    pub metric: String,
    /// Label set identifying the series.
    pub labels: LabelSet,
    /// Samples in ascending time order.
    pub samples: Vec<Sample>,
}

/// Storage policy for one database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TsdbConfig {
    /// Number of independently-locked shards (clamped to at least 1).
    pub num_shards: usize,
    /// Head size (samples) at which a series' open chunk is sealed and
    /// compressed.
    pub seal_after: usize,
    /// Whether to seal at all. `false` keeps every series as a flat
    /// vector — the uncompressed reference configuration used by the
    /// golden tests.
    pub compress: bool,
}

impl Default for TsdbConfig {
    fn default() -> Self {
        TsdbConfig {
            num_shards: 16,
            seal_after: 256,
            compress: true,
        }
    }
}

/// Latency histogram boundaries: half-decade log-scale buckets from 1 µs
/// to 1000 s, in seconds (same shape the obs crate uses for durations).
pub const LATENCY_BUCKETS: [f64; 19] = [
    1e-6, 3.162e-6, 1e-5, 3.162e-5, 1e-4, 3.162e-4, 1e-3, 3.162e-3, 1e-2, 3.162e-2, 1e-1, 3.162e-1,
    1e0, 3.162e0, 1e1, 3.162e1, 1e2, 3.162e2, 1e3,
];

/// Internal atomic latency histogram over [`LATENCY_BUCKETS`].
///
/// The TSDB cannot use `obs::Histogram` (obs depends on this crate), so
/// it keeps its own counters and exports read-only snapshots that obs
/// re-publishes as regular metrics.
#[derive(Debug, Default)]
struct OpLatency {
    /// One slot per bound plus the trailing `+Inf` bucket.
    counts: [AtomicU64; LATENCY_BUCKETS.len() + 1],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

/// Starts a latency measurement.
fn start_timer() -> std::time::Instant {
    // envlint: allow(wall-clock) — self-instrumentation only: the reading feeds latency metrics and never influences stored samples or query results.
    std::time::Instant::now()
}

impl OpLatency {
    fn observe(&self, started: std::time::Instant) {
        let secs = started.elapsed().as_secs_f64();
        let idx = LATENCY_BUCKETS.partition_point(|&b| b < secs);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos
            .fetch_add((secs * 1e9) as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> LatencySnapshot {
        let mut cumulative = Vec::with_capacity(self.counts.len());
        let mut total = 0;
        for c in &self.counts {
            total += c.load(Ordering::Relaxed);
            cumulative.push(total);
        }
        LatencySnapshot {
            cumulative,
            count: self.count.load(Ordering::Relaxed),
            sum_seconds: self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9,
        }
    }
}

/// Point-in-time reading of one operation's latency distribution.
///
/// `cumulative` has Prometheus `le` semantics over [`LATENCY_BUCKETS`]:
/// entry `i` counts observations `<= LATENCY_BUCKETS[i]`, with a final
/// `+Inf` entry counting everything.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySnapshot {
    /// Cumulative bucket counts (`LATENCY_BUCKETS.len() + 1` entries).
    pub cumulative: Vec<u64>,
    /// Number of observations.
    pub count: u64,
    /// Sum of observed latencies, in seconds.
    pub sum_seconds: f64,
}

/// Occupancy of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Distinct series in the shard.
    pub series: usize,
    /// Samples in the shard.
    pub samples: u64,
}

/// Point-in-time operation counts, sizes, and self-instrumentation for
/// one database (see [`TimeSeriesDb::stats`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TsdbStats {
    /// Samples inserted since creation.
    pub inserts: u64,
    /// Queries served since creation (instant, range, and step).
    pub queries: u64,
    /// Writes that landed inside sealed (compressed) territory and
    /// forced a decode/splice/re-seal cycle — misordered scraper traffic
    /// made visible.
    pub out_of_order_inserts: u64,
    /// Current number of distinct series.
    pub num_series: usize,
    /// Current total number of samples (maintained by write-path
    /// counters, O(shards) to read).
    pub num_samples: usize,
    /// Shard count of the database.
    pub num_shards: usize,
    /// Sealed (compressed) chunks across all series.
    pub sealed_chunks: usize,
    /// Bytes the sealed chunks occupy compressed.
    pub sealed_bytes: usize,
    /// Bytes the same sealed samples would occupy uncompressed.
    pub sealed_uncompressed_bytes: usize,
    /// Per-shard occupancy, indexed by shard id.
    pub shards: Vec<ShardStats>,
    /// Append-path latency distribution.
    pub append_latency: LatencySnapshot,
    /// Instant-query latency distribution.
    pub instant_latency: LatencySnapshot,
    /// Range-query latency distribution (range and step queries).
    pub range_latency: LatencySnapshot,
}

impl TsdbStats {
    /// Sealed-chunk compression ratio (uncompressed / compressed bytes);
    /// 1.0 when nothing is sealed yet.
    pub fn compression_ratio(&self) -> f64 {
        if self.sealed_bytes == 0 {
            1.0
        } else {
            self.sealed_uncompressed_bytes as f64 / self.sealed_bytes as f64
        }
    }
}

/// One lock domain: a slice of the keyspace plus its write-path counter.
#[derive(Debug)]
struct Shard {
    series: TrackedRwLock<BTreeMap<SeriesKey, SeriesStore>>,
    /// Samples currently stored in this shard, maintained on the write
    /// path so `num_samples` never walks the data.
    samples: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            // All shards share one sanitizer name; cycle detection runs
            // on per-instance ids, so cross-shard nesting is still
            // caught — the name only labels the report.
            series: TrackedRwLock::new("telemetry.tsdb.shard.series", BTreeMap::new()),
            samples: AtomicU64::new(0),
        }
    }
}

/// An in-memory TSDB safe for concurrent writers and readers.
///
/// See the module docs for the storage layout. All query results are
/// ordered by `(metric, labels)` independent of shard count, and decode
/// of compressed chunks is bit-exact, so results are identical across
/// any `TsdbConfig`.
#[derive(Debug)]
pub struct TimeSeriesDb {
    config: TsdbConfig,
    shards: Vec<Shard>,
    /// Operation tallies kept as plain atomics so reading them never
    /// contends with the data locks.
    inserts: AtomicU64,
    queries: AtomicU64,
    out_of_order: AtomicU64,
    append_latency: OpLatency,
    instant_latency: OpLatency,
    range_latency: OpLatency,
}

impl Default for TimeSeriesDb {
    fn default() -> Self {
        Self::with_config(TsdbConfig::default())
    }
}

/// FNV-1a 64-bit step over a byte string.
fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

impl TimeSeriesDb {
    /// Creates an empty database with the default config (16 shards,
    /// compression on, seal at 256 samples).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty database with an explicit storage policy.
    pub fn with_config(config: TsdbConfig) -> Self {
        let config = TsdbConfig {
            num_shards: config.num_shards.max(1),
            ..config
        };
        TimeSeriesDb {
            shards: (0..config.num_shards).map(|_| Shard::new()).collect(),
            config,
            inserts: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            out_of_order: AtomicU64::new(0),
            append_latency: OpLatency::default(),
            instant_latency: OpLatency::default(),
            range_latency: OpLatency::default(),
        }
    }

    /// The database's storage policy.
    pub fn config(&self) -> &TsdbConfig {
        &self.config
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Deterministic shard index for a series identity. Batch ingest
    /// uses this to group writes so each worker touches exactly one
    /// shard lock.
    pub fn shard_of(&self, metric: &str, labels: &LabelSet) -> usize {
        let mut h = fnv1a(FNV_OFFSET, metric.as_bytes());
        for (k, v) in labels.iter() {
            h = fnv1a(h, &[0xff]);
            h = fnv1a(h, k.as_bytes());
            h = fnv1a(h, &[0xfe]);
            h = fnv1a(h, v.as_bytes());
        }
        (h % self.shards.len() as u64) as usize
    }

    /// Seal policy handed to the chunk layer on each write.
    fn seal_limit(&self) -> Option<usize> {
        if self.config.compress {
            Some(self.config.seal_after.max(1))
        } else {
            None
        }
    }

    /// Appends a sample to the series `(metric, labels)`, creating it on
    /// first write. Samples may arrive slightly out of order; the series
    /// is kept sorted by timestamp (a duplicate timestamp lands after
    /// its equals).
    pub fn append(&self, metric: &str, labels: &LabelSet, sample: Sample) {
        let timer = start_timer();
        self.inserts.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[self.shard_of(metric, labels)];
        let outcome = {
            let mut map = shard.series.write();
            map.entry(SeriesKey {
                metric: metric.to_string(),
                labels: labels.clone(),
            })
            .or_default()
            .append(sample, self.seal_limit())
        };
        shard.samples.fetch_add(1, Ordering::Relaxed);
        if outcome.rewrote_sealed {
            self.out_of_order.fetch_add(1, Ordering::Relaxed);
        }
        self.append_latency.observe(timer);
    }

    /// Like [`TimeSeriesDb::append`], but if the series already holds a
    /// sample at exactly `sample.timestamp`, that sample's value is
    /// replaced instead of a duplicate point being inserted. This is the
    /// write primitive for idempotent scrapes: re-scraping the same
    /// registry at the same timestamp converges instead of growing.
    pub fn upsert(&self, metric: &str, labels: &LabelSet, sample: Sample) {
        let timer = start_timer();
        self.inserts.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[self.shard_of(metric, labels)];
        let outcome = {
            let mut map = shard.series.write();
            map.entry(SeriesKey {
                metric: metric.to_string(),
                labels: labels.clone(),
            })
            .or_default()
            .upsert(sample, self.seal_limit())
        };
        if outcome.inserted {
            shard.samples.fetch_add(1, Ordering::Relaxed);
        }
        if outcome.rewrote_sealed {
            self.out_of_order.fetch_add(1, Ordering::Relaxed);
        }
        self.append_latency.observe(timer);
    }

    /// Appends a whole vector of samples (already time-ordered) at once,
    /// taking the shard lock once for the batch.
    pub fn append_series(&self, metric: &str, labels: &LabelSet, samples: &[Sample]) {
        if samples.is_empty() {
            return;
        }
        let timer = start_timer();
        self.inserts
            .fetch_add(samples.len() as u64, Ordering::Relaxed);
        let shard = &self.shards[self.shard_of(metric, labels)];
        let mut rewrote = 0u64;
        {
            let mut map = shard.series.write();
            let store = map
                .entry(SeriesKey {
                    metric: metric.to_string(),
                    labels: labels.clone(),
                })
                .or_default();
            for &s in samples {
                if store.append(s, self.seal_limit()).rewrote_sealed {
                    rewrote += 1;
                }
            }
        }
        shard
            .samples
            .fetch_add(samples.len() as u64, Ordering::Relaxed);
        if rewrote > 0 {
            self.out_of_order.fetch_add(rewrote, Ordering::Relaxed);
        }
        self.append_latency.observe(timer);
    }

    /// Number of distinct series.
    pub fn num_series(&self) -> usize {
        self.shards.iter().map(|s| s.series.read().len()).sum()
    }

    /// Total number of samples across all series. O(shards): read from
    /// the write-path counters, never by walking the data.
    pub fn num_samples(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.samples.load(Ordering::Relaxed) as usize)
            .sum()
    }

    /// Instant query: for every matching series, the latest sample at or
    /// before `at`, in label order.
    pub fn query_instant(
        &self,
        metric: &str,
        matchers: &[LabelMatcher],
        at: i64,
    ) -> Vec<(LabelSet, Sample)> {
        let timer = start_timer();
        self.queries.fetch_add(1, Ordering::Relaxed);
        let mut out = Vec::new();
        for shard in &self.shards {
            let map = shard.series.read();
            for (key, store) in map.iter() {
                if key.metric != metric || !key.labels.matches(matchers) {
                    continue;
                }
                if let Some(s) = store.latest_at_or_before(at) {
                    out.push((key.labels.clone(), s));
                }
            }
        }
        // Shards interleave the keyspace; restore (metric, labels) order
        // so results are independent of shard count.
        out.sort_by(|a, b| a.0.cmp(&b.0));
        self.instant_latency.observe(timer);
        out
    }

    /// Range query: for every matching series, the samples with
    /// `start <= timestamp <= end`, in `(metric, labels)` order.
    pub fn query_range(
        &self,
        metric: &str,
        matchers: &[LabelMatcher],
        start: i64,
        end: i64,
    ) -> Vec<Series> {
        let timer = start_timer();
        self.queries.fetch_add(1, Ordering::Relaxed);
        let mut out = Vec::new();
        for shard in &self.shards {
            let map = shard.series.read();
            for (key, store) in map.iter() {
                if key.metric != metric || !key.labels.matches(matchers) {
                    continue;
                }
                let samples = store.samples_between(start, end);
                if !samples.is_empty() {
                    out.push(Series {
                        metric: key.metric.clone(),
                        labels: key.labels.clone(),
                        samples,
                    });
                }
            }
        }
        out.sort_by(|a, b| a.labels.cmp(&b.labels));
        self.range_latency.observe(timer);
        out
    }

    /// Step-aligned range query (Prometheus-style): for every matching
    /// series, one sample per aligned timestamp `start, start+step, …, ≤
    /// end`, each carrying the latest raw value at or before that instant.
    /// Aligned points before a series' first sample are omitted.
    ///
    /// Downsampling queries like this are how dashboards read a
    /// 15-minute-cadence metric at, say, 1-hour resolution.
    ///
    /// # Panics
    ///
    /// Panics when `step` is zero.
    pub fn query_range_step(
        &self,
        metric: &str,
        matchers: &[LabelMatcher],
        start: i64,
        end: i64,
        step: i64,
    ) -> Vec<Series> {
        assert!(step > 0, "step must be positive");
        let timer = start_timer();
        self.queries.fetch_add(1, Ordering::Relaxed);
        let mut out = Vec::new();
        for shard in &self.shards {
            let map = shard.series.read();
            for (key, store) in map.iter() {
                if key.metric != metric || !key.labels.matches(matchers) {
                    continue;
                }
                let samples = store.all_samples();
                let mut points = Vec::new();
                let mut t = start;
                while t <= end {
                    let idx = samples.partition_point(|s| s.timestamp <= t);
                    if idx > 0 {
                        points.push(Sample {
                            timestamp: t,
                            value: samples[idx - 1].value,
                        });
                    }
                    t += step;
                }
                if !points.is_empty() {
                    out.push(Series {
                        metric: key.metric.clone(),
                        labels: key.labels.clone(),
                        samples: points,
                    });
                }
            }
        }
        out.sort_by(|a, b| a.labels.cmp(&b.labels));
        self.range_latency.observe(timer);
        out
    }

    /// Applies a retention policy: drops every sample with
    /// `timestamp < cutoff` and removes series left empty. Sealed chunks
    /// wholly below the cutoff are discarded without decoding. Returns
    /// the number of samples dropped.
    pub fn retain_from(&self, cutoff: i64) -> usize {
        let mut total = 0usize;
        for shard in &self.shards {
            let mut map = shard.series.write();
            let mut dropped = 0usize;
            map.retain(|_, store| {
                dropped += store.retain_from(cutoff);
                !store.is_empty()
            });
            shard.samples.fetch_sub(dropped as u64, Ordering::Relaxed);
            total += dropped;
        }
        total
    }

    /// Operation counts, sizes, compression accounting, and latency
    /// distributions, for the observability layer's `tsdb_*` metrics.
    ///
    /// Counter reads are O(shards); the sealed-chunk accounting walks
    /// series headers (never samples), O(num_series).
    pub fn stats(&self) -> TsdbStats {
        let mut shards = Vec::with_capacity(self.shards.len());
        let mut sealed_chunks = 0;
        let mut sealed_bytes = 0;
        let mut sealed_uncompressed_bytes = 0;
        for shard in &self.shards {
            let map = shard.series.read();
            for store in map.values() {
                sealed_chunks += store.sealed_chunks();
                sealed_bytes += store.compressed_bytes();
                sealed_uncompressed_bytes += store.sealed_uncompressed_bytes();
            }
            shards.push(ShardStats {
                series: map.len(),
                samples: shard.samples.load(Ordering::Relaxed),
            });
        }
        TsdbStats {
            inserts: self.inserts.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            out_of_order_inserts: self.out_of_order.load(Ordering::Relaxed),
            num_series: shards.iter().map(|s| s.series).sum(),
            num_samples: shards.iter().map(|s| s.samples as usize).sum(),
            num_shards: self.shards.len(),
            sealed_chunks,
            sealed_bytes,
            sealed_uncompressed_bytes,
            shards,
            append_latency: self.append_latency.snapshot(),
            instant_latency: self.instant_latency.snapshot(),
            range_latency: self.range_latency.snapshot(),
        }
    }

    /// All metric names currently stored, sorted and deduplicated.
    pub fn metric_names(&self) -> Vec<String> {
        let mut names = BTreeSet::new();
        for shard in &self.shards {
            let map = shard.series.read();
            for key in map.keys() {
                if !names.contains(&key.metric) {
                    names.insert(key.metric.clone());
                }
            }
        }
        names.into_iter().collect()
    }

    /// All label sets for a metric, sorted.
    pub fn series_for(&self, metric: &str) -> Vec<LabelSet> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let map = shard.series.read();
            out.extend(
                map.keys()
                    .filter(|k| k.metric == metric)
                    .map(|k| k.labels.clone()),
            );
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(id: &str) -> LabelSet {
        LabelSet::new().with("env", id)
    }

    fn filled_db() -> TimeSeriesDb {
        let db = TimeSeriesDb::new();
        for t in 0..10 {
            db.append(
                "cpu_usage",
                &env("EM_1"),
                Sample {
                    timestamp: t,
                    value: t as f64 * 10.0,
                },
            );
            db.append(
                "cpu_usage",
                &env("EM_2"),
                Sample {
                    timestamp: t,
                    value: 1.0,
                },
            );
        }
        db.append(
            "mem_usage",
            &env("EM_1"),
            Sample {
                timestamp: 5,
                value: 64.0,
            },
        );
        db
    }

    #[test]
    fn series_and_sample_counts() {
        let db = filled_db();
        assert_eq!(db.num_series(), 3);
        assert_eq!(db.num_samples(), 21);
        assert_eq!(db.metric_names(), vec!["cpu_usage", "mem_usage"]);
        assert_eq!(db.series_for("cpu_usage").len(), 2);
    }

    #[test]
    fn upsert_replaces_at_equal_timestamp_and_inserts_otherwise() {
        let db = TimeSeriesDb::new();
        let s = |t: i64, v: f64| Sample {
            timestamp: t,
            value: v,
        };
        db.upsert("cpu_usage", &env("EM_1"), s(5, 1.0));
        db.upsert("cpu_usage", &env("EM_1"), s(5, 2.0));
        assert_eq!(db.num_samples(), 1, "same timestamp must not duplicate");
        assert_eq!(
            db.query_instant("cpu_usage", &[], 5)[0].1.value,
            2.0,
            "latest upsert wins"
        );
        // Different timestamps insert in sorted position.
        db.upsert("cpu_usage", &env("EM_1"), s(3, 0.5));
        db.upsert("cpu_usage", &env("EM_1"), s(7, 3.0));
        assert_eq!(db.num_samples(), 3);
        let range = db.query_range("cpu_usage", &[], 0, 10);
        let ts: Vec<i64> = range[0].samples.iter().map(|x| x.timestamp).collect();
        assert_eq!(ts, vec![3, 5, 7]);
    }

    #[test]
    fn stats_count_operations_and_sizes() {
        let db = filled_db();
        let s = db.stats();
        assert_eq!(s.inserts, 21);
        assert_eq!(s.queries, 0);
        assert_eq!(s.num_series, 3);
        assert_eq!(s.num_samples, 21);
        assert_eq!(s.out_of_order_inserts, 0);
        assert_eq!(s.num_shards, 16);
        assert_eq!(s.shards.len(), 16);
        assert_eq!(s.shards.iter().map(|sh| sh.series).sum::<usize>(), 3);
        assert_eq!(s.shards.iter().map(|sh| sh.samples).sum::<u64>(), 21);
        assert_eq!(s.append_latency.count, 21, "every append is timed");
        db.query_instant("cpu_usage", &[], 5);
        db.query_range("cpu_usage", &[], 0, 9);
        db.query_range_step("cpu_usage", &[], 0, 9, 2);
        let s = db.stats();
        assert_eq!(s.queries, 3);
        assert_eq!(s.instant_latency.count, 1);
        assert_eq!(s.range_latency.count, 2, "range + step queries");
    }

    #[test]
    fn instant_query_latest_at_or_before() {
        let db = filled_db();
        let res = db.query_instant("cpu_usage", &[LabelMatcher::eq("env", "EM_1")], 7);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].1.value, 70.0);
        // Before the first sample: nothing.
        let res = db.query_instant("cpu_usage", &[LabelMatcher::eq("env", "EM_1")], -1);
        assert!(res.is_empty());
        // Exactly at a timestamp is inclusive.
        let res = db.query_instant("cpu_usage", &[LabelMatcher::eq("env", "EM_1")], 0);
        assert_eq!(res[0].1.value, 0.0);
    }

    #[test]
    fn range_query_bounds_inclusive() {
        let db = filled_db();
        let res = db.query_range("cpu_usage", &[LabelMatcher::eq("env", "EM_1")], 3, 6);
        assert_eq!(res.len(), 1);
        let ts: Vec<i64> = res[0].samples.iter().map(|s| s.timestamp).collect();
        assert_eq!(ts, vec![3, 4, 5, 6]);
        // Empty window yields no series rather than an empty series.
        let res = db.query_range("cpu_usage", &[LabelMatcher::eq("env", "EM_1")], 100, 200);
        assert!(res.is_empty());
    }

    #[test]
    fn matchers_select_series() {
        let db = filled_db();
        let all = db.query_range("cpu_usage", &[], 0, 100);
        assert_eq!(all.len(), 2);
        let not1 = db.query_range(
            "cpu_usage",
            &[LabelMatcher::NotEq("env".into(), "EM_1".into())],
            0,
            100,
        );
        assert_eq!(not1.len(), 1);
        assert_eq!(not1[0].labels.get("env"), Some("EM_2"));
    }

    #[test]
    fn step_query_downsamples_and_carries_last_value() {
        let db = filled_db();
        // cpu_usage for EM_1 has samples at t = 0..9, value = 10 t.
        let res = db.query_range_step("cpu_usage", &[LabelMatcher::eq("env", "EM_1")], 0, 9, 3);
        assert_eq!(res.len(), 1);
        let pts: Vec<(i64, f64)> = res[0]
            .samples
            .iter()
            .map(|s| (s.timestamp, s.value))
            .collect();
        assert_eq!(pts, vec![(0, 0.0), (3, 30.0), (6, 60.0), (9, 90.0)]);
        // Aligned instants past the data carry the last value forward…
        let res = db.query_range_step("cpu_usage", &[LabelMatcher::eq("env", "EM_1")], 8, 20, 5);
        let pts: Vec<(i64, f64)> = res[0]
            .samples
            .iter()
            .map(|s| (s.timestamp, s.value))
            .collect();
        assert_eq!(pts, vec![(8, 80.0), (13, 90.0), (18, 90.0)]);
        // …and instants before the first sample are omitted (here the
        // aligned instants are -5 and 0; only t = 0 has data).
        let res = db.query_range_step("cpu_usage", &[LabelMatcher::eq("env", "EM_1")], -5, 4, 5);
        let pts: Vec<(i64, f64)> = res[0]
            .samples
            .iter()
            .map(|s| (s.timestamp, s.value))
            .collect();
        assert_eq!(pts, vec![(0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn step_query_rejects_zero_step() {
        let db = filled_db();
        db.query_range_step("cpu_usage", &[], 0, 10, 0);
    }

    #[test]
    fn retention_drops_old_samples_and_empty_series() {
        let db = filled_db();
        assert_eq!(db.num_samples(), 21);
        // mem_usage only has a sample at t = 5; cutting at 6 removes it.
        let dropped = db.retain_from(6);
        assert_eq!(dropped, 2 * 6 + 1);
        assert_eq!(db.num_samples(), 8);
        assert_eq!(db.metric_names(), vec!["cpu_usage"]);
        // Remaining samples all survive the cutoff.
        for s in db.query_range("cpu_usage", &[], i64::MIN, i64::MAX) {
            assert!(s.samples.iter().all(|x| x.timestamp >= 6));
        }
        // Idempotent at the same cutoff.
        assert_eq!(db.retain_from(6), 0);
    }

    #[test]
    fn out_of_order_appends_are_sorted() {
        let db = TimeSeriesDb::new();
        for &t in &[5i64, 1, 3, 2, 4] {
            db.append(
                "m",
                &env("E"),
                Sample {
                    timestamp: t,
                    value: t as f64,
                },
            );
        }
        let res = db.query_range("m", &[], 0, 10);
        let ts: Vec<i64> = res[0].samples.iter().map(|s| s.timestamp).collect();
        assert_eq!(ts, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn append_series_bulk() {
        let db = TimeSeriesDb::new();
        let samples: Vec<Sample> = (0..100)
            .map(|t| Sample {
                timestamp: t,
                value: t as f64,
            })
            .collect();
        db.append_series("bulk", &env("E"), &samples);
        assert_eq!(db.num_samples(), 100);
        assert_eq!(db.stats().inserts, 100);
    }

    #[test]
    fn concurrent_writers_do_not_lose_samples() {
        use std::sync::Arc;
        let db = Arc::new(TimeSeriesDb::new());
        let mut handles = Vec::new();
        for w in 0..4 {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                for t in 0..250 {
                    db.append(
                        "concurrent",
                        &env(&format!("E{w}")),
                        Sample {
                            timestamp: t,
                            value: w as f64,
                        },
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.num_samples(), 1000);
        assert_eq!(db.num_series(), 4);
    }

    /// Fills a database with a deterministic mixed workload.
    fn mixed_workload(db: &TimeSeriesDb) {
        for series in 0..40 {
            let labels = LabelSet::new()
                .with("env", format!("EM_{series}"))
                .with("testbed", format!("Testbed_{}", series % 7));
            for t in 0..600i64 {
                db.append(
                    "cpu_usage",
                    &labels,
                    Sample {
                        timestamp: t * 15,
                        value: ((series * 31 + t as usize * 7) % 100) as f64,
                    },
                );
            }
        }
        // Late, misordered traffic into sealed territory.
        for series in 0..10 {
            let labels = LabelSet::new()
                .with("env", format!("EM_{series}"))
                .with("testbed", format!("Testbed_{}", series % 7));
            db.append(
                "cpu_usage",
                &labels,
                Sample {
                    timestamp: 37,
                    value: 999.0,
                },
            );
        }
    }

    #[test]
    fn results_identical_across_shard_counts_and_compression() {
        let configs = [
            TsdbConfig::default(),
            TsdbConfig {
                num_shards: 1,
                seal_after: 64,
                compress: true,
            },
            TsdbConfig {
                num_shards: 5,
                seal_after: 256,
                compress: false,
            },
        ];
        let dbs: Vec<TimeSeriesDb> = configs
            .iter()
            .map(|&c| {
                let db = TimeSeriesDb::with_config(c);
                mixed_workload(&db);
                db
            })
            .collect();
        let reference = &dbs[0];
        for db in &dbs[1..] {
            for (a, b) in reference
                .query_range("cpu_usage", &[], i64::MIN, i64::MAX)
                .iter()
                .zip(&db.query_range("cpu_usage", &[], i64::MIN, i64::MAX))
            {
                assert_eq!(a.labels, b.labels, "series order must match");
                assert_eq!(a.samples.len(), b.samples.len());
                for (x, y) in a.samples.iter().zip(&b.samples) {
                    assert_eq!(x.timestamp, y.timestamp);
                    assert_eq!(x.value.to_bits(), y.value.to_bits());
                }
            }
            assert_eq!(
                reference.query_instant("cpu_usage", &[], 5000).len(),
                db.query_instant("cpu_usage", &[], 5000).len()
            );
        }
    }

    #[test]
    fn compression_accounting_and_out_of_order_counter() {
        let db = TimeSeriesDb::with_config(TsdbConfig {
            num_shards: 4,
            seal_after: 100,
            compress: true,
        });
        mixed_workload(&db);
        let stats = db.stats();
        assert!(stats.sealed_chunks > 0, "600-sample series must seal");
        assert!(
            stats.compression_ratio() >= 5.0,
            "quantized telemetry must compress at least 5x, got {:.2}",
            stats.compression_ratio()
        );
        assert_eq!(
            stats.out_of_order_inserts, 10,
            "late writes into sealed chunks are counted"
        );
        assert_eq!(stats.num_samples, 40 * 600 + 10);
        // The uncompressed config never seals and never counts.
        let flat = TimeSeriesDb::with_config(TsdbConfig {
            num_shards: 4,
            seal_after: 100,
            compress: false,
        });
        mixed_workload(&flat);
        let fstats = flat.stats();
        assert_eq!(fstats.sealed_chunks, 0);
        assert_eq!(fstats.sealed_bytes, 0);
        assert_eq!(fstats.out_of_order_inserts, 0);
        assert_eq!(fstats.compression_ratio(), 1.0);
    }

    #[test]
    fn shard_assignment_is_deterministic_and_spread() {
        let db = TimeSeriesDb::new();
        let mut used = BTreeSet::new();
        for i in 0..64 {
            let labels = env(&format!("EM_{i}"));
            let a = db.shard_of("cpu_usage", &labels);
            let b = db.shard_of("cpu_usage", &labels);
            assert_eq!(a, b);
            assert!(a < db.num_shards());
            used.insert(a);
        }
        assert!(
            used.len() > db.num_shards() / 2,
            "64 series should touch most of 16 shards, got {}",
            used.len()
        );
    }
}
